"""Ablation benchmarks for the design choices DESIGN.md calls out.

Times the competing implementations directly against each other and
asserts the expected orderings where the effect is structural (variable
counts, toggle activity); time-based orderings are reported but not
asserted (they are machine-dependent).

Regenerate the printed study with ``python -m repro.experiments.ablation``.
"""

import pytest

from repro.encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from repro.petri.generators import figure4_net, muller, slotted_ring
from repro.petri.smc import find_smcs
from repro.symbolic import (RelationalNet, SymbolicNet, traverse,
                            traverse_relational)

INSTANCES = [("figure4", figure4_net),
             ("muller-6", lambda: muller(6)),
             ("slot-3", lambda: slotted_ring(3))]
IDS = [name for name, _ in INSTANCES]


@pytest.fixture(params=INSTANCES, ids=IDS)
def instance(request):
    name, factory = request.param
    net = factory()
    return name, net, find_smcs(net)


class TestEncodingRefinements:
    def test_improved_never_worse_than_covering(self, once, instance):
        _, net, smcs = instance
        improved = once(ImprovedEncoding, net, components=smcs)
        covering = DenseEncoding(net, components=smcs)
        sparse = SparseEncoding(net)
        assert improved.num_variables <= covering.num_variables
        assert covering.num_variables < sparse.num_variables

    def test_zero_var_extension_never_worse(self, instance):
        _, net, smcs = instance
        improved = ImprovedEncoding(net, components=smcs)
        extended = ImprovedEncoding(net, components=smcs,
                                    allow_zero_variable_components=True)
        assert extended.num_variables <= improved.num_variables


class TestGrayCodes:
    def test_gray_toggles_not_worse_than_binary(self, once, instance):
        _, net, smcs = instance
        gray = once(ImprovedEncoding, net, components=smcs, gray=True)
        binary = ImprovedEncoding(net, components=smcs, gray=False)
        gray_toggles = sum(len(gray.transition_spec(t).toggle)
                           for t in net.transitions)
        binary_toggles = sum(len(binary.transition_spec(t).toggle)
                             for t in net.transitions)
        assert gray_toggles <= binary_toggles


class TestImageImplementations:
    def test_quantify_force(self, once, instance):
        _, net, smcs = instance
        result = once(lambda: traverse(
            SymbolicNet(ImprovedEncoding(net, components=smcs))))
        assert result.marking_count > 0

    def test_toggle(self, once, instance):
        _, net, smcs = instance
        result = once(lambda: traverse(
            SymbolicNet(ImprovedEncoding(net, components=smcs)),
            use_toggle=True))
        assert result.marking_count > 0

    def test_relational_partitioned(self, once, instance):
        _, net, smcs = instance
        result = once(lambda: traverse_relational(
            RelationalNet(ImprovedEncoding(net, components=smcs))))
        assert result.marking_count > 0

    def test_relational_monolithic(self, once, instance):
        _, net, smcs = instance
        result = once(lambda: traverse_relational(
            RelationalNet(ImprovedEncoding(net, components=smcs)),
            monolithic=True))
        assert result.marking_count > 0


class TestReordering:
    def test_reordering_shrinks_or_holds_final_bdd(self, once, instance):
        _, net, smcs = instance
        with_reorder = once(lambda: traverse(
            SymbolicNet(ImprovedEncoding(net, components=smcs),
                        auto_reorder=True, reorder_threshold=1_000),
            use_toggle=True))
        without = traverse(
            SymbolicNet(ImprovedEncoding(net, components=smcs)),
            use_toggle=True)
        assert with_reorder.marking_count == without.marking_count
        assert with_reorder.final_bdd_nodes <= without.final_bdd_nodes * 1.1
