"""Figure 2 benchmarks: encoding schemes on the running example.

Pins the paper's Figure 2 numbers on the Figure 1 net: 7 sparse
variables, 4 SMC-based variables, 3 optimal variables; toggle-aware
marking codes reach the paper's 15/11 average while arbitrary codes land
near 19/11.  The timed portion measures encoding-construction cost.

Regenerate the printed comparison with
``python -m repro.experiments.figure2``.
"""

import pytest

from repro.encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from repro.encoding.optimal import (greedy_gray_marking_encoding,
                                    optimal_variable_count,
                                    random_marking_encoding)
from repro.experiments.figure2 import run as figure2_run
from repro.petri import ReachabilityGraph
from repro.petri.generators import figure1_net


@pytest.fixture(scope="module")
def graph():
    return ReachabilityGraph(figure1_net())


def test_scheme_summaries_match_paper(once):
    summaries = once(figure2_run)
    by_label = {s.label[:3]: s for s in summaries}
    assert by_label["(a)"].variables == 7
    assert by_label["(b)"].variables == 4
    assert by_label["(c)"].variables == 3
    assert by_label["(d)"].variables == 3
    # Paper: 15/11 = 1.36 for the toggle-aware assignment.
    assert by_label["(c)"].toggle_cost <= 15 / 11 + 1e-9
    assert by_label["(d)"].toggle_cost > by_label["(c)"].toggle_cost


def test_sparse_encoding_construction(once):
    encoding = once(SparseEncoding, figure1_net())
    assert encoding.num_variables == 7


def test_dense_encoding_construction(once):
    encoding = once(DenseEncoding, figure1_net())
    assert encoding.num_variables == 4


def test_improved_encoding_construction(once):
    encoding = once(ImprovedEncoding, figure1_net())
    assert encoding.num_variables == 4


def test_greedy_gray_assignment(once, graph):
    encoding = once(greedy_gray_marking_encoding, graph)
    assert encoding.width == optimal_variable_count(8)
    assert encoding.toggle_cost() <= 15


def test_arbitrary_assignment_is_worse(once, graph):
    greedy = greedy_gray_marking_encoding(graph)
    worst_cost = once(
        lambda: max(random_marking_encoding(graph, seed=s).toggle_cost()
                    for s in range(10)))
    assert worst_cost > greedy.toggle_cost()
