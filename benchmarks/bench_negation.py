"""Negation-heavy benchmarks: checker queries and narrowing-on sweeps.

The traversal engines negate constantly — ``forall`` is ``NOT exists
NOT``, Coudert-Madre frontier narrowing restricts against
``frontier | ~reached`` every sweep, and every checker query pays
negations (AG = ``NOT EF NOT``, deadlock = ``reached AND NOT
enabled``).  This benchmark times exactly those paths:

1. **Checker queries** — deadlock detection, ``AG (no deadlock)`` and
   ``AG EF initial`` (home-marking) over the functional backend's
   reachable set: the workload ISSUE 10's >= 1.3x acceptance bound is
   measured on.
2. **Narrowing-on sweep** — the chained relational fixpoint with
   ``simplify_frontier=True`` (the ``frontier | ~reached`` restriction
   every step); its ``peak_live_nodes`` carries the >= 1.5x node-count
   reduction bound.
3. **Raw negation** — ``apply_not`` on the full reachable set against a
   reference recursive rebuild (what negation cost before complement
   edges made it a bit flip), both in this process, so the ratio is
   machine-normalised.

``PRE_PR`` carries the numbers measured at the seed commit (eda9dac,
before complement edges) on the reference box; ``peak_live_nodes`` and
``markings`` are structural, so their ratios are machine-independent
evidence, while the ``*_seconds`` ratios are honest only against the
same box (recorded alongside ``cpus`` like the parallel grid).
Results merge into ``BENCH_relprod.json`` under ``"negation"``::

    PYTHONPATH=src python benchmarks/bench_negation.py
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Tuple

import pytest

from repro.encoding import ImprovedEncoding
from repro.petri.generators import philosophers
from repro.symbolic import (ModelChecker, RelationalNet, SymbolicNet,
                            traverse, traverse_relational)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_relprod.json")

QUICK = bool(os.environ.get("REPRO_QUICK"))

CONFIGS: List[Tuple[str, Callable]] = [
    ("phil-6", lambda: philosophers(6)),
    ("phil-8", lambda: philosophers(8)),
]
if QUICK:
    CONFIGS = CONFIGS[:1]

#: How many O(1) negations are averaged for ``not_o1_seconds`` (a bit
#: flip is far below one clock tick).
NOT_REPEATS = 1000

#: Seed-commit (pre-complement-edge) numbers, measured on the reference
#: box by running this same workload at eda9dac (a checkout of the seed
#: commit, alternated back-to-back with the post-PR tree; seconds are
#: the minimum of repeated runs, the least noise-inflated statistic on
#: a shared box).  ``peak_live_nodes`` is deterministic for a given
#: code version; seconds are honest only same-box.
PRE_PR: Dict[str, Dict[str, float]] = {
    "phil-6": {"sweep_seconds": 0.317, "peak_live_nodes": 57899,
               "checker_seconds": 2.339},
    "phil-8": {"sweep_seconds": 4.865, "peak_live_nodes": 615475,
               "checker_seconds": 60.690},
}


def recursive_not(bdd, u: int) -> int:
    """Reference pre-complement-edge negation: rebuild the negated DAG.

    This is verbatim what ``BDD.apply_not`` did before ISSUE 10 — a
    memoized full recursion allocating the mirrored DAG — kept here so
    the O(1) bit-flip can be measured against it in the same process
    on any machine.
    """
    from repro.bdd.manager import ONE, ZERO

    complemented = getattr(bdd, "complement_edges", False)
    memo: Dict[int, int] = {}

    def walk(edge: int) -> int:
        if edge == ZERO:
            return ONE
        if edge == ONE:
            return ZERO
        known = memo.get(edge)
        if known is not None:
            return known
        if complemented:
            var = bdd.edge_var(edge)
            low, high = bdd.low_edge(edge), bdd.high_edge(edge)
        else:
            var = bdd._var[edge]
            low, high = bdd._low[edge], bdd._high[edge]
        result = bdd._mk(var, walk(low), walk(high))
        memo[edge] = result
        return result

    return walk(u)


def measure_negation(factory: Callable) -> Dict:
    """Checker-query, narrowing-sweep and raw-negation timings."""
    # 1. Narrowing-on chained sweep (the peak-live-node workload).
    relnet = RelationalNet(ImprovedEncoding(factory()))
    sweep = traverse_relational(relnet, engine="chained",
                                cluster_size="auto",
                                simplify_frontier=True)
    # 2. Checker queries over the functional backend.
    symnet = SymbolicNet(ImprovedEncoding(factory()))
    reachable = traverse(symnet).reachable
    checker = ModelChecker(symnet, reachable=reachable)
    initial = symnet.marking_function(symnet.net.initial_marking)
    start = time.perf_counter()
    deadlocks = checker.find_deadlocks()
    no_deadlock = checker.ag(~symnet.deadlock_condition())
    home = checker.can_always_recover(initial)
    checker_seconds = time.perf_counter() - start
    # 3. Raw negation on the full reachable set.
    bdd = symnet.bdd
    root = reachable.node
    start = time.perf_counter()
    for _ in range(NOT_REPEATS):
        negated = bdd.apply_not(root)
    not_o1_seconds = (time.perf_counter() - start) / NOT_REPEATS
    assert bdd.apply_not(negated) == root
    bdd.clear_caches()
    start = time.perf_counter()
    rebuilt = recursive_not(bdd, root)
    not_recursive_seconds = time.perf_counter() - start
    assert rebuilt == negated

    return {
        "markings": sweep.marking_count,
        "sweep_seconds": sweep.seconds,
        "sweep_iterations": sweep.iterations,
        "peak_live_nodes": sweep.peak_live_nodes,
        "final_bdd_nodes": sweep.final_bdd_nodes,
        "checker_seconds": checker_seconds,
        "checker_deadlocks": bool(deadlocks),
        "checker_ag_markings": symnet.count_markings(no_deadlock),
        "checker_home": bool(home),
        "reachable_nodes": reachable.size(),
        "not_o1_seconds": not_o1_seconds,
        "not_recursive_seconds": not_recursive_seconds,
        "not_speedup": (not_recursive_seconds / not_o1_seconds
                        if not_o1_seconds > 0 else float("inf")),
    }


def with_pre_pr_ratios(name: str, row: Dict) -> Dict:
    """Attach the committed seed-commit comparison, when recorded."""
    baseline = PRE_PR.get(name) or {}
    if baseline:
        row["pre_pr"] = dict(baseline)
        if baseline.get("peak_live_nodes"):
            row["peak_reduction_vs_pre_pr"] = (
                baseline["peak_live_nodes"] / row["peak_live_nodes"]
                if row["peak_live_nodes"] > 0 else float("inf"))
        if baseline.get("checker_seconds"):
            row["checker_speedup_vs_pre_pr"] = (
                baseline["checker_seconds"] / row["checker_seconds"]
                if row["checker_seconds"] > 0 else float("inf"))
        if baseline.get("sweep_seconds"):
            row["sweep_speedup_vs_pre_pr"] = (
                baseline["sweep_seconds"] / row["sweep_seconds"]
                if row["sweep_seconds"] > 0 else float("inf"))
    return row


def collect() -> Dict:
    report: Dict = {
        "negation": {
            "benchmark": "negation-heavy checker queries and sweeps",
            "quick": QUICK,
            "cpus": os.cpu_count() or 1,
            "not_repeats": NOT_REPEATS,
            "instances": {},
        },
    }
    for name, factory in CONFIGS:
        row = with_pre_pr_ratios(name, measure_negation(factory))
        report["negation"]["instances"][name] = row
    return report


def write_report(report: Dict) -> str:
    """Merge the ``"negation"`` section into ``BENCH_relprod.json``."""
    merged: Dict = {}
    try:
        with open(JSON_PATH) as handle:
            merged = json.load(handle)
    except (FileNotFoundError, ValueError):
        pass
    merged.update(report)
    with open(JSON_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return JSON_PATH


@pytest.fixture(scope="module")
def report():
    data = collect()
    write_report(data)
    return data


def test_report_written(report):
    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH) as handle:
        assert "negation" in json.load(handle)


def test_rows_reach_known_fixpoints(report):
    for name, row in report["negation"]["instances"].items():
        assert row["markings"] > 0
        assert row["checker_ag_markings"] >= 0


def main() -> None:
    report = collect()
    path = write_report(report)
    for name, row in report["negation"]["instances"].items():
        print(f"{name}: sweep {row['sweep_seconds']:.3f}s "
              f"peak={row['peak_live_nodes']} "
              f"checker {row['checker_seconds']:.3f}s "
              f"not O(1) {row['not_o1_seconds'] * 1e6:.2f}us vs "
              f"recursive {row['not_recursive_seconds'] * 1e3:.2f}ms "
              f"({row['not_speedup']:.0f}x)")
        for key in ("peak_reduction_vs_pre_pr",
                    "checker_speedup_vs_pre_pr",
                    "sweep_speedup_vs_pre_pr"):
            if key in row:
                print(f"    {key} = {row[key]:.2f}x")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
