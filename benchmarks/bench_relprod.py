"""Relational-product benchmarks: fused vs. materialised, engines compared.

Three questions, answered on the slotted-ring and philosophers
generators:

1. **Fused vs. materialised image** — computing ``Img(R, S)`` with the
   one-pass ``and_exists`` against first building the conjunction
   ``R AND S`` and quantifying afterwards.  The fused form is the hot
   path of every relational traversal; the materialised form is the
   naive baseline it replaces.
2. **Image engines** — monolithic vs. partitioned vs. chained traversal
   through the same disjunctive partition (see
   :mod:`repro.symbolic.traversal`).
3. **Adaptive traversal** — the engine × reorder × frontier-restrict ×
   auto-cluster grid: pair-grouped dynamic sifting at traversal safe
   points, Coudert-Madre frontier simplification, and greedy
   support-overlap clustering (``cluster_size="auto"``), measured
   against PR 1's fixed-order chained engine.
4. **Parallel sweep** — the ``partitioned-mp`` engine over a
   workers ∈ {1, 2, 4} grid against the serial partitioned sweep.
   The report records ``cpus`` and each row's pool ``mode`` so readers
   (and the regression gate) can tell a genuine parallel measurement
   from one taken on a single-CPU box, where the ratio can only show
   IPC overhead, never a speedup.

Results are written to ``BENCH_relprod.json`` at the repository root so
the speedups land in the perf trajectory.  Run either way::

    PYTHONPATH=src python benchmarks/bench_relprod.py
    PYTHONPATH=src python -m pytest benchmarks/bench_relprod.py -q

Harness-scale instances by default; set ``REPRO_FULL=1`` for larger
ones, ``REPRO_QUICK=1`` for the two smallest only (the CI regression
gate, see ``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Tuple

import pytest

from repro.encoding import ImprovedEncoding
from repro.petri.generators import philosophers, slotted_ring
from repro.symbolic import (ImageEngine, ParallelPartitionedImageEngine,
                            RelationalNet, traverse_relational)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_relprod.json")

QUICK = bool(os.environ.get("REPRO_QUICK"))

# Ordered smallest to largest per family; the last entry of each family
# is the instance the adaptive acceptance criteria are measured on.
CONFIGS: List[Tuple[str, Callable]] = [
    ("slot-3", lambda: slotted_ring(3)),
    ("phil-6", lambda: philosophers(6)),
    ("slot-4", lambda: slotted_ring(4)),
    ("phil-8", lambda: philosophers(8)),
]
if QUICK:
    CONFIGS = CONFIGS[:2]
elif os.environ.get("REPRO_FULL"):
    CONFIGS += [
        ("slot-5", lambda: slotted_ring(5)),
        ("phil-12", lambda: philosophers(12)),
    ]

ENGINES = ("monolithic", "partitioned", "chained")
CLUSTER_SIZE = 1
OLD_ENGINE = "monolithic-materialised"
PARALLEL_WORKERS = (1, 2, 4)

# Threshold for the reorder-enabled configurations: low enough that the
# first sifting pass runs before the state sets blow up (the whole point
# of reordering *during* traversal), high enough that tiny instances
# are not dominated by sifting overhead.
REORDER_THRESHOLD = 5_000

# The adaptive grid.  "chained" with no features is exactly PR 1's
# engine (cluster_size=1, pinned interleaved order, raw frontiers) and
# is the baseline every other row's speedup/peak ratio refers to.
PR1_BASELINE = "chained"
ADAPTIVE_GRID: List[Tuple[str, str, Dict]] = [
    ("chained", "chained", {}),
    ("chained+restrict", "chained", dict(simplify_frontier=True)),
    ("chained+auto", "chained", dict(cluster_size="auto")),
    ("chained+reorder", "chained", dict(reorder=True)),
    ("chained+adaptive", "chained",
     dict(cluster_size="auto", simplify_frontier=True, reorder=True)),
    ("partitioned+adaptive", "partitioned",
     dict(cluster_size="auto", simplify_frontier=True, reorder=True)),
    ("monolithic+restrict+reorder", "monolithic",
     dict(simplify_frontier=True, reorder=True)),
]


def family_of(name: str) -> str:
    return name.rsplit("-", 1)[0]


def largest_per_family(instances) -> Dict[str, str]:
    """Last CONFIGS entry of each family present in ``instances``."""
    largest: Dict[str, str] = {}
    for name, _ in CONFIGS:
        if name in instances:
            largest[family_of(name)] = name
    return largest


class MaterialisedMonolithicEngine(ImageEngine):
    """The pre-``and_exists`` baseline: build ``frontier AND R`` in full,
    then quantify — one intermediate conjunction BDD per step."""

    name = OLD_ENGINE

    def __init__(self, relnet: RelationalNet) -> None:
        super().__init__(relnet)
        self._relation = None

    def advance(self, reached, frontier):
        if self._relation is None:
            self._relation = self.relnet.monolithic_relation()
        conjunction = frontier & self._relation
        successors = conjunction.exists(self.relnet.current).rename(
            self.relnet._to_current)
        return self._absorb(reached, successors)


def measure_image(factory: Callable) -> Dict:
    """Time one full-reachable-set image, materialised vs. fused.

    Both paths compute ``exists(current, S AND R)`` for the monolithic
    relation ``R`` and the reachable set ``S``; caches are cleared and
    garbage collected between the two so neither warms the other.  Live
    node counts are sampled right after the image to expose the
    footprint of the materialised intermediate conjunction.
    """
    relnet = RelationalNet(ImprovedEncoding(factory()))
    bdd = relnet.bdd
    relation = relnet.monolithic_relation()
    reached = traverse_relational(relnet, engine="chained",
                                  cluster_size=CLUSTER_SIZE).reachable

    bdd.collect_garbage()
    base_nodes = bdd.live_nodes()
    start = time.perf_counter()
    conjunction = reached & relation
    materialised = conjunction.exists(relnet.current)
    old_seconds = time.perf_counter() - start
    old_nodes = bdd.live_nodes()
    conjunction_nodes = conjunction.size()
    del conjunction

    bdd.collect_garbage()
    start = time.perf_counter()
    fused = reached.and_exists(relation, relnet.current)
    new_seconds = time.perf_counter() - start
    new_nodes = bdd.live_nodes()

    assert fused == materialised, "fused and materialised images disagree"
    return {
        "variables": len(relnet.current),
        "transitions": len(relnet.net.transitions),
        "relation_nodes": relation.size(),
        "reachable_nodes": reached.size(),
        "conjunction_nodes": conjunction_nodes,
        "materialised_seconds": old_seconds,
        "materialised_live_nodes": old_nodes - base_nodes,
        "fused_seconds": new_seconds,
        "fused_live_nodes": new_nodes - base_nodes,
        "speedup": old_seconds / new_seconds if new_seconds > 0
        else float("inf"),
    }


def measure_engines(factory: Callable,
                    engines: Tuple[str, ...] = ENGINES) -> Dict[str, Dict]:
    """Full fixpoint statistics per image engine, including the old
    materialise-then-quantify baseline (fresh manager per engine, so
    caches and peaks are not shared).  ``engines`` narrows the measured
    set (the CI regression gate only needs ``("chained",)``)."""
    rows: Dict[str, Dict] = {}
    for engine in (OLD_ENGINE,) + tuple(engines):
        relnet = RelationalNet(ImprovedEncoding(factory()))
        if engine == OLD_ENGINE:
            chosen = MaterialisedMonolithicEngine(relnet)
        else:
            chosen = engine
        result = traverse_relational(relnet, engine=chosen,
                                     cluster_size=CLUSTER_SIZE)
        rows[engine] = {
            "markings": result.marking_count,
            "iterations": result.iterations,
            "image_seconds": result.seconds,
            "peak_live_nodes": result.peak_live_nodes,
            "final_bdd_nodes": result.final_bdd_nodes,
            "ae_calls": relnet.bdd.ae_calls,
            "ae_cache_hits": relnet.bdd.ae_cache_hits,
        }
    old_seconds = rows[OLD_ENGINE]["image_seconds"]
    for engine in engines:
        row = rows[engine]
        row["speedup_vs_materialised"] = (
            old_seconds / row["image_seconds"]
            if row["image_seconds"] > 0 else float("inf"))
    return rows


def measure_adaptive(factory: Callable) -> Dict[str, Dict]:
    """The engine × reorder × restrict × auto-cluster grid.

    Every row runs on a fresh manager.  ``reorder`` rows construct the
    :class:`RelationalNet` with ``auto_reorder=True`` (pair-grouped
    sifting at the traversal safe points, partition metadata refreshed
    through the reorder hook); speedups and peak-live-node ratios are
    relative to the first row, PR 1's fixed-order chained engine.
    """
    rows: Dict[str, Dict] = {}
    for label, engine, options in ADAPTIVE_GRID:
        reorder = options.get("reorder", False)
        relnet = RelationalNet(ImprovedEncoding(factory()),
                               auto_reorder=reorder,
                               reorder_threshold=REORDER_THRESHOLD)
        result = traverse_relational(
            relnet, engine=engine,
            cluster_size=options.get("cluster_size", CLUSTER_SIZE),
            simplify_frontier=options.get("simplify_frontier", False))
        rows[label] = {
            "engine": engine,
            "reorder": reorder,
            "simplify_frontier": options.get("simplify_frontier", False),
            "cluster_size": options.get("cluster_size", CLUSTER_SIZE),
            "markings": result.marking_count,
            "iterations": result.iterations,
            "image_seconds": result.seconds,
            "peak_live_nodes": result.peak_live_nodes,
            "final_bdd_nodes": result.final_bdd_nodes,
            "reorder_count": result.reorder_count,
        }
    base = rows[PR1_BASELINE]
    for label, row in rows.items():
        row["speedup_vs_pr1_chained"] = (
            base["image_seconds"] / row["image_seconds"]
            if row["image_seconds"] > 0 else float("inf"))
        row["peak_reduction_vs_pr1_chained"] = (
            base["peak_live_nodes"] / row["peak_live_nodes"]
            if row["peak_live_nodes"] > 0 else float("inf"))
    return rows


def measure_parallel(factory: Callable) -> Dict[str, Dict]:
    """The ``partitioned-mp`` workers grid against the serial sweep.

    Every row runs the full fixpoint on a fresh manager with
    ``cluster_size="auto"``.  The ``serial`` row is the in-process
    partitioned engine; the ``workers-N`` rows run the same step with
    per-block products in N worker processes.  ``ratio_vs_serial`` is
    wall clock over the serial row (lower is better; < 1 is a genuine
    speedup and only achievable with >= 2 CPUs).  Each worker row also
    records the pool ``mode`` — ``serial-fallback`` marks environments
    where no processes could be spawned, in which case the ratio is
    meaningless and the gate skips it.
    """
    rows: Dict[str, Dict] = {}
    grid = [("serial", None)]
    grid += [(f"workers-{n}", n) for n in PARALLEL_WORKERS]
    for label, workers in grid:
        relnet = RelationalNet(ImprovedEncoding(factory()))
        if workers is None:
            result = traverse_relational(relnet, engine="partitioned",
                                         cluster_size="auto")
            extra = {}
        else:
            engine = ParallelPartitionedImageEngine(
                relnet, cluster_size="auto", workers=workers)
            try:
                result = traverse_relational(relnet, engine=engine)
                stats = engine.parallel_stats()
            finally:
                engine.close()
            extra = {
                "mode": stats["mode"],
                "pool_workers": stats["workers"],
                "pin_ships": stats["pin_ships"],
                "ship_bytes": stats["ship_bytes"],
            }
        rows[label] = dict({
            "markings": result.marking_count,
            "iterations": result.iterations,
            "image_seconds": result.seconds,
            "peak_live_nodes": result.peak_live_nodes,
        }, **extra)
    serial_seconds = rows["serial"]["image_seconds"]
    for label, row in rows.items():
        if label == "serial":
            continue
        row["ratio_vs_serial"] = (
            row["image_seconds"] / serial_seconds
            if serial_seconds > 0 else float("inf"))
    return rows


def collect() -> Dict:
    """All measurements, in the JSON layout of ``BENCH_relprod.json``."""
    report: Dict = {
        "benchmark": "relational product image engines",
        "cluster_size": CLUSTER_SIZE,
        "reorder_threshold": REORDER_THRESHOLD,
        "full_scale": bool(os.environ.get("REPRO_FULL")),
        "quick": QUICK,
        "cpus": os.cpu_count() or 1,
        "instances": {},
    }
    for name, factory in CONFIGS:
        report["instances"][name] = {
            "image": measure_image(factory),
            "engines": measure_engines(factory),
            "adaptive": measure_adaptive(factory),
        }
    # Second pass: the worker-pool grid churns far more memory than the
    # serial measurements (per-step serialization, forked pools), which
    # measurably slows *later* serial rows in this long-lived process.
    # Running it after every acceptance-gated measurement keeps those
    # rows in the same process state they were originally bounded in.
    for name, factory in CONFIGS:
        report["instances"][name]["parallel"] = measure_parallel(factory)
    return report


def write_report(report: Dict) -> str:
    """Write the report, preserving foreign top-level sections.

    ``BENCH_relprod.json`` is shared with ``bench_zdd_relprod.py`` (the
    ``"zdd"`` section); each benchmark overwrites only its own keys so
    running one does not drop the other's numbers.
    """
    merged: Dict = {}
    try:
        with open(JSON_PATH) as handle:
            merged = json.load(handle)
    except (FileNotFoundError, ValueError):
        pass
    merged.update(report)
    with open(JSON_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return JSON_PATH


@pytest.fixture(scope="module")
def report():
    data = collect()
    write_report(data)
    return data


def test_report_written(report):
    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH) as handle:
        assert json.load(handle)["instances"].keys() \
            == report["instances"].keys()


def test_fused_image_never_materialises(report):
    """The fused single-image pass must not pay for the conjunction: its
    live-node footprint stays below the materialised path's, which must
    build a conjunction at least as large as the final image."""
    for name in report["instances"]:
        image = report["instances"][name]["image"]
        assert image["fused_live_nodes"] <= image["materialised_live_nodes"]
        assert image["conjunction_nodes"] > 0


def test_chained_engine_beats_materialised_2x(report):
    """The acceptance bound: >= 2x image-time improvement on the largest
    configuration, new chained engine vs. the old materialise-then-
    quantify monolithic baseline.

    A wall-clock ratio, but a stable one: both sides run in the same
    process on the same instance, the chained engine's advantage is
    structural (3 vs 21 fixpoint iterations on phil-8), and the measured
    margin (~4.7x) leaves ample headroom over the 2x bound.
    """
    largest = CONFIGS[-1][0]
    engines = report["instances"][largest]["engines"]
    assert engines["chained"]["speedup_vs_materialised"] >= 2.0, engines


def test_engines_reach_same_fixpoint(report):
    for name, rows in report["instances"].items():
        counts = {rows["engines"][e]["markings"]
                  for e in (OLD_ENGINE,) + ENGINES}
        assert len(counts) == 1, (name, rows["engines"])


def test_partitioned_engines_use_fewer_live_nodes(report):
    largest = CONFIGS[-1][0]
    engines = report["instances"][largest]["engines"]
    old_peak = engines[OLD_ENGINE]["peak_live_nodes"]
    for engine in ("partitioned", "chained"):
        assert engines[engine]["peak_live_nodes"] < old_peak, engines


def test_chained_engine_iterates_less(report):
    for name, rows in report["instances"].items():
        engines = rows["engines"]
        assert engines["chained"]["iterations"] \
            <= engines["partitioned"]["iterations"], name


def test_adaptive_rows_reach_same_fixpoint(report):
    """Every engine × reorder × restrict × auto-cluster configuration
    computes the same reachable set."""
    for name, rows in report["instances"].items():
        counts = {row["markings"] for row in rows["adaptive"].values()}
        reference = rows["engines"]["chained"]["markings"]
        assert counts == {reference}, (name, rows["adaptive"])


def test_reorder_configurations_actually_reorder(report):
    """On the largest instances the reorder threshold must actually
    trigger — otherwise the grid is not measuring reordering at all."""
    for name in largest_per_family(report["instances"]).values():
        adaptive = report["instances"][name]["adaptive"]
        assert adaptive["chained+adaptive"]["reorder_count"] > 0, name


@pytest.mark.skipif(QUICK, reason="acceptance instances excluded in "
                                  "quick mode")
def test_adaptive_beats_pr1_chained_on_two_families(report):
    """The PR 2 acceptance bound: on the largest instance of at least
    two net families, the adaptive chained engine must deliver a >= 1.5x
    image-fixpoint speedup or a >= 2x peak-live-node reduction over
    PR 1's fixed-order chained engine.

    Measured margins leave ample headroom: phil-8 reaches ~6x speedup
    AND ~8x peak reduction, slot-4 ~5x peak reduction (sifting overhead
    roughly cancels the time win at that size).
    """
    largest = largest_per_family(report["instances"])
    assert len(largest) >= 2, largest
    for family, name in largest.items():
        row = report["instances"][name]["adaptive"]["chained+adaptive"]
        assert (row["speedup_vs_pr1_chained"] >= 1.5
                or row["peak_reduction_vs_pr1_chained"] >= 2.0), (name, row)


def test_parallel_rows_reach_same_fixpoint(report):
    """Every workers count computes the same reachable set as the serial
    partitioned sweep — whatever ``mode`` the pool ended up in."""
    for name, rows in report["instances"].items():
        counts = {row["markings"] for row in rows["parallel"].values()}
        reference = rows["engines"]["chained"]["markings"]
        assert counts == {reference}, (name, rows["parallel"])


def test_parallel_rows_record_pool_mode(report):
    """The honesty fields the gate relies on are always present: the
    report-level CPU count and a ``mode`` on every worker row."""
    assert report["cpus"] >= 1
    for name, rows in report["instances"].items():
        for workers in PARALLEL_WORKERS:
            assert rows["parallel"][f"workers-{workers}"]["mode"] \
                in ("process", "serial-fallback"), name


@pytest.mark.skipif(QUICK, reason="acceptance instances excluded in "
                                  "quick mode")
def test_workers2_beats_serial_on_largest(report):
    """The PR 8 acceptance bound: workers=2 finishes the largest
    instance's image fixpoint in <= 0.9x the serial partitioned time.

    A parallel speedup physically requires a second CPU and a live
    worker pool, so the bound is only *enforced* when both hold; on a
    single-CPU or pool-less box the grid still runs and the report
    still records the honest ratio (typically ~1x plus IPC overhead)
    together with ``cpus`` and ``mode``, and this test skips rather
    than asserting a number the hardware cannot produce.
    """
    if report["cpus"] < 2:
        pytest.skip(f"{report['cpus']} CPU(s): no parallel speedup is "
                    f"physically possible; ratio recorded but not gated")
    largest = CONFIGS[-1][0]
    row = report["instances"][largest]["parallel"]["workers-2"]
    if row["mode"] != "process":
        pytest.skip("worker pool unavailable (serial-fallback mode)")
    assert row["ratio_vs_serial"] <= 0.9, row


def main() -> None:
    report = collect()
    path = write_report(report)
    for name, rows in report["instances"].items():
        image = rows["image"]
        print(f"{name}: single image materialised "
              f"{image['materialised_seconds']:.3f}s vs fused "
              f"{image['fused_seconds']:.3f}s ({image['speedup']:.1f}x, "
              f"conjunction {image['conjunction_nodes']} nodes avoided)")
        for engine in (OLD_ENGINE,) + ENGINES:
            row = rows["engines"][engine]
            speedup = row.get("speedup_vs_materialised")
            suffix = f" speedup={speedup:.2f}x" if speedup else ""
            print(f"  {engine:<24} markings={row['markings']} "
                  f"iters={row['iterations']} "
                  f"t={row['image_seconds']:.3f}s "
                  f"peak={row['peak_live_nodes']}{suffix}")
        print("  adaptive grid (vs PR 1 chained):")
        for label, row in rows["adaptive"].items():
            print(f"    {label:<28} t={row['image_seconds']:.3f}s "
                  f"({row['speedup_vs_pr1_chained']:.2f}x) "
                  f"peak={row['peak_live_nodes']} "
                  f"({row['peak_reduction_vs_pr1_chained']:.2f}x) "
                  f"iters={row['iterations']} "
                  f"reorders={row['reorder_count']}")
        print(f"  parallel sweep ({report['cpus']} CPU(s)):")
        for label, row in rows["parallel"].items():
            ratio = row.get("ratio_vs_serial")
            suffix = (f" ratio={ratio:.2f}x mode={row['mode']}"
                      if ratio is not None else "")
            print(f"    {label:<12} t={row['image_seconds']:.3f}s "
                  f"peak={row['peak_live_nodes']}{suffix}")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
