"""Service-layer benchmarks: cold solve vs. cache hit vs. resume.

Four latencies per instance, all through :class:`AnalysisService` with
``workers=0`` (the deterministic in-process solve path — pool dispatch
would only add IPC noise to what is a cache/checkpoint measurement):

1. **cold** — empty cache, empty checkpoint dir: the full solve.
2. **warm** — the same request again in the same service: a memory-tier
   cache hit, resolved at submit time without any solver running.
3. **disk** — the same request through a *fresh* service sharing the
   cache directory: a disk-tier hit (parse + digest check + promote).
4. **resume** — a fresh service with an *empty* cache but the first
   service's checkpoint directory: the miss resumes the finished
   fixpoint (PR 7's final checkpoint) instead of solving cold.

``hit_speedup`` (cold/warm) is the ISSUE 9 acceptance number: a cache
hit must be at least 10x faster than the cold solve (gated in
``benchmarks/check_regression.py``).  Results merge into the
``"service"`` section of ``BENCH_relprod.json``, preserving every other
benchmark's sections.  Run either way::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Tuple

import pytest

from repro.analysis import AnalysisSpec
from repro.petri.generators import philosophers, slotted_ring
from repro.service import AnalysisService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_relprod.json")

QUICK = bool(os.environ.get("REPRO_QUICK"))

# Two families, per the acceptance criteria.  The cold solve must clear
# the regression gate's noise floor, so the smallest instances are
# already the phil-6 / slot-3 pair rather than the toy nets.
CONFIGS: List[Tuple[str, Callable]] = [
    ("phil-6", lambda: philosophers(6)),
    ("slot-3", lambda: slotted_ring(3)),
]
if not QUICK and os.environ.get("REPRO_FULL"):
    CONFIGS += [
        ("phil-8", lambda: philosophers(8)),
        ("slot-4", lambda: slotted_ring(4)),
    ]


def measure_service(factory: Callable) -> Dict:
    """Cold / warm / disk / resume latency for one instance.

    Everything runs in scratch directories that are removed afterwards;
    the only state shared between the phases is what the benchmark is
    about (the cache directory for the disk hit, the checkpoint
    directory for the resume).
    """
    net = factory()
    spec = AnalysisSpec()
    scratch = tempfile.mkdtemp(prefix="repro-bench-service-")
    cache_dir = os.path.join(scratch, "cache")
    ckpt_dir = os.path.join(scratch, "ckpt")
    try:
        with AnalysisService(cache_dir=cache_dir, workers=0,
                             checkpoint_dir=ckpt_dir) as service:
            start = time.perf_counter()
            cold = service.submit(net, spec)
            cold_payload = cold.result_dict()
            cold_seconds = time.perf_counter() - start
            assert cold.info["cache"] == "miss"

            start = time.perf_counter()
            warm = service.submit(net, spec)
            warm_payload = warm.result_dict()
            warm_seconds = time.perf_counter() - start
            assert warm.info == {"cache": "hit", "tier": "memory",
                                 "mode": "cache", "dedup": False,
                                 "key": list(cold.key)}
            # The acceptance identity: a hit is byte-for-byte the
            # original solve's payload, untouched by telemetry.
            assert warm_payload == cold_payload
            cache_stats = service.stats()["cache"]

        with AnalysisService(cache_dir=cache_dir, workers=0) as restarted:
            start = time.perf_counter()
            disk = restarted.submit(net, spec)
            disk_payload = disk.result_dict()
            disk_seconds = time.perf_counter() - start
            assert disk.info["tier"] == "disk"
            assert disk_payload == cold_payload

        with AnalysisService(cache_dir=os.path.join(scratch, "cache2"),
                             workers=0,
                             checkpoint_dir=ckpt_dir) as resuming:
            start = time.perf_counter()
            resumed = resuming.submit(net, spec)
            resumed_payload = resumed.result_dict()
            resume_seconds = time.perf_counter() - start
            assert resumed.info["cache"] == "miss"
            resume_status = (resumed_payload.get("extras", {})
                             .get("resume", {}).get("status"))
            assert resumed_payload["markings"] == cold_payload["markings"]
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    def ratio(denominator: float) -> float:
        return (cold_seconds / denominator if denominator > 0
                else float("inf"))

    return {
        "markings": cold_payload["markings"],
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "disk_seconds": disk_seconds,
        "resume_seconds": resume_seconds,
        "resume_status": resume_status,
        "hit_speedup": ratio(warm_seconds),
        "disk_hit_speedup": ratio(disk_seconds),
        "resume_speedup": ratio(resume_seconds),
        "cache": {
            "hits_memory": cache_stats["hits_memory"],
            "writes": cache_stats["writes"],
            "misses": cache_stats["misses"],
        },
    }


def collect() -> Dict:
    """All measurements, as the ``"service"`` top-level section."""
    section: Dict = {
        "benchmark": "analysis service: cold vs cache hit vs resume",
        "quick": QUICK,
        "workers": 0,
        "instances": {},
    }
    for name, factory in CONFIGS:
        section["instances"][name] = measure_service(factory)
    return {"service": section}


def write_report(report: Dict) -> str:
    """Merge the ``"service"`` section into ``BENCH_relprod.json``,
    preserving every other benchmark's top-level sections (same
    discipline as ``bench_relprod.write_report``)."""
    merged: Dict = {}
    try:
        with open(JSON_PATH) as handle:
            merged = json.load(handle)
    except (FileNotFoundError, ValueError):
        pass
    merged.update(report)
    with open(JSON_PATH, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return JSON_PATH


@pytest.fixture(scope="module")
def report():
    data = collect()
    write_report(data)
    return data


def test_report_written(report):
    with open(JSON_PATH) as handle:
        on_disk = json.load(handle)
    assert on_disk["service"]["instances"].keys() \
        == report["service"]["instances"].keys()


def test_cache_hit_is_10x_faster_than_cold(report):
    """The ISSUE 9 acceptance bound, measured at benchmark time (the CI
    gate in check_regression.py re-measures against the committed
    numbers).  Only enforced above the noise floor: a cold solve that
    finishes in a few milliseconds cannot meaningfully bound a
    microsecond-scale dictionary hit."""
    for name, row in report["service"]["instances"].items():
        if row["cold_seconds"] < 0.1:
            continue
        assert row["hit_speedup"] >= 10.0, (name, row)


def test_resume_actually_resumed(report):
    """The resume phase must have restored the prior service's final
    checkpoint — otherwise resume_seconds is just a second cold solve."""
    for name, row in report["service"]["instances"].items():
        assert row["resume_status"] == "resumed", (name, row)


def main() -> None:
    report = collect()
    path = write_report(report)
    for name, row in report["service"]["instances"].items():
        print(f"{name}: cold {row['cold_seconds']:.3f}s | "
              f"warm hit {row['warm_seconds'] * 1000:.2f}ms "
              f"({row['hit_speedup']:.0f}x) | "
              f"disk hit {row['disk_seconds'] * 1000:.2f}ms "
              f"({row['disk_hit_speedup']:.0f}x) | "
              f"resume {row['resume_seconds']:.3f}s "
              f"({row['resume_speedup']:.1f}x, "
              f"{row['resume_status']})")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
