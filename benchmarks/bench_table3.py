"""Table 3 benchmarks: sparse vs. dense BDD traversal.

One benchmark per (family, size, engine) cell of the paper's Table 3.
Assertions pin the paper's *shape*: the dense encoding must use half the
variables (exactly half on these families) and must not lose on final
BDD size; both engines must agree on the marking count.

Regenerate the printed table with ``python -m repro.experiments.table3``.
"""

import pytest

from repro.experiments.runner import run_dense, run_sparse
from repro.experiments.table3 import FACTORIES, HARNESS_SIZES, PAPER_SIZES
from repro.experiments.runner import full_scale

SIZES = PAPER_SIZES if full_scale() else HARNESS_SIZES
CASES = [(family, size)
         for family, sizes in SIZES.items() for size in sizes]
IDS = [f"{family}-{size}" for family, size in CASES]

_results = {}


def _net(family, size):
    return FACTORIES[family](size)


@pytest.mark.parametrize("family,size", CASES, ids=IDS)
def test_sparse_traversal(once, family, size):
    row = once(run_sparse, f"{family}-{size}", _net(family, size))
    _results[(family, size, "sparse")] = row
    assert row.markings > 0
    assert row.variables == len(_net(family, size).places)


@pytest.mark.parametrize("family,size", CASES, ids=IDS)
def test_dense_traversal(once, family, size):
    row = once(run_dense, f"{family}-{size}", _net(family, size))
    _results[(family, size, "dense")] = row
    assert row.markings > 0
    # Table 3 shape: dense needs ~half the sparse variables — exactly
    # half on muller/slot (pair/cycle SMCs only); phil is slightly above
    # (the paper's phil-5 is 35/65 = 0.54 as well).
    places = len(_net(family, size).places)
    if family in ("muller", "slot"):
        assert row.variables == places // 2
    else:
        assert row.variables <= 0.6 * places


@pytest.mark.parametrize("family,size", CASES, ids=IDS)
def test_engines_agree_and_dense_wins_nodes(family, size):
    """Run after the timed cells: cross-engine consistency + shape."""
    sparse = _results.get((family, size, "sparse"))
    dense = _results.get((family, size, "dense"))
    if sparse is None or dense is None:
        pytest.skip("timed cells did not run")
    assert sparse.markings == dense.markings
    assert dense.variables < sparse.variables
    # Nodes: dense must not blow up; the paper reports 2-4x reductions,
    # allow equality plus slack for tiny instances.
    assert dense.nodes <= sparse.nodes * 1.5
