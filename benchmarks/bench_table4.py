"""Table 4 benchmarks: sparse-ZDD baseline vs. dense BDD.

One benchmark per (instance, engine) cell of the paper's Table 4, on the
DME-spec / DME-circuit / JJreg substitute nets.  Assertions pin the
shape: the dense encoding uses ~half the variables, and both engines
agree on the marking count.

Regenerate the printed table with ``python -m repro.experiments.table4``.
"""

import pytest

from repro.experiments.runner import run_dense, run_zdd
from repro.experiments.table4 import instances

CASES = instances()
IDS = [name for name, _ in CASES]

_results = {}


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_zdd_traversal(once, name, net):
    row = once(run_zdd, name, net)
    _results[(name, "zdd")] = row
    assert row.markings > 0
    assert row.variables == len(net.places)


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_dense_traversal(once, name, net):
    row = once(run_dense, name, net)
    _results[(name, "dense")] = row
    assert row.markings > 0
    # Table 4 shape: the dense encoding cuts the variable count by
    # 40-50 % against the one-element-per-place ZDD universe.
    assert row.variables <= 0.6 * len(net.places)


@pytest.mark.parametrize("name,net", CASES, ids=IDS)
def test_engines_agree(name, net):
    zdd = _results.get((name, "zdd"))
    dense = _results.get((name, "dense"))
    if zdd is None or dense is None:
        pytest.skip("timed cells did not run")
    assert zdd.markings == dense.markings
