"""ZDD relational-product benchmarks: fused engines vs. the classic loop.

The sparse-ZDD baseline (Table 4) historically rewrote one transition at
a time — a chain of ``subset1``/``change`` passes per transition per
iteration.  The relational form
(:class:`repro.symbolic.zdd_relational.ZddRelationalNet`) replaces that
with sparse ``I ∪ O'`` relations over paired current/next elements and
per-block images through the fused ``supset``/``and_exists``/``rename``
pipeline.  Since the shared ``repro.dd`` kernel, the ZDD manager also
garbage-collects and dynamically reorders, and the shared chained sweep
narrows per-block working sets by set difference (the ROADMAP "ZDD
frontier narrowing", implemented once for both managers).  This
benchmark answers, on the slotted-ring and philosophers generators:

1. **Engines** — classic vs. monolithic vs. partitioned vs. chained
   fixpoints (fresh manager per engine, so caches are not shared).
   Chained rows include the diff-based working-set narrowing.
2. **Reorder grid** — the chained engine with pair-grouped dynamic
   sifting at the per-iteration safe points (``auto_reorder``), the
   configuration the shared kernel unlocked for ZDDs.
3. **Acceptance** — the chained engine must beat the classic
   per-transition loop on the largest instance of each family, and the
   reorder+narrowing chained rows must be no slower (classic-normalised)
   than the committed PR 3 chained baseline.

Results are merged into the ``"zdd"`` section of ``BENCH_relprod.json``
at the repository root (the BDD numbers keep their own sections); the
PR 3 chained baseline is carried forward in the section so later
regenerations keep gating against it.  Run either way::

    PYTHONPATH=src python benchmarks/bench_zdd_relprod.py
    PYTHONPATH=src python -m pytest benchmarks/bench_zdd_relprod.py -q

Harness-scale instances by default; ``REPRO_FULL=1`` adds larger ones,
``REPRO_QUICK=1`` keeps the two smallest only.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

import pytest

from repro.petri.generators import philosophers, slotted_ring
from repro.symbolic import ZddNet, ZddRelationalNet, traverse_zdd

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

# Shared report file and section-preserving merge writer.
from bench_relprod import JSON_PATH, write_report  # noqa: E402

QUICK = bool(os.environ.get("REPRO_QUICK"))

# Ordered smallest to largest per family; the last entry of each family
# is the instance the acceptance criteria are measured on.
CONFIGS: List[Tuple[str, Callable]] = [
    ("slot-3", lambda: slotted_ring(3)),
    ("phil-6", lambda: philosophers(6)),
    ("slot-4", lambda: slotted_ring(4)),
    ("phil-8", lambda: philosophers(8)),
]
if QUICK:
    CONFIGS = CONFIGS[:2]
elif os.environ.get("REPRO_FULL"):
    CONFIGS += [
        ("slot-5", lambda: slotted_ring(5)),
        ("phil-12", lambda: philosophers(12)),
    ]

OLD_ENGINE = "classic"

# Reorder rows sift in current/next pair groups at the per-iteration
# safe points.  The threshold is deliberately higher than the BDD
# bench's: ZDD families here are small enough that sifting below ~20k
# live nodes costs more wall-clock than the node savings return
# (measured on slot-4: threshold 2k tripled the fixpoint time while 20k
# matched the unreordered run; phil-8 gains ~1.3x at 20k).
REORDER_THRESHOLD = 20_000

# Engine grid: label -> (engine, cluster_size, auto_reorder).
# "chained+auto" is the narrowing acceptance row; the "+reorder" rows
# exercise the kernel's pair-grouped ZDD sifting.
ENGINE_GRID: List[Tuple[str, str, "int | str", bool]] = [
    ("monolithic", "monolithic", 1, False),
    ("partitioned", "partitioned", 1, False),
    ("partitioned+auto", "partitioned", "auto", False),
    ("chained", "chained", 1, False),
    ("chained+auto", "chained", "auto", False),
    ("chained+reorder", "chained", 1, True),
    ("chained+auto+reorder", "chained", "auto", True),
]
# The classic-vs-chained acceptance metric is the better of the plain
# chained rows; the PR 3 acceptance is the better of the reorder rows
# (which also carry the narrowing — it is unconditional in the shared
# sweep).
CHAINED_ROWS = ("chained", "chained+auto")
REORDER_ROWS = ("chained+reorder", "chained+auto+reorder")
# Re-measure attempts for the wall-clock acceptance bounds: only a
# reproducible slowdown fails (same policy as check_regression.py).
ATTEMPTS = 3
# Normalised-ratio tolerance for the PR 3 comparison.
TOLERANCE = 0.25


def family_of(name: str) -> str:
    return name.rsplit("-", 1)[0]


def largest_per_family(instances) -> Dict[str, str]:
    """Last CONFIGS entry of each family present in ``instances``."""
    largest: Dict[str, str] = {}
    for name, _ in CONFIGS:
        if name in instances:
            largest[family_of(name)] = name
    return largest


def measure_engines(factory: Callable) -> Dict[str, Dict]:
    """Full fixpoint statistics per ZDD image engine.

    Every row runs on a fresh manager; ``total_nodes`` (the high-water
    node-slot count) stands next to ``peak_live_nodes`` (peak
    unique-table occupancy, which garbage collection and reordering can
    now actually lower).
    """
    rows: Dict[str, Dict] = {}
    zddnet = ZddNet(factory())
    result = traverse_zdd(zddnet, engine="classic")
    rows[OLD_ENGINE] = {
        "markings": result.marking_count,
        "iterations": result.iterations,
        "image_seconds": result.seconds,
        "final_zdd_nodes": result.final_zdd_nodes,
        "total_nodes": zddnet.zdd.total_nodes(),
        "peak_live_nodes": result.peak_live_nodes,
    }
    for label, engine, cluster_size, reorder in ENGINE_GRID:
        relnet = ZddRelationalNet(factory(), auto_reorder=reorder,
                                  reorder_threshold=REORDER_THRESHOLD)
        result = traverse_zdd(relnet, engine=engine,
                              cluster_size=cluster_size)
        rows[label] = {
            "engine": engine,
            "cluster_size": cluster_size,
            "reorder": reorder,
            "markings": result.marking_count,
            "iterations": result.iterations,
            "image_seconds": result.seconds,
            "final_zdd_nodes": result.final_zdd_nodes,
            "total_nodes": relnet.zdd.total_nodes(),
            "peak_live_nodes": result.peak_live_nodes,
            "reorder_count": result.reorder_count,
            "ae_calls": relnet.zdd.ae_calls,
            "ae_cache_hits": relnet.zdd.ae_cache_hits,
        }
    classic_seconds = rows[OLD_ENGINE]["image_seconds"]
    for label, _, _, _ in ENGINE_GRID:
        row = rows[label]
        row["speedup_vs_classic"] = (
            classic_seconds / row["image_seconds"]
            if row["image_seconds"] > 0 else float("inf"))
    rows["summary"] = {
        # Plain chained rows only: the PR 3 acceptance gate must not be
        # able to hide a plain-sweep regression behind a reorder win.
        "chained_best_speedup_vs_classic": max(
            rows[label]["speedup_vs_classic"] for label in CHAINED_ROWS),
        "reorder_narrowing_best_speedup_vs_classic": max(
            rows[label]["speedup_vs_classic"] for label in REORDER_ROWS),
    }
    return rows


def committed_pr3_baselines() -> Dict[str, float]:
    """Classic-normalised PR 3 chained ratios from the committed report.

    The PR 3 baseline (chained without narrowing or reordering) is
    carried forward across regenerations as ``pr3_chained_ratio`` —
    ``chained_image_seconds / classic_image_seconds`` measured in the
    same process, so the comparison survives machine changes.  On the
    first regeneration after PR 3 the ratio is derived from the
    committed plain chained rows.
    """
    try:
        with open(JSON_PATH) as handle:
            stored = json.load(handle)
    except FileNotFoundError:
        return {}
    section = stored.get("zdd") or {}
    baselines: Dict[str, float] = {}
    for name, rows in section.get("instances", {}).items():
        carried = rows.get("pr3_chained_ratio")
        if carried is not None:
            baselines[name] = carried
            continue
        classic = rows.get(OLD_ENGINE, {}).get("image_seconds")
        chained = [rows[label]["image_seconds"] for label in CHAINED_ROWS
                   if label in rows]
        if classic and chained:
            baselines[name] = min(chained) / classic
    return baselines


def reorder_ratio(rows: Dict[str, Dict]) -> Optional[float]:
    """Classic-normalised time of the best reorder+narrowing row."""
    classic = rows[OLD_ENGINE]["image_seconds"]
    if classic <= 0:
        return None
    return min(rows[label]["image_seconds"]
               for label in REORDER_ROWS) / classic


def collect() -> Dict:
    """All measurements, in the ``"zdd"`` JSON section layout."""
    pr3 = committed_pr3_baselines()
    instances: Dict[str, Dict] = {}
    for name, factory in CONFIGS:
        rows = measure_engines(factory)
        if name in pr3:
            rows["pr3_chained_ratio"] = pr3[name]
            ratio = reorder_ratio(rows)
            if ratio is not None:
                rows["summary"]["reorder_narrowing_vs_pr3_ratio"] = \
                    ratio / pr3[name] if pr3[name] > 0 else float("inf")
        instances[name] = rows
    section: Dict = {
        "benchmark": "ZDD relational product image engines",
        "full_scale": bool(os.environ.get("REPRO_FULL")),
        "quick": QUICK,
        "reorder_threshold": REORDER_THRESHOLD,
        "instances": instances,
    }
    return {"zdd": section}


@pytest.fixture(scope="module")
def report():
    data = collect()
    write_report(data)
    return data["zdd"]


def test_report_written(report):
    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH) as handle:
        stored = json.load(handle)
    assert stored["zdd"]["instances"].keys() == report["instances"].keys()
    # The BDD sections must survive the merge.
    assert "instances" in stored


def test_engines_reach_same_fixpoint(report):
    for name, rows in report["instances"].items():
        counts = {rows[OLD_ENGINE]["markings"]}
        counts.update(rows[label]["markings"]
                      for label, _, _, _ in ENGINE_GRID)
        assert len(counts) == 1, (name, counts)


def test_chained_iterates_less(report):
    for name, rows in report["instances"].items():
        assert rows["chained+auto"]["iterations"] \
            <= rows[OLD_ENGINE]["iterations"], name


def test_fused_product_cache_is_hit(report):
    for name, rows in report["instances"].items():
        row = rows["chained+auto"]
        assert row["ae_calls"] > 0
        assert row["ae_cache_hits"] > 0, (name, row)


def test_chained_beats_classic_on_largest(report):
    """The PR 3 acceptance bound, still holding: on the largest instance
    of each family the chained ZDD image fixpoint must beat the old
    per-transition ``ZddNet.image_all`` loop.

    A wall-clock ratio, but a structural one (fewer, cheaper fixpoint
    iterations: 2 vs 21 on phil-8, 10 vs 38 on slot-4); a failing
    instance is re-measured up to ``ATTEMPTS`` times so only a
    reproducible slowdown fails.
    """
    for family, name in largest_per_family(report["instances"]).items():
        rows = report["instances"][name]
        best = rows["summary"]["chained_best_speedup_vs_classic"]
        attempt = 1
        while best < 1.0 and attempt < ATTEMPTS:
            fresh = measure_engines(dict(CONFIGS)[name])
            best = max(best,
                       fresh["summary"]["chained_best_speedup_vs_classic"])
            attempt += 1
        assert best >= 1.0, (name, best)


def test_reorder_narrowing_not_slower_than_pr3(report):
    """The PR 5 acceptance bound: chained with reordering *and*
    frontier narrowing must be no slower than the PR 3 chained baseline
    on the largest instance of each family.

    Both sides are classic-normalised ratios measured in-process, so
    the committed baseline transfers across machines; a failing
    instance is re-measured up to ``ATTEMPTS`` times.
    """
    for family, name in largest_per_family(report["instances"]).items():
        rows = report["instances"][name]
        baseline = rows.get("pr3_chained_ratio")
        if baseline is None or baseline <= 0:
            continue  # first run on a fresh checkout: nothing committed
        bound = baseline * (1 + TOLERANCE)
        ratio = reorder_ratio(rows)
        attempt = 1
        while ratio is not None and ratio > bound and attempt < ATTEMPTS:
            fresh = measure_engines(dict(CONFIGS)[name])
            fresh_ratio = reorder_ratio(fresh)
            if fresh_ratio is not None:
                ratio = min(ratio, fresh_ratio)
            attempt += 1
        assert ratio is not None and ratio <= bound, \
            (name, ratio, baseline)


def main() -> None:
    data = collect()
    path = write_report(data)
    for name, rows in data["zdd"]["instances"].items():
        classic = rows[OLD_ENGINE]
        print(f"{name}: classic t={classic['image_seconds']:.3f}s "
              f"iters={classic['iterations']} "
              f"markings={classic['markings']}")
        for label, _, _, _ in ENGINE_GRID:
            row = rows[label]
            print(f"  {label:<22} t={row['image_seconds']:.3f}s "
                  f"({row['speedup_vs_classic']:.2f}x) "
                  f"iters={row['iterations']} "
                  f"peak={row['peak_live_nodes']} "
                  f"reorders={row['reorder_count']} "
                  f"ae={row['ae_calls']}/{row['ae_cache_hits']}")
        summary = rows["summary"]
        print(f"  best chained speedup vs classic: "
              f"{summary['chained_best_speedup_vs_classic']:.2f}x")
        if "pr3_chained_ratio" in rows:
            print(f"  reorder+narrowing vs PR3 chained (normalised): "
                  f"{summary.get('reorder_narrowing_vs_pr3_ratio', 0):.2f}"
                  f" (<= {1 + TOLERANCE:.2f} passes)")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
