"""ZDD relational-product benchmarks: fused engines vs. the classic loop.

The sparse-ZDD baseline (Table 4) historically rewrote one transition at
a time — a chain of ``subset1``/``change`` passes per transition per
iteration.  The relational form
(:class:`repro.symbolic.zdd_relational.ZddRelationalNet`) replaces that
with sparse ``I ∪ O'`` relations over paired current/next elements and
per-block images through the fused ``supset``/``and_exists``/``rename``
pipeline.  This benchmark answers, on the slotted-ring and philosophers
generators:

1. **Engines** — classic vs. monolithic vs. partitioned vs. chained
   fixpoints (fresh manager per engine, so caches are not shared).
2. **Acceptance** — the chained engine must beat the classic
   per-transition loop on the largest instance of each family.

Results are merged into the ``"zdd"`` section of ``BENCH_relprod.json``
at the repository root (the BDD numbers keep their own sections).  Run
either way::

    PYTHONPATH=src python benchmarks/bench_zdd_relprod.py
    PYTHONPATH=src python -m pytest benchmarks/bench_zdd_relprod.py -q

Harness-scale instances by default; ``REPRO_FULL=1`` adds larger ones,
``REPRO_QUICK=1`` keeps the two smallest only.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable, Dict, List, Tuple

import pytest

from repro.petri.generators import philosophers, slotted_ring
from repro.symbolic import ZddNet, ZddRelationalNet, traverse_zdd

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

# Shared report file and section-preserving merge writer.
from bench_relprod import JSON_PATH, write_report  # noqa: E402

QUICK = bool(os.environ.get("REPRO_QUICK"))

# Ordered smallest to largest per family; the last entry of each family
# is the instance the acceptance criterion is measured on.
CONFIGS: List[Tuple[str, Callable]] = [
    ("slot-3", lambda: slotted_ring(3)),
    ("phil-6", lambda: philosophers(6)),
    ("slot-4", lambda: slotted_ring(4)),
    ("phil-8", lambda: philosophers(8)),
]
if QUICK:
    CONFIGS = CONFIGS[:2]
elif os.environ.get("REPRO_FULL"):
    CONFIGS += [
        ("slot-5", lambda: slotted_ring(5)),
        ("phil-12", lambda: philosophers(12)),
    ]

OLD_ENGINE = "classic"
# Engine grid: label -> (engine, cluster_size).  "chained+auto" is the
# acceptance row; plain rows keep the per-transition partition so the
# clustering win is visible separately.
ENGINE_GRID: List[Tuple[str, str, "int | str"]] = [
    ("monolithic", "monolithic", 1),
    ("partitioned", "partitioned", 1),
    ("partitioned+auto", "partitioned", "auto"),
    ("chained", "chained", 1),
    ("chained+auto", "chained", "auto"),
]
# The acceptance metric is the better of the two chained rows: the
# clustering choice shifts sub-0.1 s timings by more than the noise
# floor, but both rows are the same chained sweep.
CHAINED_ROWS = ("chained", "chained+auto")
# Re-measure attempts for the wall-clock acceptance bound: only a
# reproducible slowdown fails (same policy as check_regression.py).
ATTEMPTS = 3


def family_of(name: str) -> str:
    return name.rsplit("-", 1)[0]


def largest_per_family(instances) -> Dict[str, str]:
    """Last CONFIGS entry of each family present in ``instances``."""
    largest: Dict[str, str] = {}
    for name, _ in CONFIGS:
        if name in instances:
            largest[family_of(name)] = name
    return largest


def measure_engines(factory: Callable) -> Dict[str, Dict]:
    """Full fixpoint statistics per ZDD image engine.

    Every row runs on a fresh manager; ``total_nodes`` (nodes ever
    created — the manager never frees) stands in for the peak-live
    metric of the BDD benchmarks.
    """
    rows: Dict[str, Dict] = {}
    zddnet = ZddNet(factory())
    result = traverse_zdd(zddnet, engine="classic")
    rows[OLD_ENGINE] = {
        "markings": result.marking_count,
        "iterations": result.iterations,
        "image_seconds": result.seconds,
        "final_zdd_nodes": result.final_zdd_nodes,
        "total_nodes": zddnet.zdd.total_nodes(),
    }
    for label, engine, cluster_size in ENGINE_GRID:
        relnet = ZddRelationalNet(factory())
        result = traverse_zdd(relnet, engine=engine,
                              cluster_size=cluster_size)
        rows[label] = {
            "engine": engine,
            "cluster_size": cluster_size,
            "markings": result.marking_count,
            "iterations": result.iterations,
            "image_seconds": result.seconds,
            "final_zdd_nodes": result.final_zdd_nodes,
            "total_nodes": relnet.zdd.total_nodes(),
            "ae_calls": relnet.zdd.ae_calls,
            "ae_cache_hits": relnet.zdd.ae_cache_hits,
        }
    classic_seconds = rows[OLD_ENGINE]["image_seconds"]
    for label, _, _ in ENGINE_GRID:
        row = rows[label]
        row["speedup_vs_classic"] = (
            classic_seconds / row["image_seconds"]
            if row["image_seconds"] > 0 else float("inf"))
    rows["summary"] = {
        "chained_best_speedup_vs_classic": max(
            rows[label]["speedup_vs_classic"] for label in CHAINED_ROWS),
    }
    return rows


def collect() -> Dict:
    """All measurements, in the ``"zdd"`` JSON section layout."""
    section: Dict = {
        "benchmark": "ZDD relational product image engines",
        "full_scale": bool(os.environ.get("REPRO_FULL")),
        "quick": QUICK,
        "instances": {name: measure_engines(factory)
                      for name, factory in CONFIGS},
    }
    return {"zdd": section}


@pytest.fixture(scope="module")
def report():
    data = collect()
    write_report(data)
    return data["zdd"]


def test_report_written(report):
    assert os.path.exists(JSON_PATH)
    with open(JSON_PATH) as handle:
        stored = json.load(handle)
    assert stored["zdd"]["instances"].keys() == report["instances"].keys()
    # The BDD sections must survive the merge.
    assert "instances" in stored


def test_engines_reach_same_fixpoint(report):
    for name, rows in report["instances"].items():
        counts = {rows[OLD_ENGINE]["markings"]}
        counts.update(rows[label]["markings"] for label, _, _ in ENGINE_GRID)
        assert len(counts) == 1, (name, counts)


def test_chained_iterates_less(report):
    for name, rows in report["instances"].items():
        assert rows["chained+auto"]["iterations"] \
            <= rows[OLD_ENGINE]["iterations"], name


def test_fused_product_cache_is_hit(report):
    for name, rows in report["instances"].items():
        row = rows["chained+auto"]
        assert row["ae_calls"] > 0
        assert row["ae_cache_hits"] > 0, (name, row)


def test_chained_beats_classic_on_largest(report):
    """The acceptance bound: on the largest instance of each family the
    chained ZDD image fixpoint must beat the old per-transition
    ``ZddNet.image_all`` loop.

    A wall-clock ratio, but a structural one (fewer, cheaper fixpoint
    iterations: 2 vs 21 on phil-8, 10 vs 38 on slot-4); a failing
    instance is re-measured up to ``ATTEMPTS`` times so only a
    reproducible slowdown fails.  Measured margins: ~1.5x on phil-8,
    ~2.5x on slot-4.
    """
    for family, name in largest_per_family(report["instances"]).items():
        rows = report["instances"][name]
        best = rows["summary"]["chained_best_speedup_vs_classic"]
        attempt = 1
        while best < 1.0 and attempt < ATTEMPTS:
            fresh = measure_engines(dict(CONFIGS)[name])
            best = max(best,
                       fresh["summary"]["chained_best_speedup_vs_classic"])
            attempt += 1
        assert best >= 1.0, (name, best)


def main() -> None:
    data = collect()
    path = write_report(data)
    for name, rows in data["zdd"]["instances"].items():
        classic = rows[OLD_ENGINE]
        print(f"{name}: classic t={classic['image_seconds']:.3f}s "
              f"iters={classic['iterations']} "
              f"markings={classic['markings']}")
        for label, _, _ in ENGINE_GRID:
            row = rows[label]
            print(f"  {label:<18} t={row['image_seconds']:.3f}s "
                  f"({row['speedup_vs_classic']:.2f}x) "
                  f"iters={row['iterations']} "
                  f"nodes={row['total_nodes']} "
                  f"ae={row['ae_calls']}/{row['ae_cache_hits']}")
        best = rows["summary"]["chained_best_speedup_vs_classic"]
        print(f"  best chained speedup vs classic: {best:.2f}x")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
