"""CI gate: fail if a gated engine's image time regresses > 25 %.

Runs the benchmarks in quick mode (the two smallest instances each) and
compares image-fixpoint times against the committed
``BENCH_relprod.json`` baseline — the BDD chained rows, the ZDD chained
rows, the ``partitioned-mp`` workers-2/serial ratio (the latter
only on machines where the ratio is evidence: >= 2 CPUs and a live
worker pool on both sides, see :func:`check_parallel`), the
analysis service's cache-hit speedup (an absolute >= 10x floor, see
:func:`check_service`), and the complement-edge negation wins (the
ISSUE 10 acceptance floors plus structural peak-live-node drift, see
:func:`check_negation`).  Engine rows are read through :func:`image_seconds`, which
understands both the native benchmark row shape and the serialized
``repro.analysis.AnalysisResult`` schema.  Raw wall-clock is
meaningless across machines, so times are normalised by a baseline
measured in the same process — the materialised-monolithic engine on
the BDD side, the classic per-transition loop on the ZDD side::

    normalised = chained_image_seconds / baseline_image_seconds

The gate fails when a fresh normalised time exceeds the committed one by
more than ``TOLERANCE`` on any shared instance.  Two noise guards keep
it from crying wolf: instances whose committed chained fixpoint ran
under the noise floor are skipped (``MIN_SECONDS`` for BDD rows,
``MIN_SECONDS_ZDD`` for the much faster ZDD rows), and a failing
instance is re-measured up to ``ATTEMPTS`` times — only a reproducible
slowdown fails the gate.  Run from the repository root::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import os
import sys

os.environ.setdefault("REPRO_QUICK", "1")

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_negation  # noqa: E402  (needs REPRO_QUICK set first)
import bench_relprod  # noqa: E402
import bench_service  # noqa: E402
import bench_zdd_relprod  # noqa: E402

TOLERANCE = 0.25
MIN_SECONDS = 0.1
MIN_SECONDS_ZDD = 0.02
ATTEMPTS = 3
HIT_SPEEDUP_MIN = 10.0
#: ISSUE 10 acceptance floors on the committed complement-edge numbers:
#: checker queries >= 1.3x faster and peak live nodes >= 1.5x smaller
#: than the recorded seed-commit run.
CHECKER_SPEEDUP_MIN = 1.3
PEAK_REDUCTION_MIN = 1.5
#: Floor for the in-process O(1)-vs-recursive negation ratio.  A bit
#: flip against a full DAG rebuild runs thousands of times faster; a
#: fresh ratio under this floor means real work leaked back into
#: ``apply_not``.
NOT_SPEEDUP_MIN = 50.0


def parallel_ratio(rows: dict) -> float:
    """workers-2 over serial image time (lower is better)."""
    serial = image_seconds(rows["serial"])
    if serial <= 0:
        return float("inf")
    return image_seconds(rows["workers-2"]) / serial


def image_seconds(entry: dict) -> float:
    """Image-fixpoint seconds from either engine-row schema.

    Two shapes are understood: the native ``bench_relprod`` row
    (``{"image_seconds": ...}``) and a serialized
    ``repro.analysis.AnalysisResult`` dict (``{"schema": ..., "extras":
    {"fixpoint_seconds": ...}, ...}``) — so baselines recorded through
    ``AnalysisResult.to_dict()`` gate exactly like native ones.  The
    dict is read directly rather than through
    ``AnalysisResult.from_dict`` so a baseline written by a newer
    schema (or a spec with fields this build doesn't know) still
    yields its timing instead of crashing the gate.
    """
    if "schema" in entry:
        extras = entry.get("extras", {})
        if "fixpoint_seconds" in extras:
            return extras["fixpoint_seconds"]
        # Keep the ratio build-free even without the extras breakdown:
        # native rows time only the image fixpoint.
        return entry["seconds"] - extras.get("build_seconds", 0.0)
    return entry["image_seconds"]


def normalised_chained(engines: dict) -> float:
    materialised = image_seconds(engines[bench_relprod.OLD_ENGINE])
    chained = image_seconds(engines["chained"])
    if materialised <= 0:
        return float("inf")
    return chained / materialised


def normalised_zdd_chained(rows: dict) -> float:
    """Best chained row over the classic loop, both from one process."""
    classic = image_seconds(rows[bench_zdd_relprod.OLD_ENGINE])
    chained = min(image_seconds(rows[label])
                  for label in bench_zdd_relprod.CHAINED_ROWS
                  if label in rows)
    if classic <= 0:
        return float("inf")
    return chained / classic


def check_zdd(baseline: dict) -> "tuple[list, int, int]":
    """Gate the ZDD chained rows: fresh vs committed classic-normalised
    ratio, same tolerance/attempt policy as the BDD gate."""
    failures = []
    checked = 0
    shared = 0
    section = baseline.get("zdd") or {}
    instances = section.get("instances", {})
    for name, factory in bench_zdd_relprod.CONFIGS:
        committed = instances.get(name)
        if committed is None:
            print(f"zdd/{name}: not in committed baseline, skipped")
            continue
        shared += 1
        committed_seconds = min(
            image_seconds(committed[label])
            for label in bench_zdd_relprod.CHAINED_ROWS
            if label in committed)
        if committed_seconds < MIN_SECONDS_ZDD:
            print(f"zdd/{name}: committed chained fixpoint took "
                  f"{committed_seconds:.3f}s (< {MIN_SECONDS_ZDD}s noise "
                  f"floor), skipped")
            continue
        old_ratio = normalised_zdd_chained(committed)
        bound = old_ratio * (1 + TOLERANCE)
        new_ratio = float("inf")
        for attempt in range(1, ATTEMPTS + 1):
            fresh = bench_zdd_relprod.measure_engines(factory)
            new_ratio = min(new_ratio, normalised_zdd_chained(fresh))
            if new_ratio <= bound:
                break
        change = (new_ratio - old_ratio) / old_ratio if old_ratio else 0.0
        verdict = "OK" if new_ratio <= bound else "REGRESSION"
        print(f"zdd/{name}: chained/classic time ratio "
              f"{old_ratio:.3f} -> {new_ratio:.3f} "
              f"({change:+.1%}, {attempt} attempt(s)) {verdict}")
        checked += 1
        if verdict == "REGRESSION":
            failures.append(f"zdd/{name}")
    return failures, checked, shared


def check_parallel(baseline: dict) -> "tuple[list, int, int]":
    """Gate the ``partitioned-mp`` engine: the fresh workers-2/serial
    time ratio must not exceed the committed one by ``TOLERANCE``.

    The ratio is only evidence when both sides actually raced a worker
    pool, so an instance is skipped — never failed — when this machine
    has fewer than 2 CPUs (the ratio can only measure IPC overhead
    there), when the committed row or the fresh run degraded to
    ``serial-fallback`` mode, or when the committed serial fixpoint sat
    under the noise floor.  Skips print their reason so a silently
    green gate is distinguishable from a vacuously green one.
    """
    failures = []
    checked = 0
    shared = 0
    cpus = os.cpu_count() or 1
    for name, factory in bench_relprod.CONFIGS:
        committed = (baseline["instances"].get(name) or {}).get("parallel")
        if committed is None:
            print(f"parallel/{name}: not in committed baseline, skipped")
            continue
        shared += 1
        if cpus < 2:
            print(f"parallel/{name}: {cpus} CPU(s) — the workers-2/serial "
                  f"ratio only measures IPC overhead here, skipped")
            continue
        if committed["workers-2"].get("mode") != "process":
            print(f"parallel/{name}: committed baseline ran without a "
                  f"worker pool "
                  f"(mode={committed['workers-2'].get('mode')}), skipped")
            continue
        committed_seconds = image_seconds(committed["serial"])
        if committed_seconds < MIN_SECONDS:
            print(f"parallel/{name}: committed serial fixpoint took "
                  f"{committed_seconds:.3f}s (< {MIN_SECONDS}s noise "
                  f"floor), skipped")
            continue
        old_ratio = parallel_ratio(committed)
        bound = old_ratio * (1 + TOLERANCE)
        new_ratio = float("inf")
        degraded = False
        for attempt in range(1, ATTEMPTS + 1):
            fresh = bench_relprod.measure_parallel(factory)
            if fresh["workers-2"].get("mode") != "process":
                degraded = True
                break
            new_ratio = min(new_ratio, parallel_ratio(fresh))
            if new_ratio <= bound:
                break
        if degraded:
            print(f"parallel/{name}: worker pool unavailable on this "
                  f"machine (serial-fallback), skipped")
            continue
        change = (new_ratio - old_ratio) / old_ratio if old_ratio else 0.0
        verdict = "OK" if new_ratio <= bound else "REGRESSION"
        print(f"parallel/{name}: workers-2/serial time ratio "
              f"{old_ratio:.3f} -> {new_ratio:.3f} "
              f"({change:+.1%}, {attempt} attempt(s)) {verdict}")
        checked += 1
        if verdict == "REGRESSION":
            failures.append(f"parallel/{name}")
    return failures, checked, shared


def check_service(baseline: dict) -> "tuple[list, int, int]":
    """Gate the analysis service: a cache hit must stay >= 10x faster
    than the cold solve (the ISSUE 9 acceptance bound — an absolute
    floor, not a drift check, since the hit path is a dictionary lookup
    plus a digest check and any ratio below 10x means real work leaked
    into it).  Instances whose committed cold solve sat under the noise
    floor are skipped: a millisecond-scale cold solve cannot bound a
    microsecond-scale hit with any statistical honesty.
    """
    failures = []
    checked = 0
    shared = 0
    section = baseline.get("service") or {}
    instances = section.get("instances", {})
    for name, factory in bench_service.CONFIGS:
        committed = instances.get(name)
        if committed is None:
            print(f"service/{name}: not in committed baseline, skipped")
            continue
        shared += 1
        if committed["cold_seconds"] < MIN_SECONDS:
            print(f"service/{name}: committed cold solve took "
                  f"{committed['cold_seconds']:.3f}s (< {MIN_SECONDS}s "
                  f"noise floor), skipped")
            continue
        speedup = 0.0
        for attempt in range(1, ATTEMPTS + 1):
            fresh = bench_service.measure_service(factory)
            if fresh["cold_seconds"] < MIN_SECONDS:
                # This machine solves too fast to bound the ratio;
                # treat like the committed-side noise-floor skip.
                speedup = None
                break
            speedup = max(speedup, fresh["hit_speedup"])
            if speedup >= HIT_SPEEDUP_MIN:
                break
        if speedup is None:
            print(f"service/{name}: fresh cold solve below the noise "
                  f"floor on this machine, skipped")
            continue
        verdict = "OK" if speedup >= HIT_SPEEDUP_MIN else "REGRESSION"
        print(f"service/{name}: cache hit speedup "
              f"{committed['hit_speedup']:.0f}x committed -> "
              f"{speedup:.0f}x fresh "
              f"(floor {HIT_SPEEDUP_MIN:.0f}x, {attempt} attempt(s)) "
              f"{verdict}")
        checked += 1
        if verdict == "REGRESSION":
            failures.append(f"service/{name}")
    return failures, checked, shared


def check_negation(baseline: dict) -> "tuple[list, int, int]":
    """Gate the complement-edge negation wins (ISSUE 10).

    Two layers, following the committed ``"negation"`` section written
    by ``bench_negation.py``:

    * **Committed acceptance floors** — every committed instance that
      carries seed-commit ratios must hold the ISSUE 10 bounds
      (checker queries >= ``CHECKER_SPEEDUP_MIN`` faster, peak live
      nodes >= ``PEAK_REDUCTION_MIN`` smaller).  These compare two
      committed numbers, so all instances gate regardless of quick
      mode or machine speed.
    * **Fresh drift** — the quick-mode instances are re-measured:
      ``peak_live_nodes`` is structural (deterministic for a code
      version), so a fresh peak above the committed one by
      ``TOLERANCE`` is a real narrowing regression; and the in-process
      O(1)-vs-recursive negation ratio must stay above
      ``NOT_SPEEDUP_MIN`` (machine-normalised: both sides run here).
    """
    failures = []
    checked = 0
    shared = 0
    section = baseline.get("negation") or {}
    instances = section.get("instances", {})

    for name, committed in sorted(instances.items()):
        bounds = (("checker_speedup_vs_pre_pr", CHECKER_SPEEDUP_MIN),
                  ("peak_reduction_vs_pre_pr", PEAK_REDUCTION_MIN))
        recorded = [(key, floor) for key, floor in bounds
                    if key in committed]
        if not recorded:
            print(f"negation/{name}: no seed-commit ratios recorded, "
                  f"acceptance floors skipped")
            continue
        shared += 1
        checked += 1
        for key, floor in recorded:
            value = committed[key]
            verdict = "OK" if value >= floor else "REGRESSION"
            print(f"negation/{name}: committed {key} = {value:.2f}x "
                  f"(floor {floor}x) {verdict}")
            if verdict == "REGRESSION":
                failures.append(f"negation/{name}:{key}")

    for name, factory in bench_negation.CONFIGS:
        committed = instances.get(name)
        if committed is None:
            print(f"negation/{name}: not in committed baseline, skipped")
            continue
        shared += 1
        committed_peak = committed["peak_live_nodes"]
        peak_bound = committed_peak * (1 + TOLERANCE)
        fresh_peak = float("inf")
        not_speedup = 0.0
        for attempt in range(1, ATTEMPTS + 1):
            fresh = bench_negation.measure_negation(factory)
            fresh_peak = min(fresh_peak, fresh["peak_live_nodes"])
            not_speedup = max(not_speedup, fresh["not_speedup"])
            if fresh_peak <= peak_bound and not_speedup >= NOT_SPEEDUP_MIN:
                break
        checked += 1
        peak_ok = fresh_peak <= peak_bound
        not_ok = not_speedup >= NOT_SPEEDUP_MIN
        verdict = "OK" if peak_ok and not_ok else "REGRESSION"
        print(f"negation/{name}: peak live nodes "
              f"{committed_peak} -> {fresh_peak}, "
              f"O(1)-vs-recursive negation {not_speedup:.0f}x "
              f"(floor {NOT_SPEEDUP_MIN:.0f}x, {attempt} attempt(s)) "
              f"{verdict}")
        if not peak_ok:
            failures.append(f"negation/{name}:peak_live_nodes")
        if not not_ok:
            failures.append(f"negation/{name}:not_speedup")
    return failures, checked, shared


def main() -> int:
    try:
        with open(bench_relprod.JSON_PATH) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"no committed baseline at {bench_relprod.JSON_PATH}; "
              f"nothing to gate against")
        return 0

    failures = []
    checked = 0
    shared = 0
    for name, factory in bench_relprod.CONFIGS:
        committed = baseline["instances"].get(name)
        if committed is None:
            print(f"{name}: not in committed baseline, skipped")
            continue
        shared += 1
        committed_seconds = image_seconds(committed["engines"]["chained"])
        if committed_seconds < MIN_SECONDS:
            print(f"{name}: committed chained fixpoint took "
                  f"{committed_seconds:.3f}s (< {MIN_SECONDS}s noise "
                  f"floor), skipped")
            continue
        old_ratio = normalised_chained(committed["engines"])
        bound = old_ratio * (1 + TOLERANCE)
        new_ratio = float("inf")
        for attempt in range(1, ATTEMPTS + 1):
            fresh = bench_relprod.measure_engines(factory,
                                                  engines=("chained",))
            new_ratio = min(new_ratio, normalised_chained(fresh))
            if new_ratio <= bound:
                break
        change = (new_ratio - old_ratio) / old_ratio if old_ratio else 0.0
        verdict = "OK" if new_ratio <= bound else "REGRESSION"
        print(f"{name}: chained/materialised time ratio "
              f"{old_ratio:.3f} -> {new_ratio:.3f} "
              f"({change:+.1%}, {attempt} attempt(s)) {verdict}")
        checked += 1
        if verdict == "REGRESSION":
            failures.append(name)

    zdd_failures, zdd_checked, zdd_shared = check_zdd(baseline)
    failures += zdd_failures
    checked += zdd_checked
    shared += zdd_shared

    par_failures, par_checked, par_shared = check_parallel(baseline)
    failures += par_failures
    checked += par_checked
    shared += par_shared

    svc_failures, svc_checked, svc_shared = check_service(baseline)
    failures += svc_failures
    checked += svc_checked
    shared += svc_shared

    neg_failures, neg_checked, neg_shared = check_negation(baseline)
    failures += neg_failures
    checked += neg_checked
    shared += neg_shared

    if not shared:
        print("no instances shared between quick mode and the baseline; "
              "regenerate BENCH_relprod.json")
        return 1
    if not checked:
        # Every shared instance sat under the noise floor: nothing
        # gateable, but also no evidence of regression — don't turn CI
        # red on fast machines.
        print("all shared instances below the noise floor; gate skipped")
        return 0
    if failures:
        print(f"engine image time regressed >{TOLERANCE:.0%} on: "
              f"{', '.join(failures)}")
        return 1
    print("no engine regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
