"""Shared fixtures for the benchmark harness.

Benchmarks default to harness-scale instances that complete in seconds;
set ``REPRO_FULL=1`` for the paper-scale sizes (pure-Python BDDs will
take a long time there).
"""

import pytest


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["note"] = (
        "pure-Python BDD/ZDD engines; compare ratios between engines, "
        "not absolute times, against the paper")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Symbolic traversals are seconds-long and deterministic; repeated
    rounds would add minutes for no statistical gain.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
