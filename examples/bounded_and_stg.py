#!/usr/bin/env python
"""Beyond safe nets: STG specifications and k-bounded analysis.

Two extensions around the paper's core:

1. **Signal transition graphs** — the asynchronous-circuit specs that
   motivate the paper.  A C-element STG is expanded into a safe net
   whose complementary place pairs make the dense encoding optimal, and
   verified symbolically.
2. **k-bounded engine** — the paper's "extension to unsafe PNs": a
   producer/consumer with a multi-token buffer, analyzed with count-bit
   encodings and relational images.

Run:  python examples/bounded_and_stg.py
"""

from repro.analysis import Analysis, AnalysisSpec
from repro.encoding import ImprovedEncoding, SparseEncoding
from repro.petri import PetriNet, ReachabilityGraph, find_smcs
from repro.petri.stg import c_element, pipeline_stage


def stg_section() -> None:
    print("=== STG: Muller C-element ===")
    stg = c_element()
    print(f"specification: {stg!r}")
    for edge in stg.edges:
        guard = " & ".join(f"{s}={int(v)}" for s, v in edge.guard)
        print(f"  {edge.label:<4} when {guard}")

    net = stg.to_petri_net()
    print(f"expanded net: {len(net.places)} places "
          f"(one complementary pair per signal)")

    components = find_smcs(net)
    print(f"SMCs: {len(components)}, all pairs: "
          f"{all(len(c) == 2 for c in components)}")

    sparse = SparseEncoding(net)
    dense = ImprovedEncoding(net)
    print(f"encoding: sparse {sparse.num_variables} vars -> "
          f"dense {dense.num_variables} vars")

    analysis = Analysis(net, AnalysisSpec(scheme="improved",
                                          strategy="chaining"),
                        encoding_factory=lambda n: dense)
    result = analysis.run()
    checker = analysis.checker()
    print(f"reachable states: {result.markings}")
    print(f"deadlock free: {not checker.find_deadlocks().holds}")
    # The C-element's defining property: c rises only from (a=1, b=1).
    rise_enabled = checker.enabled_predicate("t_c_up")
    both_high = (checker.place_predicate("a_1")
                 & checker.place_predicate("b_1"))
    ok = (checker.reachable & rise_enabled & ~both_high).is_zero()
    print(f"c+ only fires with both inputs high: {ok}")

    print("\n=== STG: 4-phase pipeline stage ===")
    stage_net = pipeline_stage().to_petri_net()
    stage = Analysis(stage_net, AnalysisSpec(scheme="improved"))
    print(f"states: {stage.run().markings}, deadlock free: "
          f"{not stage.checker().find_deadlocks().holds}")


def bounded_section() -> None:
    print("\n=== k-bounded: producer/consumer ===")
    # A producer limited by 3 credits; the consumer returns them.  The
    # buffer holds up to three tokens — not a safe net.
    net = PetriNet("prodcons")
    net.add_place("buffer")
    net.add_place("credit", tokens=3)
    net.add_transition("produce", pre=["credit"], post=["buffer"])
    net.add_transition("consume", pre=["buffer"], post=["credit"])

    explicit = ReachabilityGraph(net, require_safe=False)
    print(f"explicit enumeration: {len(explicit)} markings "
          f"(buffer holds up to {explicit.place_bound('buffer')} tokens)")

    analysis = Analysis(net, AnalysisSpec(k_bound=3))
    result = analysis.run()
    knet = analysis.symbolic_net  # the KBoundedNet, for count queries
    print(f"symbolic (2 bits/place): {result!r}")
    assert result.markings == len(explicit)

    # Queries over token counts.
    full = knet.count_equals("buffer", 3)
    print(f"buffer can fill completely: "
          f"{not (result.reachable & full).is_zero()}")
    conserved = all(m["credit"] + m["buffer"] == 3
                    for m in knet.markings_of(result.reachable))
    print(f"tokens conserved (credit + buffer = 3 everywhere): {conserved}")


def main() -> None:
    stg_section()
    bounded_section()


if __name__ == "__main__":
    main()
