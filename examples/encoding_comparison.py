#!/usr/bin/env python
"""Compare encoding schemes across the benchmark families (Figure 2 +
Table 3 in miniature).

For each family the script reports variables, density, final
reachability-BDD size and traversal time under the sparse and dense
schemes, plus the Figure 2 toggle-activity comparison on the running
example.

Run:  python examples/encoding_comparison.py
"""

from repro.analysis import AnalysisSpec
from repro.experiments.figure2 import run as figure2_run
from repro.experiments.runner import compare_engines, format_table, run
from repro.petri.generators import muller, philosophers, slotted_ring


def main() -> None:
    # ------------------------------------------------------------------
    # Figure 2: schemes on the running example.
    # ------------------------------------------------------------------
    print("Figure 2 — encoding schemes on the running example:")
    for summary in figure2_run():
        print(f"  {summary.label:<44} {summary.variables} variables, "
              f"{summary.toggle_cost:.2f} toggles/transition")

    # ------------------------------------------------------------------
    # Table 3 in miniature: three families, small sizes.
    # ------------------------------------------------------------------
    rows = []
    for name, net in [("muller-5", muller(5)),
                      ("phil-3", philosophers(3)),
                      ("slot-3", slotted_ring(3))]:
        for scheme, label in (("sparse", "sparse"),
                              ("improved", "dense")):
            spec = AnalysisSpec(scheme=scheme, strategy="bfs")
            rows.append(run(name, net, spec, label=label))
    print()
    print(format_table("Sparse vs. dense (miniature Table 3)", rows,
                       engines=("sparse", "dense")))

    ratios = compare_engines(rows, "sparse", "dense")
    print("\nsparse / dense ratios:")
    for instance, ratio in ratios.items():
        print(f"  {instance:<10} variables x{ratio['variables']:.2f}  "
              f"nodes x{ratio['nodes']:.2f}  "
              f"time x{ratio['seconds']:.2f}")
    print("\nThe paper's claim: variables halve, nodes shrink 2-4x.")


if __name__ == "__main__":
    main()
