#!/usr/bin/env python
"""Symbolic verification of asynchronous-system models.

The paper's motivation is verifying concurrent systems (asynchronous
circuits, protocols).  This example model-checks three of the benchmark
families with the dense encoding:

* DME ring — mutual exclusion of the critical sections, deadlock freedom;
* dining philosophers — finds the classic deadlock and a counterexample;
* Muller pipeline — deadlock freedom and home-marking (reversibility).

Run:  python examples/model_checking.py
"""

from repro.analysis import Analysis, AnalysisSpec
from repro.petri.generators import dme_spec, muller, philosophers

# Every net below runs the same declarative configuration: the dense
# encoding through the functional BDD backend, reachable set computed
# once per Analysis session and shared by all of its queries.
SPEC = AnalysisSpec(scheme="improved")


def check_dme() -> None:
    cells = 3
    net = dme_spec(cells)
    checker = Analysis(net, SPEC).checker()
    print(f"DME ring with {cells} cells "
          f"({checker.marking_count()} reachable markings)")

    critical = [f"c{i}_uc" for i in range(cells)]
    mutex = checker.check_mutual_exclusion(critical)
    print(f"  mutual exclusion of {critical}: {mutex.holds}")

    deadlock = checker.find_deadlocks()
    print(f"  deadlock free: {not deadlock.holds}")

    # Every cell can eventually enter its critical section.
    for i in range(cells):
        reachable_crit = checker.ef(checker.place_predicate(f"c{i}_uc"))
        accessible = not (reachable_crit
                          & checker.symnet.initial).is_zero()
        print(f"  cell {i} can reach its critical section: {accessible}")


def check_philosophers() -> None:
    net = philosophers(3)
    checker = Analysis(net, SPEC).checker()
    print(f"\ndining philosophers (3) "
          f"({checker.marking_count()} reachable markings)")

    deadlock = checker.find_deadlocks()
    print(f"  deadlock found: {deadlock.holds} — {deadlock.detail}")
    if deadlock.witness is not None:
        print(f"  witness: {sorted(deadlock.witness.support)}")

    # Neighbours cannot eat at the same time (they share a fork) ...
    mutex = checker.check_mutual_exclusion(["ph0_eating", "ph1_eating"])
    print(f"  neighbours eat simultaneously: {not mutex.holds}")
    # ... and the initial marking is not a home marking (deadlocks).
    home = checker.can_always_recover(checker.symnet.initial)
    print(f"  initial marking is a home marking: {home.holds}")


def check_muller() -> None:
    net = muller(4)
    checker = Analysis(net, SPEC).checker()
    print(f"\nMuller pipeline (4 stages) "
          f"({checker.marking_count()} reachable markings)")
    print(f"  deadlock free: {not checker.find_deadlocks().holds}")
    print(f"  reversible (AG EF M0): "
          f"{checker.can_always_recover(checker.symnet.initial).holds}")
    print(f"  all transitions live at least once: "
          f"{len(checker.live_transitions())} of "
          f"{len(net.transitions)}")
    # Complementary place pairs are mutually exclusive by construction.
    mutex = checker.check_mutual_exclusion(["y0_0", "y0_1"])
    print(f"  complementary pair y0_0/y0_1 exclusive: {mutex.holds}")


def main() -> None:
    check_dme()
    check_philosophers()
    check_muller()


if __name__ == "__main__":
    main()
