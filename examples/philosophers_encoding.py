#!/usr/bin/env python
"""The paper's worked example: encoding the two dining philosophers.

Walks through Sections 4.3-5.4 on the Figure 4 net:

* the six SMCs of Figure 3, discovered from the P-invariants;
* the covering-based encoding with 10 variables (Section 4.3);
* the improved encoding with 8 variables, reproducing Table 1 literally;
* the characteristic functions of Table 2;
* the zero-variable-component extension (6 variables).

Run:  python examples/philosophers_encoding.py
"""

from repro.analysis import AnalysisSpec, analyze
from repro.bdd import BDD
from repro.encoding import (DenseEncoding, ImprovedEncoding,
                            declare_variables, place_functions)
from repro.encoding.improved import encoding_variable_summary
from repro.petri import ReachabilityGraph, smc_from_places
from repro.petri.generators import FIGURE3_SMC_PLACES, figure4_net


def main() -> None:
    net = figure4_net()
    graph = ReachabilityGraph(net)
    print(f"net: {net!r}")
    print(f"reachable markings: {len(graph)} (the paper says 22)")
    symbolic = analyze(net, AnalysisSpec(scheme="improved"))
    assert symbolic.markings == len(graph)
    print(f"symbolic cross-check: analyze() finds {symbolic.markings} "
          f"markings on {symbolic.variables} variables")

    # ------------------------------------------------------------------
    # Figure 3: the six SMCs.
    # ------------------------------------------------------------------
    components = [smc_from_places(net, places, name=f"SM{i + 1}")
                  for i, places in enumerate(FIGURE3_SMC_PLACES)]
    print("\nFigure 3 SMC decomposition:")
    for component in components:
        print(f"  {component!r}")

    # ------------------------------------------------------------------
    # Section 4.3: covering-based encoding, 10 variables.
    # ------------------------------------------------------------------
    dense = DenseEncoding(net, components=components)
    print(f"\ncovering-based encoding: {dense.num_variables} variables "
          f"(paper: 10), density {dense.density(len(graph)):.2f} "
          "(paper: 0.5)")

    # ------------------------------------------------------------------
    # Section 4.4 / Table 1: improved encoding, 8 variables.
    # ------------------------------------------------------------------
    improved = ImprovedEncoding(net, components=components)
    print(f"\nimproved encoding ({improved.num_variables} variables, "
          "paper Table 1):")
    print(encoding_variable_summary(improved))

    # ------------------------------------------------------------------
    # Table 2: characteristic functions.
    # ------------------------------------------------------------------
    bdd = BDD()
    declare_variables(improved, bdd)
    places = place_functions(improved, bdd)
    print("\ncharacteristic functions (Table 2):")
    for place in net.places:
        cubes = list(places[place].iter_cubes())
        rendered = " + ".join(
            "".join(("" if value else "!") + var
                    for var, value in sorted(cube.items()))
            for cube in cubes)
        print(f"  [{place}] = {rendered}")

    # Verify the functions against every reachable marking.
    for marking in graph.markings:
        assignment = improved.marking_to_assignment(marking)
        for place in net.places:
            assert places[place](assignment) == (place in marking)
    print("\nall characteristic functions verified on the 22 markings.")

    # ------------------------------------------------------------------
    # Extension: zero-variable components.
    # ------------------------------------------------------------------
    extended = ImprovedEncoding(net, components=components,
                                allow_zero_variable_components=True)
    print(f"\nzero-variable-component extension: "
          f"{extended.num_variables} variables (the forks are implied "
          "by the fork-SMC tokens)")


if __name__ == "__main__":
    main()
