#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 Petri net, inspects its structure (incidence matrix,
P-invariants, State Machine Components), encodes it three ways, runs the
symbolic reachability traversal and cross-checks against explicit
enumeration — touching each layer of the library's public API once.

Run:  python examples/quickstart.py
"""

from repro.analysis import Analysis, AnalysisSpec
from repro.bdd import BDD
from repro.encoding import (DenseEncoding, ImprovedEncoding, SparseEncoding,
                            declare_variables, place_functions)
from repro.petri import ReachabilityGraph, find_smcs
from repro.petri.generators import figure1_net
from repro.petri.incidence import incidence_matrix
from repro.petri.invariants import (invariant_support,
                                    minimal_semipositive_invariants)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The net (paper Figure 1.a).
    # ------------------------------------------------------------------
    net = figure1_net()
    print(f"net: {net!r}")
    print(f"initial marking: {net.initial_marking!r}")

    # ------------------------------------------------------------------
    # 2. Structure: incidence matrix and invariants (Section 2).
    # ------------------------------------------------------------------
    print("\nincidence matrix (rows p1..p7, columns t1..t7):")
    print(incidence_matrix(net))
    invariants = minimal_semipositive_invariants(net)
    print("\nminimal semi-positive P-invariants:")
    for weights in invariants:
        print(f"  {list(weights)}  support={invariant_support(net, weights)}")

    smcs = find_smcs(net)
    print("\nstate machine components (Figure 2.e):")
    for smc in smcs:
        print(f"  {smc!r}")

    # ------------------------------------------------------------------
    # 3. Explicit reachability (Figure 1.b) — 8 markings.
    # ------------------------------------------------------------------
    graph = ReachabilityGraph(net)
    print(f"\nexplicit reachability graph: {len(graph)} markings, "
          f"{len(graph.edges)} edges")
    for marking in graph.markings:
        print(f"  {sorted(marking.support)}")

    # ------------------------------------------------------------------
    # 4. Encodings (Section 3): sparse 7 vars, dense 4 vars.
    # ------------------------------------------------------------------
    for encoding in (SparseEncoding(net), DenseEncoding(net),
                     ImprovedEncoding(net)):
        density = encoding.density(len(graph))
        print(f"\n{type(encoding).__name__}: {encoding.num_variables} "
              f"variables, density {density:.2f}")

    # Characteristic functions of places (Eq. 4) on the dense encoding.
    dense = DenseEncoding(net)
    bdd = BDD()
    declare_variables(dense, bdd)
    places = place_functions(dense, bdd)
    print("\ncharacteristic functions (dense encoding):")
    for place in net.places:
        print(f"  [{place}] over variables "
              f"{sorted(places[place].support_names())}")

    # ------------------------------------------------------------------
    # 5. Symbolic analysis (Section 5) and cross-validation: one spec,
    #    one call — the Analysis session keeps the reachable set alive
    #    for the model-checking queries below.
    # ------------------------------------------------------------------
    analysis = Analysis(net, AnalysisSpec(scheme="improved"))
    result = analysis.run()
    print(f"\nsymbolic analysis: {result!r}")
    assert result.markings == len(graph), "engines disagree!"
    print("symbolic and explicit marking counts agree.")

    # ------------------------------------------------------------------
    # 6. Model checking over the already-computed reachable set.
    # ------------------------------------------------------------------
    checker = analysis.checker()
    print(f"\ndeadlocks: {checker.find_deadlocks().detail}")
    report = checker.check_mutual_exclusion(["p2", "p4"])
    print(f"p2/p4 mutual exclusion: {report.holds} ({report.detail})")
    home = checker.can_always_recover(analysis.symbolic_net.initial)
    print(f"initial marking is a home marking: {home.holds}")


if __name__ == "__main__":
    main()
