"""repro — efficient encoding schemes for symbolic analysis of Petri nets.

A from-scratch reproduction of Pastor & Cortadella, *Efficient Encoding
Schemes for Symbolic Analysis of Petri Nets* (DATE 1998): SMC-based dense
encodings of safe Petri-net markings, with the full stack they sit on —
a BDD package with dynamic reordering, a ZDD package, Petri-net structure
theory (P-invariants, State Machine Components), symbolic reachability
and model checking, and the paper's benchmark families.

Layer map (see DESIGN.md for the full inventory):

* :mod:`repro.dd` — the shared decision-diagram kernel (node tables,
  reference counting/GC, level swaps, sifting, reorder hooks) both
  managers are built on.
* :mod:`repro.bdd` — decision diagrams (BDD manager, sifting, ZDDs).
* :mod:`repro.petri` — nets, markings, invariants, SMCs, generators.
* :mod:`repro.encoding` — sparse / dense / improved encoding schemes.
* :mod:`repro.symbolic` — traversal engines and the model checker.
* :mod:`repro.analysis` — the unified ``analyze(net, spec)`` facade
  every entry point (CLI, experiments, examples) routes through.
* :mod:`repro.experiments` — Table 3 / Table 4 / Figure 2 harnesses.
"""

from .analysis import (Analysis, AnalysisResult, AnalysisSpec, SpecError,
                       SpecWarning, analyze)
from .bdd import BDD, Function, ZDD
from .encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from .petri import Marking, PetriNet, ReachabilityGraph, find_smcs
from .symbolic import (ModelChecker, SymbolicNet, ZddNet, traverse,
                       traverse_zdd)

__version__ = "1.0.0"

__all__ = [
    "BDD", "Function", "ZDD",
    "PetriNet", "Marking", "ReachabilityGraph", "find_smcs",
    "SparseEncoding", "DenseEncoding", "ImprovedEncoding",
    "SymbolicNet", "traverse", "ModelChecker", "ZddNet", "traverse_zdd",
    "AnalysisSpec", "AnalysisResult", "Analysis", "analyze",
    "SpecError", "SpecWarning",
    "__version__",
]
