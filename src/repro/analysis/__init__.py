"""Unified analysis facade: one spec, one backend protocol, one result.

The one way to run a symbolic analysis::

    from repro.analysis import AnalysisSpec, analyze

    result = analyze(net, AnalysisSpec(scheme="improved"))
    print(result.markings, result.seconds)

* :class:`AnalysisSpec` — a validated frozen description of the whole
  configuration (scheme, backend, form, engine, clustering, reordering,
  frontier handling, ``k_bound``), with structured inapplicable-option
  warnings instead of ad-hoc prints.
* :class:`SolverBackend` / :class:`SolverSession` — the protocol the
  four engine adapters (functional BDD, relational BDD, ZDD, k-bounded)
  implement, and the seam future backends plug into.
* :class:`AnalysisResult` — the single result schema every backend
  fills, JSON round-trippable via ``to_dict``/``from_dict``.
* :func:`analyze` / :class:`Analysis` — fire-and-forget vs. reusable
  session (model-checking queries share the computed reachable set).
* :class:`CheckpointStore` / :class:`CheckpointError` — durable
  fixpoint checkpoints: the spec's ``checkpoint_path`` family of
  fields makes any backend periodically serialize its state and
  ``resume=True`` continues from the last safe point; resource budgets
  (``node_budget`` / ``deadline``) turn exhaustion into a ``partial``
  :class:`AnalysisResult` instead of a crash.

The legacy entry points (``traverse``, ``traverse_relational``,
``traverse_zdd``, ``traverse_kbounded``) remain as deprecation shims in
:mod:`repro.symbolic`; new code should route through :func:`analyze`.
"""

from ..dd import ResourceBudgetExceeded
from ..symbolic import TraversalLimitError
from .backends import (BACKENDS, BddFunctionalBackend,
                       BddRelationalBackend, KBoundedBackend,
                       SolverBackend, SolverSession, ZddBackend,
                       backend_for)
from .checkpoint import (CheckpointData, CheckpointError, CheckpointStore,
                         net_fingerprint, spec_fingerprint)
from .facade import Analysis, analyze
from .portfolio import (MemberFailure, PortfolioBackend, PortfolioError,
                        WorkerHarness, member_checkpoint_path, member_spec)
from .result import SCHEMA_MINOR, SCHEMA_VERSION, AnalysisResult
from .spec import (BACKEND_FAMILIES, CHAIN_ORDERS, DEFAULT_CLUSTER_SIZE,
                   DEFAULT_FORM, DEFAULT_PORTFOLIO_MEMBERS,
                   DEFAULT_RELATIONAL_ENGINE, FORMS, NONSEMANTIC_FIELDS,
                   PORTFOLIO_MEMBERS, RELATIONAL_ENGINES, SCHEMES,
                   SEMANTIC_FIELDS, STRATEGIES, AnalysisSpec, SpecError,
                   SpecWarning)

__all__ = [
    "AnalysisSpec", "SpecError", "SpecWarning",
    "AnalysisResult", "SCHEMA_VERSION", "SCHEMA_MINOR",
    "SolverBackend", "SolverSession", "backend_for", "BACKENDS",
    "BddFunctionalBackend", "BddRelationalBackend", "ZddBackend",
    "KBoundedBackend",
    "PortfolioBackend", "PortfolioError", "MemberFailure",
    "WorkerHarness", "member_spec", "member_checkpoint_path",
    "Analysis", "analyze",
    "CheckpointData", "CheckpointError", "CheckpointStore",
    "net_fingerprint", "spec_fingerprint",
    "ResourceBudgetExceeded", "TraversalLimitError",
    "SCHEMES", "BACKEND_FAMILIES", "FORMS", "RELATIONAL_ENGINES",
    "STRATEGIES", "CHAIN_ORDERS", "DEFAULT_FORM",
    "DEFAULT_RELATIONAL_ENGINE", "DEFAULT_CLUSTER_SIZE",
    "PORTFOLIO_MEMBERS", "DEFAULT_PORTFOLIO_MEMBERS",
    "NONSEMANTIC_FIELDS", "SEMANTIC_FIELDS",
]
