"""Solver backends: the protocol every analysis engine plugs into.

A backend turns ``(net, spec)`` into a :class:`SolverSession` — a
stateful fixpoint computation that can be advanced one iteration at a
time (:meth:`SolverSession.step`), inspected mid-flight
(:meth:`SolverSession.stats`) or driven to completion
(:meth:`SolverSession.run`), returning the unified
:class:`~repro.analysis.result.AnalysisResult`.

Four adapters wrap the existing machinery:

* :class:`BddFunctionalBackend` — :class:`~repro.symbolic.transition.
  SymbolicNet` with the renaming-free functional image (quantify-force
  or toggle firing, BFS or chaining sweeps).
* :class:`BddRelationalBackend` — :class:`~repro.symbolic.relational.
  RelationalNet` through the pluggable relational image engines
  (monolithic | partitioned | chained).
* :class:`ZddBackend` — the sparse-ZDD representation, classic
  per-transition rewriting or the relational-product engines over
  :class:`~repro.symbolic.zdd_relational.ZddRelationalNet`.
* :class:`KBoundedBackend` — count-bit encodings for k-bounded nets
  (:class:`~repro.symbolic.kbounded.KBoundedNet`).

New backends (multiprocess partitions, interval-vector sets, ...)
implement the same two-method surface and register in :data:`BACKENDS`;
nothing above this layer changes.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from ..bdd.io import (dump_functions, dump_zdd_nodes, load_functions,
                      load_zdd_nodes)
from ..dd import ResourceBudgetExceeded
from ..encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from ..petri.net import PetriNet
from ..symbolic.kbounded import KBoundedNet
from ..symbolic.relational import RelationalNet
from ..symbolic.transition import SymbolicNet
from ..symbolic.traversal import TraversalLimitError, make_image_engine
from ..symbolic.zdd_relational import ZddRelationalNet
from ..symbolic.zdd_traversal import ZddNet, make_zdd_image_engine
from .checkpoint import (CheckpointData, CheckpointError, CheckpointStore,
                         net_fingerprint, spec_fingerprint)
from .result import AnalysisResult
from .spec import AnalysisSpec, SpecError

__all__ = [
    "SolverBackend", "SolverSession", "BACKENDS", "backend_for",
    "BddFunctionalBackend", "BddRelationalBackend", "ZddBackend",
    "KBoundedBackend",
]

EncodingFactory = Callable[[PetriNet], Any]

SCHEME_CLASSES = {
    "sparse": SparseEncoding,
    "dense": DenseEncoding,
    "improved": ImprovedEncoding,
}


class SolverBackend:
    """Protocol: ``build(net, spec) -> session`` plus a ``name``.

    Stateless — one backend instance serves any number of builds.  The
    optional ``encoding_factory`` (BDD backends only) overrides the
    scheme-class lookup, e.g. to pass pre-computed SMCs.
    """

    name = "abstract"

    def build(self, net: PetriNet, spec: AnalysisSpec,
              encoding_factory: Optional[EncodingFactory] = None
              ) -> "SolverSession":
        raise NotImplementedError


class SolverSession:
    """One in-progress analysis: the fixpoint state plus its clocks.

    Subclasses set ``symbolic_net`` (the wrapped net object — a
    ``SymbolicNet``, ``RelationalNet``, ``ZddNet``/``ZddRelationalNet``
    or ``KBoundedNet``) and implement :meth:`_advance` (one fixpoint
    iteration), :meth:`at_fixpoint` and :meth:`_finish` (the final
    :class:`AnalysisResult`).  The base class owns the iteration loop,
    the timing breakdown and the shared ``stats()`` surface — plus the
    durability layer: when the spec names a ``checkpoint_path``, the
    fixpoint state is written atomically at the configured cadence
    (every iteration by default), reloaded on ``resume=True`` (falling
    back to a cold start on any :class:`CheckpointError`), and budget
    exhaustion (:class:`~repro.dd.ResourceBudgetExceeded` from the
    manager's safe points) is converted into a partial result with a
    final checkpoint on disk.  Passing ``net`` to the constructor opts
    a subclass into durability; sessions without an in-process manager
    (the portfolio) leave it ``None``.
    """

    supports_model_checking = False
    #: Which :mod:`repro.bdd.io` format the checkpoint payload uses.
    _checkpoint_kind = "bdd"

    def __init__(self, backend_name: str, spec: AnalysisSpec,
                 build_seconds: float,
                 net: Optional[PetriNet] = None) -> None:
        self.backend_name = backend_name
        self.spec = spec
        self.build_seconds = build_seconds
        self.fixpoint_seconds = 0.0
        self.iterations = 0
        self._result: Optional[AnalysisResult] = None
        self._store: Optional[CheckpointStore] = None
        self._resume_info: Optional[Dict[str, Any]] = None
        if net is not None and (spec.node_budget is not None
                                or spec.deadline is not None):
            manager = self._manager()
            if manager is not None:
                manager.set_resource_budget(
                    node_budget=spec.node_budget,
                    deadline_seconds=spec.deadline)
        if net is not None and spec.checkpoint_path is not None:
            self._spec_hash = spec_fingerprint(spec)
            self._net_hash = net_fingerprint(net)
            self._store = CheckpointStore(
                spec.checkpoint_path, every=spec.checkpoint_every,
                every_seconds=spec.checkpoint_every_seconds)
            if spec.resume:
                self._try_resume()

    # -- the stepping surface ------------------------------------------

    def step(self) -> bool:
        """Advance the fixpoint by one iteration.

        Returns ``True`` if an iteration ran, ``False`` if the fixpoint
        had already been reached (the session is then exhausted and
        :meth:`run` just packages the result).
        """
        if self.at_fixpoint():
            return False
        start = time.perf_counter()
        try:
            self._advance()
        except ResourceBudgetExceeded:
            # Every session updates its fixpoint state *before* the safe
            # point that enforces budgets, so the iteration that tripped
            # the budget is complete — count it, then let run() convert
            # the exhaustion into a partial result.
            self.fixpoint_seconds += time.perf_counter() - start
            self.iterations += 1
            raise
        self.fixpoint_seconds += time.perf_counter() - start
        self.iterations += 1
        self._maybe_checkpoint()
        return True

    def run(self, max_iterations: Optional[int] = None) -> AnalysisResult:
        """Drive the fixpoint to completion and return the result.

        ``max_iterations`` (falling back to the spec's) aborts beyond
        that many frontier steps with a
        :class:`~repro.symbolic.traversal.TraversalLimitError` carrying
        the partial state — after writing a checkpoint when one is
        configured, so the partial work survives.  Budget exhaustion
        (:class:`~repro.dd.ResourceBudgetExceeded`) does not raise: it
        returns a *partial* :class:`AnalysisResult`
        (``status="partial"``, telemetry in ``extras["budget"]``) with
        a final checkpoint on disk.  The result is cached: repeated
        calls return the same object, which is what lets a
        :class:`~repro.analysis.facade.Analysis` session hand the
        reachable set to several queries without re-traversing.
        """
        if self._result is not None:
            return self._result
        limit = max_iterations if max_iterations is not None \
            else self.spec.max_iterations
        try:
            while not self.at_fixpoint():
                if limit is not None and self.iterations >= limit:
                    self._write_checkpoint()
                    self._close()
                    raise TraversalLimitError(
                        f"traversal exceeded {limit} iterations",
                        reached=getattr(self, "reached", None),
                        frontier=getattr(self, "frontier", None),
                        iterations=self.iterations)
                self.step()
        except ResourceBudgetExceeded as exc:
            self._write_checkpoint()
            result = self._finish()
            result.status = "partial"
            result.extras["budget"] = exc.telemetry()
            self._result = result
            self._close()
            return result
        self._write_checkpoint()
        self._result = self._finish()
        self._close()
        return self._result

    def stats(self) -> Dict[str, Any]:
        """Mid-flight snapshot: progress and memory, uniformly keyed."""
        return {
            "backend": self.backend_name,
            "engine": self.spec.engine_id,
            "iterations": self.iterations,
            "at_fixpoint": self.at_fixpoint(),
            "peak_nodes": self._peak_nodes(),
            "build_seconds": self.build_seconds,
            "fixpoint_seconds": self.fixpoint_seconds,
        }

    # -- durability ----------------------------------------------------

    def _manager(self):
        """The session's decision-diagram manager, if it has one."""
        net = getattr(self, "symbolic_net", None)
        if net is None:
            return None
        manager = getattr(net, "bdd", None)
        if manager is None:
            manager = getattr(net, "zdd", None)
        return manager

    def _dump_payload(self) -> str:
        """Serialize the fixpoint roots (BDD sessions; ZDD overrides)."""
        return dump_functions({"reached": self.reached,
                               "frontier": self.frontier})

    def _load_payload(self, payload: str) -> None:
        """Install serialized fixpoint roots (BDD sessions; ZDD
        overrides)."""
        roots = load_functions(payload, self._manager())
        self.reached = roots["reached"]
        self.frontier = roots["frontier"]

    def _maybe_checkpoint(self) -> None:
        if self._store is not None and self._store.due(self.iterations):
            self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        """Save the current fixpoint state, cadence-independent.

        Called at the cadence points, on budget exhaustion, at an
        iteration-limit abort and on normal completion (so a finished
        traversal can be reloaded by a later run).  A repeat call at an
        already-saved iteration is a no-op.
        """
        store = self._store
        if store is None:
            return
        if store.writes > 0 and store._last_iteration == self.iterations:
            return
        store.save(CheckpointData(
            spec_hash=self._spec_hash,
            net_hash=self._net_hash,
            kind=self._checkpoint_kind,
            iteration=self.iterations,
            order=self._manager().order(),
            payload=self._dump_payload(),
            extra={"backend": self.backend_name,
                   "engine": self.spec.engine_id,
                   "at_fixpoint": self.at_fixpoint()}))

    def _try_resume(self) -> None:
        """Reload saved state, or fall back to a cold start.

        Every rejection path — no file, truncation, corruption, a
        spec/net/kind mismatch, a reload failure — lands in the same
        place: ``extras["resume"]`` records the fallback and the session
        starts cold.  Resume must never be less robust than not
        resuming.
        """
        path = str(self._store.path)
        try:
            data = self._store.load()
            self._store.validate(data, spec_hash=self._spec_hash,
                                 net_hash=self._net_hash,
                                 kind=self._checkpoint_kind)
            self._restore(data)
        except CheckpointError as exc:
            self._resume_info = {"status": "cold-start", "path": path,
                                 "reason": exc.reason,
                                 "error": str(exc)}
            return
        self._resume_info = {"status": "resumed", "path": path,
                             "iteration": self.iterations}

    def _restore(self, data: CheckpointData) -> None:
        """Install a validated checkpoint into the fresh manager."""
        manager = self._manager()
        if set(data.order) != set(manager.order()):
            raise CheckpointError(
                "checkpoint variable order does not name this "
                "manager's variables", reason="mismatch")
        try:
            # Restore the saved order first: the payload then rebuilds
            # on the fast hash-consing path and the resumed run
            # continues with the order the ancestor had sifted to.
            manager.set_order(data.order)
            self._load_payload(data.payload)
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint state could not be reloaded: "
                f"{type(exc).__name__}: {exc}",
                reason="malformed") from exc
        self.iterations = data.iteration

    # -- engine-held resources -----------------------------------------

    def _close(self) -> None:
        """Release engine-held resources (e.g. the partitioned-mp
        worker pool) — called on every :meth:`run` exit path, *after*
        :meth:`_finish` so the final stats still see the pool."""
        engine = getattr(self, "image_engine", None)
        if engine is not None and hasattr(engine, "close"):
            engine.close()

    def _parallel_stats(self) -> Optional[Dict[str, Any]]:
        """Worker-pool telemetry when the engine runs one, else None."""
        engine = getattr(self, "image_engine", None)
        if engine is not None and hasattr(engine, "parallel_stats"):
            return engine.parallel_stats()
        return None

    # -- subclass surface ----------------------------------------------

    def at_fixpoint(self) -> bool:
        raise NotImplementedError

    def _advance(self) -> None:
        raise NotImplementedError

    def _finish(self) -> AnalysisResult:
        raise NotImplementedError

    def _peak_nodes(self) -> int:
        raise NotImplementedError

    # -- shared result assembly ----------------------------------------

    def _base_result(self, markings: int, variables: int, final_nodes: int,
                     reorder_count: int, reachable,
                     extras: Dict[str, Any]) -> AnalysisResult:
        extras = dict(extras)
        extras["build_seconds"] = self.build_seconds
        extras["fixpoint_seconds"] = self.fixpoint_seconds
        if self._resume_info is not None:
            extras["resume"] = dict(self._resume_info)
        if self._store is not None:
            extras["checkpoint"] = {"path": str(self._store.path),
                                    "writes": self._store.writes}
        return AnalysisResult(
            spec=self.spec,
            engine=self.spec.engine_id,
            markings=markings,
            iterations=self.iterations,
            variables=variables,
            final_nodes=final_nodes,
            peak_nodes=self._peak_nodes(),
            seconds=self.build_seconds + self.fixpoint_seconds,
            reorder_count=reorder_count,
            reachable=reachable,
            extras=extras)


def _reject_factory(backend: str,
                    encoding_factory: Optional[EncodingFactory]) -> None:
    if encoding_factory is not None:
        raise SpecError(
            f"encoding_factory only applies to the BDD backends; the "
            f"{backend} backend builds its own representation")


def _build_encoding(net: PetriNet, spec: AnalysisSpec,
                    encoding_factory: Optional[EncodingFactory]):
    if encoding_factory is not None:
        return encoding_factory(net)
    return SCHEME_CLASSES[spec.scheme](net)


# ----------------------------------------------------------------------
# BDD functional
# ----------------------------------------------------------------------

class _BddFunctionalSession(SolverSession):
    supports_model_checking = True

    def __init__(self, net: PetriNet, spec: AnalysisSpec,
                 encoding_factory: Optional[EncodingFactory]) -> None:
        start = time.perf_counter()
        encoding = _build_encoding(net, spec, encoding_factory)
        self.symbolic_net = SymbolicNet(
            encoding, auto_reorder=spec.reorder,
            reorder_threshold=spec.reorder_threshold)
        symnet = self.symbolic_net
        self._sweep_order = (symnet.support_sorted_transitions()
                             if spec.chain_order == "support"
                             else list(symnet.net.transitions))
        self.reached = symnet.initial
        self.frontier = symnet.initial
        super().__init__(BddFunctionalBackend.name, spec,
                         time.perf_counter() - start, net=net)

    def at_fixpoint(self) -> bool:
        return self.frontier.is_zero()

    def _advance(self) -> None:
        spec = self.spec
        symnet = self.symbolic_net
        work = self.frontier
        if spec.simplify_frontier:
            work = self.frontier.restrict(self.frontier | ~self.reached)
        if spec.strategy == "chaining":
            fire = symnet.image_toggle if spec.use_toggle else symnet.image
            current = work
            for transition in self._sweep_order:
                current = current | fire(current, transition)
            successors = current
        else:
            successors = symnet.image_all(work,
                                          use_toggle=spec.use_toggle)
        self.frontier = successors - self.reached
        self.reached = self.reached | successors
        # Safe point: garbage collection / dynamic reordering, as the
        # paper applies at each traversal iteration.
        symnet.bdd.checkpoint()

    def _peak_nodes(self) -> int:
        return self.symbolic_net.bdd.peak_live_nodes

    def _finish(self) -> AnalysisResult:
        symnet = self.symbolic_net
        return self._base_result(
            markings=symnet.count_markings(self.reached),
            variables=symnet.encoding.num_variables,
            final_nodes=self.reached.size(),
            reorder_count=symnet.bdd.reorder_count,
            reachable=self.reached,
            extras={"strategy": self.spec.strategy,
                    "chain_order": self.spec.chain_order,
                    "use_toggle": self.spec.use_toggle})


class BddFunctionalBackend(SolverBackend):
    """Functional (renaming-free) image over an encoded safe net."""

    name = "bdd-functional"

    def build(self, net, spec, encoding_factory=None):
        return _BddFunctionalSession(net, spec, encoding_factory)


# ----------------------------------------------------------------------
# BDD relational
# ----------------------------------------------------------------------

class _BddRelationalSession(SolverSession):
    def __init__(self, net: PetriNet, spec: AnalysisSpec,
                 encoding_factory: Optional[EncodingFactory]) -> None:
        start = time.perf_counter()
        encoding = _build_encoding(net, spec, encoding_factory)
        self.symbolic_net = RelationalNet(
            encoding, auto_reorder=spec.reorder,
            reorder_threshold=spec.reorder_threshold)
        self.image_engine = make_image_engine(
            self.symbolic_net, spec.resolved_engine,
            spec.resolved_cluster_size, spec.simplify_frontier,
            workers=spec.resolved_workers)
        self.reached = self.symbolic_net.initial
        self.frontier = self.symbolic_net.initial
        super().__init__(BddRelationalBackend.name, spec,
                         time.perf_counter() - start, net=net)

    def at_fixpoint(self) -> bool:
        return self.frontier.is_zero()

    def _advance(self) -> None:
        self.reached, self.frontier = self.image_engine.advance(
            self.reached, self.frontier)
        self.symbolic_net.bdd.checkpoint()

    def _peak_nodes(self) -> int:
        peak = self.symbolic_net.bdd.peak_live_nodes
        parallel = self._parallel_stats()
        if parallel is not None:
            # The pool's managers hold real memory too: report the
            # whole process tree's occupancy, not just the parent's.
            peak += parallel["peak_live_nodes"]
        return peak

    def _finish(self) -> AnalysisResult:
        relnet = self.symbolic_net
        bdd = relnet.bdd
        extras = {"cluster_size": self.spec.resolved_cluster_size,
                  "ae_calls": bdd.ae_calls,
                  "ae_cache_hits": bdd.ae_cache_hits}
        reorder_count = bdd.reorder_count
        parallel = self._parallel_stats()
        if parallel is not None:
            extras["parallel"] = parallel
            reorder_count += parallel["reorder_count"]
        return self._base_result(
            markings=relnet.count_markings(self.reached),
            variables=len(relnet.current),
            final_nodes=self.reached.size(),
            reorder_count=reorder_count,
            reachable=self.reached,
            extras=extras)


class BddRelationalBackend(SolverBackend):
    """Relational-product image over partitioned transition relations."""

    name = "bdd-relational"

    def build(self, net, spec, encoding_factory=None):
        return _BddRelationalSession(net, spec, encoding_factory)


# ----------------------------------------------------------------------
# ZDD (classic and relational)
# ----------------------------------------------------------------------

class _ZddSession(SolverSession):
    _checkpoint_kind = "zdd"

    def __init__(self, net: PetriNet, spec: AnalysisSpec) -> None:
        start = time.perf_counter()
        engine_name = spec.resolved_engine
        if engine_name == "classic":
            self.symbolic_net = ZddNet(
                net, auto_reorder=spec.reorder,
                reorder_threshold=spec.reorder_threshold)
            self.image_engine = make_zdd_image_engine(
                self.symbolic_net, "classic")
        else:
            self.symbolic_net = ZddRelationalNet(
                net, auto_reorder=spec.reorder,
                reorder_threshold=spec.reorder_threshold)
            self.image_engine = make_zdd_image_engine(
                self.symbolic_net, engine_name,
                spec.resolved_cluster_size,
                workers=spec.resolved_workers)
        self.zdd = self.symbolic_net.zdd
        # The fixpoint roots stay referenced for the session's lifetime:
        # the per-iteration safe point may garbage collect (the shared
        # DDManager kernel gave the ZDD manager GC and sifting).
        self.reached = self.zdd.ref(self.symbolic_net.initial)
        self.frontier = self.zdd.ref(self.symbolic_net.initial)
        super().__init__(ZddBackend.name, spec,
                         time.perf_counter() - start, net=net)

    def at_fixpoint(self) -> bool:
        return self.frontier == self.zdd.empty()

    def _advance(self) -> None:
        zdd = self.zdd
        reached, frontier = self.image_engine.advance(
            self.reached, self.frontier)
        zdd.ref(reached)
        zdd.ref(frontier)
        zdd.deref(self.reached)
        zdd.deref(self.frontier)
        self.reached, self.frontier = reached, frontier
        # Safe point: garbage collection / dynamic reordering, exactly
        # as the BDD sessions checkpoint each iteration.
        zdd.checkpoint()

    def _dump_payload(self) -> str:
        return dump_zdd_nodes(self.zdd, {"reached": self.reached,
                                         "frontier": self.frontier})

    def _load_payload(self, payload: str) -> None:
        # Raw node ids: pin the restored roots before releasing the
        # initial-marking ones (the session refs its roots for life).
        roots = load_zdd_nodes(payload, self.zdd)
        self.zdd.ref(roots["reached"])
        self.zdd.ref(roots["frontier"])
        self.zdd.deref(self.reached)
        self.zdd.deref(self.frontier)
        self.reached = roots["reached"]
        self.frontier = roots["frontier"]

    def _peak_nodes(self) -> int:
        self.zdd.live_nodes()  # fold the current occupancy into the peak
        peak = self.zdd.peak_live_nodes
        parallel = self._parallel_stats()
        if parallel is not None:
            peak += parallel["peak_live_nodes"]
        return peak

    def _finish(self) -> AnalysisResult:
        extras = {"total_nodes": self.zdd.total_nodes(),
                  "ae_calls": self.zdd.ae_calls,
                  "ae_cache_hits": self.zdd.ae_cache_hits}
        reorder_count = self.zdd.reorder_count
        parallel = self._parallel_stats()
        if parallel is not None:
            extras["parallel"] = parallel
            reorder_count += parallel["reorder_count"]
        return self._base_result(
            markings=self.image_engine.count_markings(self.reached),
            variables=len(self.symbolic_net.net.places),
            final_nodes=self.zdd.size(self.reached),
            reorder_count=reorder_count,
            reachable=self.reached,
            extras=extras)


class ZddBackend(SolverBackend):
    """Sparse-ZDD representation (Yoneda baseline plus the relational
    engines)."""

    name = "zdd"

    def build(self, net, spec, encoding_factory=None):
        _reject_factory(self.name, encoding_factory)
        return _ZddSession(net, spec)


# ----------------------------------------------------------------------
# k-bounded
# ----------------------------------------------------------------------

class _KBoundedSession(SolverSession):
    def __init__(self, net: PetriNet, spec: AnalysisSpec) -> None:
        start = time.perf_counter()
        self.symbolic_net = KBoundedNet(net, bound=spec.k_bound)
        self.reached = self.symbolic_net.initial
        self.frontier = self.symbolic_net.initial
        super().__init__(KBoundedBackend.name, spec,
                         time.perf_counter() - start, net=net)

    def at_fixpoint(self) -> bool:
        return self.frontier.is_zero()

    def _advance(self) -> None:
        knet = self.symbolic_net
        successors = knet.image_all(self.frontier)
        self.frontier = successors - self.reached
        self.reached = self.reached | successors
        knet.bdd.checkpoint()

    def _peak_nodes(self) -> int:
        return self.symbolic_net.bdd.peak_live_nodes

    def _finish(self) -> AnalysisResult:
        knet = self.symbolic_net
        return self._base_result(
            markings=knet.count_markings(self.reached),
            variables=len(knet.current_vars),
            final_nodes=self.reached.size(),
            reorder_count=knet.bdd.reorder_count,
            reachable=self.reached,
            extras={"bound": knet.bound, "bits_per_place": knet.bits})


class KBoundedBackend(SolverBackend):
    """Count-bit encodings for k-bounded (non-safe) nets."""

    name = "kbounded"

    def build(self, net, spec, encoding_factory=None):
        _reject_factory(self.name, encoding_factory)
        return _KBoundedSession(net, spec)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

BACKENDS = {
    BddFunctionalBackend.name: BddFunctionalBackend(),
    BddRelationalBackend.name: BddRelationalBackend(),
    ZddBackend.name: ZddBackend(),
    KBoundedBackend.name: KBoundedBackend(),
}


def backend_for(spec: AnalysisSpec) -> SolverBackend:
    """Select the backend a spec routes to."""
    if spec.backend == "portfolio":
        # The lazy import registers PortfolioBackend into BACKENDS on
        # first use (a top-level import here would be circular — the
        # portfolio builds on this module's protocol).  Checked before
        # k_bound: on a portfolio, k_bound parameterizes the kbounded
        # member rather than selecting the k-bounded backend.
        from .portfolio import PortfolioBackend
        return BACKENDS[PortfolioBackend.name]
    if spec.k_bound is not None:
        return BACKENDS[KBoundedBackend.name]
    if spec.backend == "zdd":
        return BACKENDS[ZddBackend.name]
    if spec.resolved_form == "relational":
        return BACKENDS[BddRelationalBackend.name]
    return BACKENDS[BddFunctionalBackend.name]
