"""Durable fixpoint checkpoints: atomic writes, integrity, resume.

A long symbolic traversal should survive being killed.  This module
gives the analysis sessions a :class:`CheckpointStore` that periodically
serializes the fixpoint state — the reached and frontier sets through
the :mod:`repro.bdd.io` formats (``bddio`` for the BDD sessions,
``zddio`` for the ZDD session), the manager's variable order, the
completed iteration count and a spec-hash + net-hash header — to a
single file, written atomically (tmp file + ``os.replace``) so a crash
mid-write can never leave a half-checkpoint under the real name.

File format (line-oriented, hash-sealed)::

    repro-checkpoint 1
    meta {"spec_hash": ..., "net_hash": ..., "kind": "bdd"|"zdd",
          "iteration": N, "order": [...]}
    <bddio or zddio payload lines>
    end <sha256 of everything above>

The trailing ``end`` line makes truncation detectable at *every* byte
boundary: a prefix of a valid checkpoint either loses the trailer
entirely or invalidates its digest, so :func:`parse_checkpoint` raises
a structured :class:`CheckpointError` instead of resuming from silently
corrupt state (``tests/analysis/test_checkpoint.py`` truncates at every
byte to pin this down).

Resume validation compares the checkpoint's hashes against the current
run: ``spec_hash`` is :func:`spec_fingerprint` — a digest over the
spec's *semantic* fields only, excluding the durability knobs
(``checkpoint_path``, ``resume``, budgets, ``max_iterations``) so a
resume run with ``resume=True`` still matches the checkpoint its cold
ancestor wrote — and ``net_hash`` is :func:`net_fingerprint` over the
net's canonical ``.pnet`` text.  Any mismatch, missing file or parse
failure is a :class:`CheckpointError`; the sessions treat every one of
them as "fall back to a cold start" (never a crash).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..petri.net import PetriNet
from .spec import AnalysisSpec

__all__ = [
    "CheckpointError", "CheckpointData", "CheckpointStore",
    "dump_checkpoint", "parse_checkpoint", "net_fingerprint",
    "spec_fingerprint",
]

CHECKPOINT_HEADER = "repro-checkpoint 1"
CHECKPOINT_KINDS = ("bdd", "zdd")

_TRAILER_RE = re.compile(r"^end ([0-9a-f]{64})\n?$")


class CheckpointError(Exception):
    """A checkpoint could not be written, read or trusted.

    Covers the whole rejection surface: missing/unreadable files,
    truncated or corrupted payloads (integrity digest mismatch),
    malformed headers, and spec/net/kind mismatches against the resuming
    run.  ``reason`` is a stable machine-readable tag (``missing``,
    ``truncated``, ``malformed``, ``mismatch``, ``io``) so callers can
    report *why* a resume fell back to a cold start.
    """

    def __init__(self, message: str, reason: str = "malformed") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class CheckpointData:
    """One checkpoint's decoded contents.

    ``payload`` is the embedded ``bddio``/``zddio`` stream with roots
    labeled ``reached`` and ``frontier``; ``order`` the dumping
    manager's variable order top-to-bottom (restored before the payload
    is loaded, so the rebuilt diagrams are bit-identical to the saved
    ones); ``extra`` an open JSON dict for session telemetry.
    """

    spec_hash: str
    net_hash: str
    kind: str
    iteration: int
    order: List[str]
    payload: str
    extra: Dict[str, Any] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.extra is None:
            self.extra = {}


def net_fingerprint(net: PetriNet) -> str:
    """Digest of the net's canonical ``.pnet`` text."""
    from ..petri.parser import dumps
    return hashlib.sha256(dumps(net).encode("utf-8")).hexdigest()[:16]


def spec_fingerprint(spec: AnalysisSpec) -> str:
    """Digest of the spec's semantic fields.

    A thin alias for :meth:`AnalysisSpec.semantic_fingerprint` — the
    single definition of "the same analysis" shared with the
    ``repro.service`` result cache, so a checkpoint and a cache entry
    can never disagree about spec identity.  Durability fields (and
    ``max_iterations``, which bounds how far a run gets but not the
    trajectory it takes) are excluded: a resumed run differs from its
    checkpointing ancestor exactly in those, and resuming with a larger
    iteration allowance from a limit-aborted checkpoint is a supported
    workflow.
    """
    return spec.semantic_fingerprint()


def dump_checkpoint(data: CheckpointData) -> str:
    """Render a checkpoint to its hash-sealed text form."""
    if data.kind not in CHECKPOINT_KINDS:
        raise CheckpointError(
            f"unknown checkpoint kind {data.kind!r}; expected one of "
            f"{CHECKPOINT_KINDS}")
    meta = json.dumps({
        "spec_hash": data.spec_hash,
        "net_hash": data.net_hash,
        "kind": data.kind,
        "iteration": data.iteration,
        "order": list(data.order),
        "extra": dict(data.extra),
    }, sort_keys=True)
    body = (f"{CHECKPOINT_HEADER}\n"
            f"meta {meta}\n"
            f"{data.payload.rstrip(chr(10))}\n")
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return body + f"end {digest}\n"


def parse_checkpoint(text: str) -> CheckpointData:
    """Decode and verify a checkpoint's text form.

    Raises :class:`CheckpointError` on any damage — a missing or
    malformed trailer, a digest mismatch (truncation or bit rot
    anywhere above it), trailing garbage, a bad header or meta line.
    """
    marker = text.rfind("\nend ")
    if marker < 0:
        raise CheckpointError(
            "checkpoint has no integrity trailer (truncated write?)",
            reason="truncated")
    body, trailer = text[:marker + 1], text[marker + 1:]
    match = _TRAILER_RE.match(trailer)
    if match is None:
        raise CheckpointError(
            f"checkpoint integrity trailer is damaged: {trailer!r}",
            reason="truncated")
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if digest != match.group(1):
        raise CheckpointError(
            "checkpoint integrity digest mismatch (truncated or "
            "corrupted contents)", reason="truncated")
    lines = body.split("\n")
    if not lines or lines[0] != CHECKPOINT_HEADER:
        raise CheckpointError(
            f"not a {CHECKPOINT_HEADER!r} stream", reason="malformed")
    if len(lines) < 2 or not lines[1].startswith("meta "):
        raise CheckpointError("checkpoint meta line missing",
                              reason="malformed")
    try:
        meta = json.loads(lines[1][len("meta "):])
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint meta line is not valid JSON: {exc}",
            reason="malformed") from None
    try:
        data = CheckpointData(
            spec_hash=meta["spec_hash"],
            net_hash=meta["net_hash"],
            kind=meta["kind"],
            iteration=int(meta["iteration"]),
            order=list(meta["order"]),
            payload="\n".join(lines[2:]),
            extra=dict(meta.get("extra", {})))
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint meta is incomplete: {exc}",
            reason="malformed") from None
    if data.kind not in CHECKPOINT_KINDS:
        raise CheckpointError(
            f"unknown checkpoint kind {data.kind!r}", reason="malformed")
    return data


class CheckpointStore:
    """Cadence-gated atomic checkpoint writer/reader for one path.

    ``every`` saves at most once per that many completed iterations;
    ``every_seconds`` adds (or, when ``every`` is ``None``, replaces) a
    wall-clock cadence.  With neither given, every iteration saves —
    maximum durability, the right default for the slow fixpoints worth
    checkpointing.  ``clock`` injects a virtual clock for tests.
    """

    def __init__(self, path: Union[str, Path],
                 every: Optional[int] = None,
                 every_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if every is not None and every < 1:
            raise CheckpointError(
                f"checkpoint cadence must be positive, got {every}",
                reason="malformed")
        if every_seconds is not None and every_seconds <= 0:
            raise CheckpointError(
                f"checkpoint seconds cadence must be positive, got "
                f"{every_seconds}", reason="malformed")
        if every is None and every_seconds is None:
            every = 1
        self.path = Path(path)
        self.every = every
        self.every_seconds = every_seconds
        self._clock = clock
        self._last_iteration = 0
        self._last_time = clock()
        self.writes = 0
        self._tmp_serial = 0

    def _sweep_stale_tmp(self) -> None:
        """Remove leftover ``<name>.tmp*`` files from dead writers.

        A process killed between the tmp write and the atomic rename
        strands its tmp file forever (the unique suffix means no later
        write reuses the name).  Swept on every save and load: the
        sealed checkpoint itself is never touched, and a sweep racing a
        live writer at worst deletes a tmp file whose rename then fails
        — the existing sealed checkpoint survives either way.
        """
        prefix = self.path.name + ".tmp"
        try:
            entries = list(self.path.parent.iterdir())
        except OSError:
            return
        for entry in entries:
            if entry.name.startswith(prefix):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def due(self, iteration: int) -> bool:
        """Whether the cadence calls for a save at this iteration."""
        if (self.every is not None
                and iteration - self._last_iteration >= self.every):
            return True
        if (self.every_seconds is not None
                and self._clock() - self._last_time >= self.every_seconds):
            return True
        return False

    def save(self, data: CheckpointData) -> None:
        """Write the checkpoint atomically (tmp file + rename).

        The tmp name is unique per process and write, so a crash
        between write and rename cannot be overwritten into a torn
        sealed file by a later writer — it just leaves a stale tmp,
        which :meth:`_sweep_stale_tmp` collects on the next save or
        load.
        """
        self._sweep_stale_tmp()
        text = dump_checkpoint(data)
        self._tmp_serial += 1
        tmp = self.path.with_name(
            f"{self.path.name}.tmp.{os.getpid()}.{self._tmp_serial}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {exc}",
                reason="io") from None
        self.writes += 1
        self._last_iteration = data.iteration
        self._last_time = self._clock()

    def load(self) -> CheckpointData:
        """Read and verify the checkpoint on disk.

        Also sweeps stale tmp files: resume is the first thing a
        restarted run does, so a crashed ancestor's leftovers are
        collected before the new run writes its own checkpoints.
        """
        self._sweep_stale_tmp()
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint at {self.path}", reason="missing") \
                from None
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}",
                reason="io") from None
        return parse_checkpoint(text)

    def validate(self, data: CheckpointData, *, spec_hash: str,
                 net_hash: str, kind: str) -> None:
        """Reject a checkpoint that belongs to a different run.

        A stale path reused across nets, schemes or backend kinds must
        fail loudly here rather than resume into a nonsense state.
        """
        if data.kind != kind:
            raise CheckpointError(
                f"checkpoint kind {data.kind!r} does not match this "
                f"session's {kind!r} manager", reason="mismatch")
        if data.spec_hash != spec_hash:
            raise CheckpointError(
                f"checkpoint spec hash {data.spec_hash} does not match "
                f"this run's {spec_hash} (different analysis "
                f"configuration)", reason="mismatch")
        if data.net_hash != net_hash:
            raise CheckpointError(
                f"checkpoint net hash {data.net_hash} does not match "
                f"this run's {net_hash} (different net)",
                reason="mismatch")
