"""The one way in: ``analyze(net, spec)`` and the ``Analysis`` session.

:func:`analyze` is the fire-and-forget form — build the backend, run
the fixpoint, return the unified
:class:`~repro.analysis.result.AnalysisResult`.  :class:`Analysis` is
the session form: the backend session stays alive after ``run()``, so
the reachable set is computed once and reused across model-checking
queries, manual ``step()`` driving or ``stats()`` inspection.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..petri.net import PetriNet
from .backends import EncodingFactory, SolverSession, backend_for
from .result import AnalysisResult
from .spec import AnalysisSpec, SpecError

__all__ = ["Analysis", "analyze"]


class Analysis:
    """A reusable analysis session over one net and one spec.

    Parameters
    ----------
    net:
        The :class:`~repro.petri.net.PetriNet` to analyse.
    spec:
        An :class:`~repro.analysis.spec.AnalysisSpec`; omitted fields
        may instead be passed as keyword overrides
        (``Analysis(net, scheme="sparse")``).
    encoding_factory:
        Optional ``net -> Encoding`` override for the BDD backends
        (e.g. to reuse pre-computed SMCs); rejected by the ZDD and
        k-bounded backends, which build their own representation.

    The backend session is built eagerly (construction time lands in
    the result's ``extras["build_seconds"]``); the fixpoint runs on the
    first :meth:`run` and is cached afterwards.
    """

    def __init__(self, net: PetriNet, spec: Optional[AnalysisSpec] = None,
                 encoding_factory: Optional[EncodingFactory] = None,
                 **overrides) -> None:
        if spec is None:
            spec = AnalysisSpec(**overrides)
        elif overrides:
            spec = spec.replace(**overrides)
        self.net = net
        self.spec = spec
        self.backend = backend_for(spec)
        self.session: SolverSession = self.backend.build(
            net, spec, encoding_factory=encoding_factory)

    # ------------------------------------------------------------------

    def run(self, max_iterations: Optional[int] = None) -> AnalysisResult:
        """Drive the fixpoint to completion (cached)."""
        return self.session.run(max_iterations=max_iterations)

    def step(self) -> bool:
        """Advance one iteration; ``False`` once at the fixpoint."""
        return self.session.step()

    def stats(self) -> Dict[str, Any]:
        """Mid-flight progress/memory snapshot from the session."""
        return self.session.stats()

    @property
    def result(self) -> AnalysisResult:
        """The analysis result, running the fixpoint if needed."""
        return self.run()

    @property
    def reachable(self):
        """The reachable state set (running the fixpoint if needed)."""
        return self.run().reachable

    @property
    def symbolic_net(self):
        """The backend's wrapped net object (``SymbolicNet``,
        ``RelationalNet``, ``ZddNet``/``ZddRelationalNet`` or
        ``KBoundedNet``) for backend-specific queries."""
        return self.session.symbolic_net

    def checker(self):
        """A :class:`~repro.symbolic.checker.ModelChecker` over the
        already-computed reachable set.

        Only the functional BDD backend carries the place/enabling
        functions and pre-image operator the checker needs; any other
        spec raises :class:`SpecError` pointing there.
        """
        if not self.session.supports_model_checking:
            raise SpecError(
                f"model checking needs the functional BDD backend "
                f"(place characteristic functions and pre-images); "
                f"this analysis runs {self.spec.engine_id}")
        from ..symbolic.checker import ModelChecker
        return ModelChecker(self.session.symbolic_net,
                            reachable=self.reachable)


def analyze(net: PetriNet, spec: Optional[AnalysisSpec] = None,
            encoding_factory: Optional[EncodingFactory] = None,
            **overrides) -> AnalysisResult:
    """Run one symbolic analysis and return its unified result.

    The convenience form of :class:`Analysis` —
    ``analyze(net, AnalysisSpec(backend="zdd"))`` or, with keyword
    overrides, ``analyze(net, scheme="sparse", reorder=False)``.
    """
    return Analysis(net, spec, encoding_factory=encoding_factory,
                    **overrides).run()
