"""Portfolio backend: race heterogeneous solvers, first verdict wins.

No single engine wins everywhere — the paper's encodings make different
nets cheap for different methods — so the portfolio spawns several
member configurations (:data:`~repro.analysis.spec.PORTFOLIO_MEMBERS`)
as ``multiprocessing`` worker processes, streams their verdicts over a
``Queue``, answers with the first complete
:class:`~repro.analysis.result.AnalysisResult` and terminates the
losers (the SMPT ``Parallelizer`` pattern).

The race is robust by construction:

* **Per-member and global timeouts** (``spec.member_timeout`` /
  ``spec.timeout``) — a worker past its deadline is terminated and
  recorded as a :class:`MemberFailure`; the race continues with the
  survivors.
* **Crashed-worker detection** — a worker that dies without reporting
  (segfault, ``SIGKILL``, OOM) surfaces its exit code in a structured
  :class:`MemberFailure`; the race continues with the survivors.
* **Poisoned-queue tolerance** — a payload that fails to unpickle or
  does not follow the worker protocol is recorded and skipped; after
  :data:`MAX_QUEUE_POISON` strikes the queue is considered unusable and
  the race aborts cleanly.
* **Checkpoint-resume retries** — with ``spec.checkpoint_path`` set,
  every member checkpoints to its own file
  (:func:`member_checkpoint_path`); a member that crashes or times out
  while such a checkpoint exists is restarted from it, up to
  :data:`MEMBER_MAX_RETRIES` times with linear backoff, instead of
  being written off.  Retry events are surfaced in the race telemetry
  (``extras["portfolio"]["retries"]``).
* **Graceful degradation** — when the platform rules out worker
  processes (no usable start method, semaphores unavailable, spawn
  failures), the race falls back to running members serially in
  process, first success wins (timeouts are unenforceable there and
  are reported as such).
* **No orphans** — every spawned worker is terminated and joined
  before the race returns, winner found or not.

Everything the race does to processes goes through an injectable
:class:`WorkerHarness`, so the fault-injection suite can simulate
hangs, crashes and poisoned queues deterministically on a virtual
clock (``tests/analysis/test_portfolio_faults.py``).

The winning member's result is returned with portfolio extras::

    result.extras["portfolio"] == {
        "winner": "zdd-chained",          # member id
        "mode": "process",                 # or "serial"
        "members": [{"member": ..., "outcome": "won" | "cancelled" |
                     "crash" | "timeout" | "error" | "spawn" |
                     "skipped", "seconds": ..., "attempts": ...}, ...],
        "failures": [MemberFailure.to_dict(), ...],
        "retries": [{"member": ..., "attempt": ..., "reason": ...,
                     "backoff": ..., "checkpoint": ...}, ...],
    }
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..petri.net import PetriNet
from ..petri.parser import dumps, loads
from .backends import BACKENDS, SolverBackend, SolverSession, backend_for
from .result import AnalysisResult
from .spec import (DEFAULT_PORTFOLIO_MEMBERS, PORTFOLIO_MEMBERS,
                   AnalysisSpec, SpecError)

__all__ = [
    "PortfolioBackend", "PortfolioError", "MemberFailure",
    "WorkerHarness", "member_spec", "member_checkpoint_path",
]

# How long the parent sleeps on the queue per loop pass: bounds the
# latency of crash/deadline detection, not of verdict delivery (a
# verdict wakes the ``get`` immediately).
POLL_INTERVAL = 0.1
# A dead worker gets this many further queue polls before it is
# declared crashed, so a verdict it flushed on the way out is not
# misread as a crash.
DEAD_WORKER_GRACE_POLLS = 2
# Unreadable/malformed queue payloads tolerated before the race
# concludes the queue itself is unusable.
MAX_QUEUE_POISON = 3
# Seconds to wait for a terminated loser before escalating to kill().
JOIN_TIMEOUT = 2.0
# When the portfolio checkpoints (``spec.checkpoint_path``), a member
# that crashes or times out while holding a checkpoint is restarted
# from it — at most this many times, with a linear backoff per attempt.
MEMBER_MAX_RETRIES = 2
RETRY_BACKOFF_SECONDS = 0.5


class PortfolioError(RuntimeError):
    """The race produced no verdict: every member failed or timed out.

    ``failures`` carries the structured :class:`MemberFailure` records.
    """

    def __init__(self, message: str,
                 failures: Sequence["MemberFailure"] = ()) -> None:
        super().__init__(message)
        self.failures: Tuple[MemberFailure, ...] = tuple(failures)


@dataclass(frozen=True)
class MemberFailure:
    """One member's structured failure record.

    ``member`` is the member id (``None`` when the failure cannot be
    attributed, e.g. a poisoned queue payload), ``kind`` one of
    ``crash`` (died without reporting; ``exitcode`` set), ``timeout``
    (per-member or global deadline), ``error`` (the member raised and
    reported it), ``spawn`` (the worker never started) or ``queue``
    (unreadable or malformed queue payload).
    """

    member: Optional[str]
    kind: str
    detail: str = ""
    exitcode: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"member": self.member, "kind": self.kind,
                "detail": self.detail, "exitcode": self.exitcode}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MemberFailure":
        return cls(member=data.get("member"), kind=data["kind"],
                   detail=data.get("detail", ""),
                   exitcode=data.get("exitcode"))


# ----------------------------------------------------------------------
# Member catalog
# ----------------------------------------------------------------------

def member_checkpoint_path(spec: AnalysisSpec,
                           member: str) -> Optional[str]:
    """Where one member checkpoints: ``<portfolio path>.<member>``.

    Members race in separate processes, so they cannot share one file;
    suffixing the portfolio's ``checkpoint_path`` keeps every member's
    checkpoint alongside it and lets the race resume a crashed member
    from *its own* last safe point.
    """
    if spec.checkpoint_path is None:
        return None
    return f"{spec.checkpoint_path}.{member}"


def member_spec(spec: AnalysisSpec, member: str) -> AnalysisSpec:
    """The single-engine spec a portfolio member runs.

    Options meaningful to a member are threaded through from the
    portfolio spec (scheme / frontier handling for the BDD members, the
    functional sweep knobs for ``bdd-functional``, ``k_bound`` for
    ``kbounded``, reordering and ``max_iterations`` for everyone).
    Durability knobs thread through too: each member checkpoints to
    :func:`member_checkpoint_path` on the portfolio's cadence.
    """
    shared: Dict[str, Any] = dict(
        reorder=spec.reorder, reorder_threshold=spec.reorder_threshold,
        max_iterations=spec.max_iterations,
        checkpoint_path=member_checkpoint_path(spec, member),
        checkpoint_every=spec.checkpoint_every,
        checkpoint_every_seconds=spec.checkpoint_every_seconds,
        resume=spec.resume)
    bdd: Dict[str, Any] = dict(
        scheme=spec.scheme, simplify_frontier=spec.simplify_frontier,
        **shared)
    if member == "bdd-functional":
        return AnalysisSpec(strategy=spec.strategy,
                            chain_order=spec.chain_order,
                            use_toggle=spec.use_toggle, **bdd)
    if member in ("bdd-chained", "bdd-partitioned", "bdd-monolithic"):
        return AnalysisSpec(form="relational",
                            engine=member.split("-", 1)[1], **bdd)
    if member == "bdd-partitioned-mp":
        # The member itself runs in a daemonic worker process, which
        # cannot spawn children — its pool degrades to the serial
        # partitioned sweep there (recorded in extras["parallel"]).
        # Running it standalone (or in the portfolio's serial degraded
        # mode) does use worker processes, sized by the portfolio's
        # workers setting.
        return AnalysisSpec(form="relational", engine="partitioned-mp",
                            workers=spec.workers, **bdd)
    if member == "zdd-chained":
        return AnalysisSpec(backend="zdd", form="relational",
                            engine="chained", **shared)
    if member == "zdd-classic":
        return AnalysisSpec(backend="zdd", form="functional", **shared)
    if member == "kbounded":
        # A 1-safe net is in particular 1-bounded, so the default bound
        # keeps the member's verdict comparable to the safe-net members.
        return AnalysisSpec(k_bound=spec.k_bound or 1, **shared)
    raise SpecError(f"unknown portfolio member {member!r}; expected one "
                    f"of {PORTFOLIO_MEMBERS}")


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------

def _worker_main(member: str, net_text: str, spec_values: Dict[str, Any],
                 result_queue) -> None:
    """Run one member to completion inside a worker process.

    The net travels as ``.pnet`` text and the spec as its ``to_dict``
    form, so the payload pickles under every start method.  Success
    reports ``("result", member, result.to_dict(), seconds)``; an
    exception reports ``("error", member, detail)``.  A worker that
    dies without reporting is the parent's crash-detection case.
    """
    try:
        from .facade import analyze  # local: workers import lazily
        net = loads(net_text)
        spec = AnalysisSpec.from_dict(spec_values)
        start = time.perf_counter()
        result = analyze(net, spec)
        result_queue.put(("result", member, result.to_dict(),
                          time.perf_counter() - start))
    except BaseException as exc:  # report everything, then exit 0
        try:
            result_queue.put(
                ("error", member, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass  # unreportable: the parent sees a silent exit


# ----------------------------------------------------------------------
# The harness seam
# ----------------------------------------------------------------------

class WorkerHarness:
    """The process primitives the race runs on — the injection seam.

    The default implementation spawns real daemonic
    ``multiprocessing`` processes; the fault-injection tests substitute
    fakes driven by a virtual clock.  A replacement must provide:

    * :meth:`available` — whether worker processes can run at all.
    * :meth:`create_queue` — a queue whose ``get(timeout=...)`` raises
      ``queue.Empty`` on timeout (any other exception is treated as a
      poisoned payload).
    * :meth:`spawn` — start ``target(*args)`` for ``member`` and return
      a process-like handle (``is_alive()``, ``exitcode``,
      ``terminate()``, ``kill()``, ``join(timeout)``).
    * :meth:`now` — the race's clock (monotonic seconds).
    """

    def __init__(self, start_method: Optional[str] = None) -> None:
        self.start_method = start_method
        self._ctx = None

    def _context(self):
        if self._ctx is None:
            import multiprocessing
            self._ctx = (multiprocessing.get_context(self.start_method)
                         if self.start_method
                         else multiprocessing.get_context())
        return self._ctx

    def available(self) -> bool:
        """Whether this platform can run the worker-process race.

        Sandboxed environments commonly refuse the semaphores a
        ``multiprocessing.Queue`` needs; probing here is what lets the
        race degrade to serial instead of crashing mid-build.
        """
        try:
            probe = self._context().Queue()
        except Exception:
            return False
        # Release the probe's feeder thread; some platforms leak it
        # otherwise.
        try:
            probe.close()
            probe.join_thread()
        except Exception:
            pass
        return True

    def create_queue(self):
        return self._context().Queue()

    def spawn(self, member: str, target, args):
        process = self._context().Process(
            target=target, args=args, name=f"portfolio-{member}",
            daemon=True)
        process.start()
        return process

    def now(self) -> float:
        return time.monotonic()

    def poll_interval(self) -> float:
        return POLL_INTERVAL


# ----------------------------------------------------------------------
# The race
# ----------------------------------------------------------------------

class _MemberState:
    """Book-keeping for one spawned member.

    ``handle is None`` with ``outcome is None`` means the member is
    awaiting a checkpoint-resume restart at ``restart_at``; ``attempt``
    counts launches (1 = the original run).
    """

    def __init__(self, member: str, handle, started: float,
                 deadline: Optional[float]) -> None:
        self.member = member
        self.handle = handle
        self.started = started
        self.deadline = deadline
        self.outcome: Optional[str] = None
        self.seconds: Optional[float] = None
        self.dead_polls = 0
        self.attempt = 1
        self.restart_at: Optional[float] = None

    def resolve(self, outcome: str, now: float) -> None:
        self.outcome = outcome
        self.seconds = now - self.started


class _Race:
    """One portfolio race over worker processes."""

    def __init__(self, net: PetriNet, spec: AnalysisSpec,
                 harness: WorkerHarness) -> None:
        self.net = net
        self.spec = spec
        self.harness = harness
        self.members = spec.resolved_members
        self.failures: List[MemberFailure] = []
        self.outcomes: List[Dict[str, Any]] = []
        self.retries: List[Dict[str, Any]] = []
        self._discarded: List[Any] = []  # handles of retried attempts
        self.winner: Optional[str] = None
        self.winner_result: Optional[AnalysisResult] = None
        self.mode = "process"
        self.seconds = 0.0

    # -- process mode --------------------------------------------------

    def run(self) -> None:
        if not self.harness.available():
            self._run_serial()
            return
        try:
            result_queue = self.harness.create_queue()
        except Exception:
            self._run_serial()
            return
        start = self.harness.now()
        states = self._spawn_all(result_queue)
        if not any(s.outcome is None for s in states.values()):
            # Every spawn failed before a single worker ran: the
            # platform ruled processes out after all — degrade.
            self.failures.clear()
            self._run_serial()
            return
        try:
            self._drive(result_queue, states, start)
            self._classify_unresolved(states)
        finally:
            self._reap(states)
        self.seconds = self.harness.now() - start
        self.outcomes = [
            {"member": s.member, "outcome": s.outcome or "cancelled",
             "seconds": s.seconds, "attempts": s.attempt}
            for s in states.values()]

    def _spawn_all(self, result_queue) -> Dict[str, _MemberState]:
        states: Dict[str, _MemberState] = {}
        for member in self.members:
            mspec = member_spec(self.spec, member)
            now = self.harness.now()
            deadline = (now + self.spec.member_timeout
                        if self.spec.member_timeout else None)
            try:
                handle = self.harness.spawn(
                    member, _worker_main,
                    (member, dumps(self.net), mspec.to_dict(),
                     result_queue))
            except Exception as exc:
                self.failures.append(MemberFailure(
                    member, "spawn", f"{type(exc).__name__}: {exc}"))
                state = _MemberState(member, None, now, None)
                state.resolve("spawn", now)
                states[member] = state
                continue
            states[member] = _MemberState(member, handle, now, deadline)
        return states

    def _drive(self, result_queue, states: Dict[str, _MemberState],
               start: float) -> None:
        global_deadline = (start + self.spec.timeout
                           if self.spec.timeout else None)
        poison = 0
        while self.winner is None:
            live = [s for s in states.values()
                    if s.outcome is None]
            if not live:
                break
            now = self.harness.now()
            for state in live:
                if (state.handle is None and state.restart_at is not None
                        and now >= state.restart_at):
                    self._respawn(state, result_queue)
            live = [s for s in states.values() if s.outcome is None]
            if not live:
                break
            if global_deadline is not None and now >= global_deadline:
                for state in live:
                    if state.handle is not None:
                        state.handle.terminate()
                    state.resolve("timeout", now)
                    self.failures.append(MemberFailure(
                        state.member, "timeout",
                        f"global timeout after {self.spec.timeout}s"))
                break
            timeout = self.harness.poll_interval()
            if global_deadline is not None:
                timeout = min(timeout, global_deadline - now)
            for state in live:
                if state.deadline is not None:
                    timeout = min(timeout, state.deadline - now)
                if state.restart_at is not None:
                    timeout = min(timeout, state.restart_at - now)
            try:
                message = result_queue.get(timeout=max(timeout, 0.005))
            except queue_module.Empty:
                message = None
            except Exception as exc:
                poison += 1
                self.failures.append(MemberFailure(
                    None, "queue",
                    f"unreadable queue payload: "
                    f"{type(exc).__name__}: {exc}"))
                if poison >= MAX_QUEUE_POISON:
                    self._abort_poisoned(states)
                    break
                continue
            if message is not None and not self._dispatch(message, states):
                poison += 1
                if poison >= MAX_QUEUE_POISON:
                    self._abort_poisoned(states)
                    break
            self._check_deadlines_and_crashes(states)

    def _abort_poisoned(self, states: Dict[str, _MemberState]) -> None:
        """The queue is unusable: no further verdict can arrive."""
        now = self.harness.now()
        for state in states.values():
            if state.outcome is None:
                if state.handle is not None:
                    state.handle.terminate()
                state.resolve("error", now)
                self.failures.append(MemberFailure(
                    state.member, "error",
                    "race aborted: result queue unusable"))

    def _schedule_retry(self, state: _MemberState, reason: str,
                        now: float) -> bool:
        """Queue a checkpoint-resume restart for a failed member.

        Only fires when the member actually has a checkpoint to resume
        from (the file under :func:`member_checkpoint_path` exists) and
        its retry budget (:data:`MEMBER_MAX_RETRIES`) is not exhausted.
        Returns whether a restart was scheduled; the caller keeps the
        :class:`MemberFailure` record either way, so retried attempts
        stay visible in the telemetry.
        """
        path = member_checkpoint_path(self.spec, state.member)
        if path is None or not os.path.exists(path):
            return False
        if state.attempt > MEMBER_MAX_RETRIES:
            return False
        backoff = RETRY_BACKOFF_SECONDS * state.attempt
        if state.handle is not None:
            self._discarded.append(state.handle)
        state.handle = None
        state.deadline = None
        state.dead_polls = 0
        state.restart_at = now + backoff
        self.retries.append({
            "member": state.member, "attempt": state.attempt,
            "reason": reason, "backoff": backoff,
            "checkpoint": path})
        state.attempt += 1
        return True

    def _respawn(self, state: _MemberState, result_queue) -> None:
        """Restart a retried member, resuming from its checkpoint."""
        member = state.member
        mspec = member_spec(self.spec, member).replace(resume=True)
        now = self.harness.now()
        state.restart_at = None
        state.started = now
        state.deadline = (now + self.spec.member_timeout
                          if self.spec.member_timeout else None)
        try:
            state.handle = self.harness.spawn(
                member, _worker_main,
                (member, dumps(self.net), mspec.to_dict(),
                 result_queue))
        except Exception as exc:
            self.failures.append(MemberFailure(
                member, "spawn", f"{type(exc).__name__}: {exc}"))
            state.resolve("spawn", now)

    def _dispatch(self, message, states: Dict[str, _MemberState]) -> bool:
        """Apply one queue message; ``False`` if it was malformed."""
        now = self.harness.now()
        if (not isinstance(message, (tuple, list)) or len(message) < 3
                or message[0] not in ("result", "error")
                or message[1] not in states):
            self.failures.append(MemberFailure(
                None, "queue", f"malformed queue payload: {message!r}"))
            return False
        kind, member = message[0], message[1]
        state = states[member]
        if state.outcome is not None:
            return True  # late message from an already-resolved member
        if kind == "error":
            state.resolve("error", now)
            self.failures.append(MemberFailure(
                member, "error", str(message[2])))
            return True
        try:
            result = AnalysisResult.from_dict(message[2])
        except Exception as exc:
            state.resolve("error", now)
            self.failures.append(MemberFailure(
                member, "error",
                f"undecodable result payload: "
                f"{type(exc).__name__}: {exc}"))
            return False
        state.resolve("won", now)
        self.winner = member
        self.winner_result = result
        return True

    def _check_deadlines_and_crashes(
            self, states: Dict[str, _MemberState]) -> None:
        now = self.harness.now()
        for state in states.values():
            if state.outcome is not None or state.handle is None:
                continue
            if state.deadline is not None and now >= state.deadline:
                state.handle.terminate()
                self.failures.append(MemberFailure(
                    state.member, "timeout",
                    f"member timeout after "
                    f"{self.spec.member_timeout}s"))
                if not self._schedule_retry(state, "timeout", now):
                    state.resolve("timeout", now)
            elif not state.handle.is_alive():
                # Grace: the worker may have flushed its verdict into
                # the queue on the way out; give the next polls a
                # chance to deliver it before declaring a crash.
                state.dead_polls += 1
                if state.dead_polls > DEAD_WORKER_GRACE_POLLS:
                    exitcode = state.handle.exitcode
                    self.failures.append(MemberFailure(
                        state.member, "crash",
                        f"worker died without reporting "
                        f"(exitcode {exitcode})", exitcode=exitcode))
                    if not self._schedule_retry(state, "crash", now):
                        state.resolve("crash", now)

    def _classify_unresolved(self, states: Dict[str, _MemberState]) -> None:
        """Settle members the verdict outran.

        A loser still running is ``cancelled``.  One that already died
        with a non-zero exit code crashed — the winner merely arrived
        before the grace polls did — so its exit code is still surfaced
        as a structured failure.
        """
        now = self.harness.now()
        for state in states.values():
            if state.outcome is not None:
                continue
            if state.handle is None:
                # Awaiting a checkpoint-resume restart when the verdict
                # arrived: the retry is moot, not a failure.
                state.resolve("cancelled", now)
                continue
            exitcode = None if state.handle.is_alive() \
                else state.handle.exitcode
            if exitcode not in (None, 0):
                state.resolve("crash", now)
                self.failures.append(MemberFailure(
                    state.member, "crash",
                    f"worker died without reporting "
                    f"(exitcode {exitcode})", exitcode=exitcode))
            else:
                state.resolve("cancelled", now)

    def _reap(self, states: Dict[str, _MemberState]) -> None:
        """Terminate and join every worker — losers included, always.

        Handles discarded by checkpoint-resume retries are reaped too:
        the replaced attempt was terminated when its retry was
        scheduled, but it still needs joining here.
        """
        handles = [s.handle for s in states.values()
                   if s.handle is not None] + self._discarded
        for handle in handles:
            try:
                if handle.is_alive():
                    handle.terminate()
            except Exception:
                pass
        for handle in handles:
            try:
                handle.join(JOIN_TIMEOUT)
                if handle.is_alive():
                    handle.kill()
                    handle.join(JOIN_TIMEOUT)
            except Exception:
                pass

    # -- serial degraded mode ------------------------------------------

    def _run_serial(self) -> None:
        """In-process fallback: members run one at a time, first
        success wins.  Timeouts cannot be enforced here (a Python
        fixpoint cannot be preempted); members after the winner are
        reported as ``skipped``."""
        self.mode = "serial"
        start = time.perf_counter()
        self.winning_session: Optional[SolverSession] = None
        for index, member in enumerate(self.members):
            mspec = member_spec(self.spec, member)
            member_start = time.perf_counter()
            try:
                session = backend_for(mspec).build(self.net, mspec)
                result = session.run()
            except Exception as exc:
                self.failures.append(MemberFailure(
                    member, "error", f"{type(exc).__name__}: {exc}"))
                self.outcomes.append(
                    {"member": member, "outcome": "error",
                     "seconds": time.perf_counter() - member_start})
                continue
            self.outcomes.append(
                {"member": member, "outcome": "won",
                 "seconds": time.perf_counter() - member_start})
            self.outcomes.extend(
                {"member": later, "outcome": "skipped", "seconds": None}
                for later in self.members[index + 1:])
            self.winner = member
            self.winner_result = result
            self.winning_session = session
            break
        self.seconds = time.perf_counter() - start


# ----------------------------------------------------------------------
# Backend + session
# ----------------------------------------------------------------------

class _PortfolioSession(SolverSession):
    """One race, surfaced through the uniform session protocol.

    The race is one indivisible "iteration": :meth:`step` runs it to
    the first verdict, after which the session is exhausted.  The
    result's ``iterations`` field reports the *winner's* fixpoint
    iterations, not the parent's single step.
    """

    def __init__(self, net: PetriNet, spec: AnalysisSpec,
                 harness: Optional[WorkerHarness] = None) -> None:
        self.symbolic_net = None
        self._race = _Race(net, spec, harness or WorkerHarness())
        super().__init__(PortfolioBackend.name, spec, build_seconds=0.0)

    def at_fixpoint(self) -> bool:
        return self._race.winner_result is not None

    def _advance(self) -> None:
        race = self._race
        race.run()
        if race.winner_result is None:
            detail = "; ".join(
                f"{f.member or 'queue'}: {f.kind} ({f.detail})"
                for f in race.failures) or "no members ran"
            raise PortfolioError(
                f"portfolio race produced no verdict — {detail}",
                race.failures)
        # Serial mode keeps the winning in-process session alive, so
        # the reachable handle and model checking stay usable exactly
        # as if that backend had been run directly.
        session = getattr(race, "winning_session", None)
        if session is not None:
            self.symbolic_net = session.symbolic_net
            self.supports_model_checking = session.supports_model_checking

    def _peak_nodes(self) -> int:
        result = self._race.winner_result
        return result.peak_nodes if result is not None else 0

    def _finish(self) -> AnalysisResult:
        race = self._race
        winner = race.winner_result
        extras = {
            "portfolio": {
                "winner": race.winner,
                "mode": race.mode,
                "members": race.outcomes,
                "failures": [f.to_dict() for f in race.failures],
                "retries": list(race.retries),
            },
            "winner_extras": dict(winner.extras),
            "build_seconds": winner.extras.get("build_seconds", 0.0),
            "fixpoint_seconds": winner.extras.get("fixpoint_seconds",
                                                  0.0),
        }
        return AnalysisResult(
            spec=self.spec,
            engine=f"portfolio/{race.winner}",
            markings=winner.markings,
            iterations=winner.iterations,
            variables=winner.variables,
            final_nodes=winner.final_nodes,
            peak_nodes=winner.peak_nodes,
            seconds=race.seconds,
            reorder_count=winner.reorder_count,
            reachable=winner.reachable,
            extras=extras)


class PortfolioBackend(SolverBackend):
    """Race the member configurations; the first verdict answers.

    ``harness`` (keyword) injects the :class:`WorkerHarness` the race
    runs on — the fault-injection seam; ``None`` spawns real worker
    processes.
    """

    name = "portfolio"

    def __init__(self, harness: Optional[WorkerHarness] = None) -> None:
        self.harness = harness

    def build(self, net, spec, encoding_factory=None):
        if encoding_factory is not None:
            raise SpecError(
                "encoding_factory only applies to the BDD backends; "
                "portfolio members build their own representations in "
                "their worker processes")
        return _PortfolioSession(net, spec, harness=self.harness)


BACKENDS[PortfolioBackend.name] = PortfolioBackend()
