"""The unified analysis result: one schema for every backend.

:class:`AnalysisResult` supersedes the per-engine result dataclasses
(``TraversalResult``, ``ZddTraversalResult``, ``KBoundedResult``) with a
common core every backend fills — marking count, iterations, variable
count, final and peak decision-diagram nodes, wall-clock seconds,
reorder count, the engine identifier and an echo of the spec that
produced it — plus a per-backend ``extras`` dict for everything that
only one backend can report.  Extras keys are documented per backend in
``docs/api.md``; every value must be JSON-serializable.

``to_dict()``/``from_dict()`` round-trip the result through plain JSON
(minus the in-memory ``reachable`` handle), so benchmarks, the CI
regression gate and table scripts all consume one schema instead of
three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .spec import AnalysisSpec

__all__ = ["AnalysisResult", "SCHEMA_VERSION"]

# Bumped when the serialized layout changes shape; ``from_dict`` refuses
# newer payloads instead of silently misreading them.
SCHEMA_VERSION = 1


@dataclass
class AnalysisResult:
    """Statistics of one symbolic analysis, backend-independent.

    Attributes
    ----------
    spec:
        The :class:`~repro.analysis.spec.AnalysisSpec` that produced
        this result (echoed so a result is self-describing).
    engine:
        Engine identifier, e.g. ``functional``, ``relational/chained``,
        ``zdd/classic``, ``kbounded/3``.
    markings:
        Number of reachable markings.
    iterations:
        Fixpoint iterations until the frontier emptied.
    variables:
        State variables (encoding variables; places for the ZDD;
        count bits for the k-bounded engine).
    final_nodes:
        Decision-diagram nodes of the reachable set.
    peak_nodes:
        Peak live nodes in the manager during the analysis.
    seconds:
        Total wall-clock seconds, construction included (the breakdown
        lives in ``extras["build_seconds"]`` /
        ``extras["fixpoint_seconds"]``).
    reorder_count:
        Dynamic-reordering passes run (0 on the ZDD backend).
    status:
        ``"complete"`` (the fixpoint converged) or ``"partial"`` (a
        resource budget aborted the run at a safe point; ``markings``
        and ``reachable`` are then a genuine under-approximation of the
        reachable set, ``extras["budget"]`` carries the exhaustion
        telemetry and — when checkpointing — a final checkpoint is on
        disk to resume from).
    extras:
        Per-backend statistics (JSON-serializable values only).
    reachable:
        The reachable state set — a :class:`~repro.bdd.Function` on the
        BDD backends, a ZDD node id on the ZDD backend.  Not
        serialized; ``None`` after :meth:`from_dict`.
    """

    spec: AnalysisSpec
    engine: str
    markings: int
    iterations: int
    variables: int
    final_nodes: int
    peak_nodes: int
    seconds: float
    reorder_count: int
    extras: Dict[str, Any] = field(default_factory=dict)
    reachable: Optional[Any] = None
    status: str = "complete"

    def __repr__(self) -> str:
        partial = "" if self.status == "complete" \
            else f" status={self.status}"
        return (f"<AnalysisResult engine={self.engine} "
                f"markings={self.markings} V={self.variables} "
                f"nodes={self.final_nodes} iters={self.iterations} "
                f"t={self.seconds:.3f}s{partial}>")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump (drops the ``reachable`` handle)."""
        return {
            "schema": SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "markings": self.markings,
            "iterations": self.iterations,
            "variables": self.variables,
            "final_nodes": self.final_nodes,
            "peak_nodes": self.peak_nodes,
            "seconds": self.seconds,
            "reorder_count": self.reorder_count,
            "status": self.status,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisResult":
        """Rebuild a result from :meth:`to_dict` output.

        The in-memory ``reachable`` handle is gone after a JSON round
        trip, so it comes back as ``None``; everything else survives
        bit-exact.
        """
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported AnalysisResult schema {schema!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        return cls(
            spec=AnalysisSpec.from_dict(data["spec"]),
            engine=data["engine"],
            markings=data["markings"],
            iterations=data["iterations"],
            variables=data["variables"],
            final_nodes=data["final_nodes"],
            peak_nodes=data["peak_nodes"],
            seconds=data["seconds"],
            reorder_count=data["reorder_count"],
            status=data.get("status", "complete"),
            extras=dict(data.get("extras", {})),
        )
