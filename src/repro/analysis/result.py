"""The unified analysis result: one schema for every backend.

:class:`AnalysisResult` supersedes the per-engine result dataclasses
(``TraversalResult``, ``ZddTraversalResult``, ``KBoundedResult``) with a
common core every backend fills — marking count, iterations, variable
count, final and peak decision-diagram nodes, wall-clock seconds,
reorder count, the engine identifier and an echo of the spec that
produced it — plus a per-backend ``extras`` dict for everything that
only one backend can report.  Extras keys are documented per backend in
``docs/api.md``; every value must be JSON-serializable.

``to_dict()``/``from_dict()`` round-trip the result through plain JSON
(minus the in-memory ``reachable`` handle), so benchmarks, the CI
regression gate, table scripts and the ``repro.service`` result cache
all consume one schema instead of three.

Versioning is two-tier.  The **major** version (``schema``) changes
when the layout is reshaped incompatibly; ``from_dict`` refuses a
different major rather than misread it.  The **minor** version
(``schema_minor``) covers additive evolution — new extras keys, new
optional top-level fields — and is tolerated in *both* directions:
a payload from a newer minor build is read with a logged warning, its
unknown top-level fields preserved verbatim (``foreign``) and re-emitted
by ``to_dict``, and its unknown extras keys kept as-is.  A result cache
shared between builds (``repro.service``) must never let an entry
written by a newer build poison an older reader.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional

from .spec import AnalysisSpec

__all__ = ["AnalysisResult", "SCHEMA_VERSION", "SCHEMA_MINOR"]

# Bumped when the serialized layout changes shape incompatibly;
# ``from_dict`` refuses other majors instead of silently misreading
# them.
SCHEMA_VERSION = 1
# Bumped on additive changes; newer minors are read with a logged
# warning and their unknown fields carried through untouched.
SCHEMA_MINOR = 1

log = logging.getLogger(__name__)

#: Top-level keys ``from_dict`` consumes; anything else is foreign.
_KNOWN_KEYS = frozenset({
    "schema", "schema_minor", "spec", "engine", "markings", "iterations",
    "variables", "final_nodes", "peak_nodes", "seconds", "reorder_count",
    "status", "extras",
})


@dataclass
class AnalysisResult:
    """Statistics of one symbolic analysis, backend-independent.

    Attributes
    ----------
    spec:
        The :class:`~repro.analysis.spec.AnalysisSpec` that produced
        this result (echoed so a result is self-describing).
    engine:
        Engine identifier, e.g. ``functional``, ``relational/chained``,
        ``zdd/classic``, ``kbounded/3``.
    markings:
        Number of reachable markings.
    iterations:
        Fixpoint iterations until the frontier emptied.
    variables:
        State variables (encoding variables; places for the ZDD;
        count bits for the k-bounded engine).
    final_nodes:
        Decision-diagram nodes of the reachable set.
    peak_nodes:
        Peak live nodes in the manager during the analysis.
    seconds:
        Total wall-clock seconds, construction included (the breakdown
        lives in ``extras["build_seconds"]`` /
        ``extras["fixpoint_seconds"]``).
    reorder_count:
        Dynamic-reordering passes run (0 on the ZDD backend).
    status:
        ``"complete"`` (the fixpoint converged) or ``"partial"`` (a
        resource budget aborted the run at a safe point; ``markings``
        and ``reachable`` are then a genuine under-approximation of the
        reachable set, ``extras["budget"]`` carries the exhaustion
        telemetry and — when checkpointing — a final checkpoint is on
        disk to resume from).
    extras:
        Per-backend statistics (JSON-serializable values only).
        Unknown keys read from a newer build's payload are kept
        verbatim.
    foreign:
        Top-level keys from a newer minor schema this build does not
        know, preserved through :meth:`from_dict`/:meth:`to_dict` so
        re-serializing a foreign payload loses nothing.
    reachable:
        The reachable state set — a :class:`~repro.bdd.Function` on the
        BDD backends, a ZDD node id on the ZDD backend.  Not
        serialized; ``None`` after :meth:`from_dict`.
    """

    spec: AnalysisSpec
    engine: str
    markings: int
    iterations: int
    variables: int
    final_nodes: int
    peak_nodes: int
    seconds: float
    reorder_count: int
    extras: Dict[str, Any] = field(default_factory=dict)
    reachable: Optional[Any] = None
    status: str = "complete"
    foreign: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        partial = "" if self.status == "complete" \
            else f" status={self.status}"
        return (f"<AnalysisResult engine={self.engine} "
                f"markings={self.markings} V={self.variables} "
                f"nodes={self.final_nodes} iters={self.iterations} "
                f"t={self.seconds:.3f}s{partial}>")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump (drops the ``reachable`` handle)."""
        data = {
            "schema": SCHEMA_VERSION,
            "schema_minor": SCHEMA_MINOR,
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "markings": self.markings,
            "iterations": self.iterations,
            "variables": self.variables,
            "final_nodes": self.final_nodes,
            "peak_nodes": self.peak_nodes,
            "seconds": self.seconds,
            "reorder_count": self.reorder_count,
            "status": self.status,
            "extras": dict(self.extras),
        }
        for key, value in self.foreign.items():
            # A round-tripped foreign payload keeps its newer-minor
            # fields, but never clobbers a key this build owns.
            if key not in data:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisResult":
        """Rebuild a result from :meth:`to_dict` output.

        The in-memory ``reachable`` handle is gone after a JSON round
        trip, so it comes back as ``None``; everything else survives
        bit-exact.  A different *major* schema raises ``ValueError``
        (the layout may have been reshaped); a newer *minor* — and any
        unknown top-level or extras keys, or unknown spec fields — is
        tolerated with a logged warning, the foreign content kept so a
        later :meth:`to_dict` re-emits it.
        """
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported AnalysisResult schema {schema!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        minor = data.get("schema_minor", 0)
        if isinstance(minor, int) and minor > SCHEMA_MINOR:
            log.warning(
                "AnalysisResult payload has schema minor %s (this build "
                "writes %s); reading it anyway and keeping unknown "
                "fields", minor, SCHEMA_MINOR)
        foreign = {key: value for key, value in data.items()
                   if key not in _KNOWN_KEYS}
        if foreign:
            log.warning("AnalysisResult payload carries unknown fields "
                        "%s (written by a newer build?); kept verbatim",
                        sorted(foreign))
        return cls(
            spec=AnalysisSpec.from_dict(data["spec"],
                                        ignore_unknown=True),
            engine=data["engine"],
            markings=data["markings"],
            iterations=data["iterations"],
            variables=data["variables"],
            final_nodes=data["final_nodes"],
            peak_nodes=data["peak_nodes"],
            seconds=data["seconds"],
            reorder_count=data["reorder_count"],
            status=data.get("status", "complete"),
            extras=dict(data.get("extras", {})),
            foreign=foreign,
        )
