"""The declarative analysis specification: one object, every knob.

An :class:`AnalysisSpec` captures everything the solver backends need to
run a symbolic reachability analysis — encoding scheme, backend family
(``bdd`` | ``zdd``), image form (``functional`` | ``relational``), the
image engine, clustering granularity, reordering and frontier options
and the ``k_bound`` extension — in a single validated frozen dataclass.
The CLI, the experiment runner and the table scripts all build one of
these instead of re-wiring keyword arguments per entry point.

Two kinds of misconfiguration are distinguished:

* **Errors** (:class:`SpecError`) — combinations that cannot mean
  anything: an unknown scheme, a relational engine with the functional
  form, an explicit ``cluster_size`` when there are no partitions to
  cluster, ``k_bound`` on the ZDD backend.  Raised at construction.
* **Warnings** (:class:`SpecWarning`) — options that are merely
  *inapplicable* to the selected backend (a traversal strategy for a
  relational engine, a scheme for the ZDD's direct token-set encoding).
  These are returned as structured objects from :meth:`
  AnalysisSpec.warnings` — never printed here — so callers decide how
  to surface them (the CLI writes them to stderr; tests assert on
  them).  A warning fires only when the option was moved off its
  default: defaults are always silently correct.

The defaults below are the *single* definition for the whole project —
the CLI, ``experiments/runner.py`` and the legacy wrappers all resolve
through them, which is what keeps the engine defaults from skewing
apart again (``tests/analysis/test_spec.py`` pins this down).
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Union

from ..symbolic.partition import validate_cluster_size

__all__ = [
    "AnalysisSpec", "SpecError", "SpecWarning",
    "SCHEMES", "BACKEND_FAMILIES", "FORMS", "RELATIONAL_ENGINES",
    "STRATEGIES",
    "CHAIN_ORDERS", "DEFAULT_FORM", "DEFAULT_RELATIONAL_ENGINE",
    "DEFAULT_CLUSTER_SIZE", "DEFAULT_REORDER_THRESHOLD",
    "PORTFOLIO_MEMBERS", "DEFAULT_PORTFOLIO_MEMBERS",
    "NONSEMANTIC_FIELDS", "SEMANTIC_FIELDS",
]

log = logging.getLogger(__name__)

ClusterSize = Union[int, str]

SCHEMES = ("sparse", "dense", "improved")
BACKEND_FAMILIES = ("bdd", "zdd", "portfolio")
FORMS = ("functional", "relational")
RELATIONAL_ENGINES = ("monolithic", "partitioned", "chained",
                      "partitioned-mp")
STRATEGIES = ("bfs", "chaining")
CHAIN_ORDERS = ("net", "support")

# Member catalog for the portfolio backend: each id names one
# heterogeneous solver configuration the race can spawn (the spec
# builders live in ``repro.analysis.portfolio``).  Validation happens
# here so a bad ``portfolio_members`` fails at spec construction, not
# mid-race.
PORTFOLIO_MEMBERS = (
    "bdd-functional", "bdd-chained", "bdd-partitioned",
    "bdd-monolithic", "bdd-partitioned-mp", "zdd-chained",
    "zdd-classic", "kbounded",
)
# No single engine wins everywhere (the point of the race): the paper's
# functional sweep, both relational-product families and the count-bit
# extension cover each other's weak instances.
DEFAULT_PORTFOLIO_MEMBERS = (
    "bdd-functional", "bdd-chained", "zdd-chained", "kbounded",
)

# The one place the project's engine defaults live.  ``bdd`` defaults to
# the paper's functional toggle path; ``zdd`` to the relational chained
# engine (measured fastest in BENCH_relprod.json across every instance).
DEFAULT_FORM: Dict[str, str] = {"bdd": "functional", "zdd": "relational"}
DEFAULT_RELATIONAL_ENGINE = "chained"
DEFAULT_CLUSTER_SIZE: ClusterSize = "auto"
DEFAULT_REORDER_THRESHOLD = 2_000

# Fields that do not change the analysis trajectory: the durability and
# budget knobs, plus ``max_iterations`` (bounds how far a run gets, not
# the states it visits).  :meth:`AnalysisSpec.semantic_fingerprint` —
# the one identity both the checkpoint headers and the
# ``repro.service`` result cache key on — excludes them, so a
# ``resume=True`` run, one retrying with a larger iteration allowance
# or different budget, or one sized to a different worker pool still
# matches the checkpoint/cache entry its ancestor wrote.  Every spec
# field must appear in exactly one of the two tuples below;
# ``tests/analysis/test_spec.py`` enumerates the full field list so a
# new field cannot silently fracture (or silently merge) cache and
# checkpoint identity.
NONSEMANTIC_FIELDS = (
    "checkpoint_path", "checkpoint_every", "checkpoint_every_seconds",
    "resume", "node_budget", "deadline", "max_iterations",
    "timeout", "member_timeout", "workers",
)
# The complement: every field that *does* pick the trajectory (and so
# the result).  Declared explicitly rather than computed so adding a
# spec field forces a conscious classification decision here.
SEMANTIC_FIELDS = (
    "scheme", "backend", "form", "engine", "cluster_size", "strategy",
    "chain_order", "use_toggle", "reorder", "reorder_threshold",
    "simplify_frontier", "k_bound", "portfolio_members",
)


class SpecError(ValueError):
    """An :class:`AnalysisSpec` field combination that cannot be run."""


@dataclass(frozen=True)
class SpecWarning:
    """One inapplicable-but-harmless option on a spec.

    ``option`` is the spec field name, ``value`` what it was set to and
    ``reason`` why the selected backend ignores it.  The CLI renders
    these to stderr; they replace the old free-text ``print`` blocks.
    """

    option: str
    value: Any
    reason: str

    def render(self) -> str:
        """Human-readable one-liner (what the CLI prints)."""
        return f"{self.option}={self.value!r} ignored: {self.reason}"


@dataclass(frozen=True)
class AnalysisSpec:
    """A validated, frozen description of one symbolic analysis.

    Parameters
    ----------
    scheme:
        Marking encoding for the BDD backends: ``sparse`` (one variable
        per place), ``dense`` (covering-based SMC codes) or ``improved``
        (default; Section 4.4 codes).  The ZDD backend encodes token
        sets directly and ignores it.
    backend:
        Decision-diagram family: ``bdd`` (default) or ``zdd`` — or
        ``portfolio``, which races several heterogeneous member
        configurations in worker processes and answers with the first
        verdict (:class:`~repro.analysis.portfolio.PortfolioBackend`).
    form:
        Image computation form — ``functional`` (renaming-free
        operators; the ZDD's per-transition classic rewrite) or
        ``relational`` (partitioned transition relations).  ``None``
        resolves per backend through :data:`DEFAULT_FORM`.
    engine:
        Relational image engine: ``monolithic``, ``partitioned`` or
        ``chained``.  ``None`` resolves to
        :data:`DEFAULT_RELATIONAL_ENGINE` for the relational form; must
        be ``None`` with the functional form.
    cluster_size:
        Partition granularity for the partitioned/chained engines — a
        positive integer or ``"auto"``.  ``None`` (default) resolves to
        :data:`DEFAULT_CLUSTER_SIZE`; setting it with the functional
        form is a :class:`SpecError`.
    strategy, chain_order, use_toggle:
        Functional-BDD traversal knobs (see
        :func:`repro.symbolic.traversal.traverse`); inapplicable
        elsewhere (structured warning when moved off the default).
    reorder, reorder_threshold:
        Dynamic variable reordering at traversal safe points.  Applies
        to the BDD backends *and*, since the managers share the
        ``repro.dd`` kernel, to the ZDD backend (pair-grouped sifting
        for the relational engines, per-element sifting for classic).
    simplify_frontier:
        Coudert-Madre frontier restriction before images (BDD only; the
        ZDD chained sweep narrows working sets by set difference
        unconditionally).
    k_bound:
        When set (``k >= 1``), analyse the net as ``k``-bounded with
        count-bit encodings (the paper's unsafe-net extension) through
        :class:`~repro.analysis.backends.KBoundedBackend`.  The engine
        keeps a fixed interleaved count-bit order; besides
        ``max_iterations``, every other option is inapplicable.
    max_iterations:
        Abort the fixpoint (``RuntimeError``) beyond this many steps.
    portfolio_members:
        Member ids the portfolio backend races (each one of
        :data:`PORTFOLIO_MEMBERS`).  ``None`` resolves to
        :data:`DEFAULT_PORTFOLIO_MEMBERS`; setting it on any other
        backend is a :class:`SpecError`.  Picking one engine is what
        the single-engine backends are for, so a one-member portfolio
        is a :class:`SpecWarning`.
    timeout, member_timeout:
        Wall-clock budgets (seconds) for the portfolio race: ``timeout``
        bounds the whole race, ``member_timeout`` each worker.  They
        require the portfolio's worker processes (an in-process
        fixpoint cannot be preempted), so setting either on another
        backend is a :class:`SpecError`; the serial degraded mode
        cannot enforce them and reports the members it let run.
    checkpoint_path, checkpoint_every, checkpoint_every_seconds:
        Durability: when ``checkpoint_path`` is set, the fixpoint state
        (reached + frontier, variable order, iteration count, spec/net
        hashes) is written atomically to that path every
        ``checkpoint_every`` iterations and/or
        ``checkpoint_every_seconds`` seconds (both unset: every
        iteration).  On the portfolio backend each member checkpoints
        to ``<checkpoint_path>.<member>`` and a crashed or timed-out
        member holding a checkpoint is restarted from it with bounded
        retries.  Cadence knobs without a path are a
        :class:`SpecError`.
    resume:
        Start from the checkpoint at ``checkpoint_path`` when one
        exists and its spec/net hashes match; otherwise (missing,
        corrupt, truncated or mismatched — any
        :class:`~repro.analysis.checkpoint.CheckpointError`) fall back
        to a cold start, recorded in ``extras["resume"]``.  Requires
        ``checkpoint_path``.
    node_budget, deadline:
        In-process resource budgets enforced at the manager's safe
        points: a live-node cap (force GC, then force a reorder pass,
        then give up — the degradation ladder) and a wall-clock
        allowance in seconds measured from session build.  Exhaustion
        raises :class:`~repro.dd.ResourceBudgetExceeded` inside the
        engine; the session converts it into a *partial*
        :class:`~repro.analysis.result.AnalysisResult`
        (``status="partial"``, telemetry in ``extras["budget"]``) and,
        when checkpointing, writes a final checkpoint first.  The
        portfolio backend rejects them (its members are whole worker
        processes — use ``timeout``/``member_timeout`` there).
    workers:
        Worker-process pool size for the ``partitioned-mp`` engine: a
        positive integer or ``"auto"`` (the CPU count, capped at the
        block count).  Requires ``engine="partitioned-mp"`` — or the
        portfolio backend, which threads it to its
        ``bdd-partitioned-mp`` member; anywhere else it is a
        :class:`SpecError` (the serial engines have no pool to size).
        Non-semantic: the pool evaluates the same partitioned step, so
        the trajectory — and the checkpoint fingerprint — is identical
        at any worker count.
    """

    scheme: str = "improved"
    backend: str = "bdd"
    form: Optional[str] = None
    engine: Optional[str] = None
    cluster_size: Optional[ClusterSize] = None
    strategy: str = "chaining"
    chain_order: str = "support"
    use_toggle: bool = True
    reorder: bool = True
    reorder_threshold: int = DEFAULT_REORDER_THRESHOLD
    simplify_frontier: bool = False
    k_bound: Optional[int] = None
    max_iterations: Optional[int] = None
    portfolio_members: Optional[Tuple[str, ...]] = None
    timeout: Optional[float] = None
    member_timeout: Optional[float] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: Optional[int] = None
    checkpoint_every_seconds: Optional[float] = None
    resume: bool = False
    node_budget: Optional[int] = None
    deadline: Optional[float] = None
    workers: Optional[Union[int, str]] = None

    def __post_init__(self) -> None:
        # JSON round trips hand lists back; normalize before validation
        # so from_dict(to_dict(spec)) == spec.
        if isinstance(self.portfolio_members, list):
            object.__setattr__(self, "portfolio_members",
                               tuple(self.portfolio_members))
        self._validate()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    @property
    def resolved_form(self) -> str:
        """The image form, with the per-backend default applied."""
        if self.backend == "portfolio":
            return "portfolio"
        if self.k_bound is not None:
            return "relational"
        return self.form if self.form is not None \
            else DEFAULT_FORM[self.backend]

    @property
    def resolved_engine(self) -> str:
        """The image engine actually run.

        ``functional`` for the functional BDD path, ``classic`` for the
        functional ZDD path, one of :data:`RELATIONAL_ENGINES` for the
        relational form, ``kbounded`` under a ``k_bound``,
        ``portfolio`` for the racing backend (members resolve their
        own engines).
        """
        if self.backend == "portfolio":
            return "portfolio"
        if self.k_bound is not None:
            return "kbounded"
        if self.resolved_form == "functional":
            return "classic" if self.backend == "zdd" else "functional"
        return self.engine if self.engine is not None \
            else DEFAULT_RELATIONAL_ENGINE

    @property
    def resolved_cluster_size(self) -> ClusterSize:
        """The clustering granularity, defaulted when unset."""
        return self.cluster_size if self.cluster_size is not None \
            else DEFAULT_CLUSTER_SIZE

    @property
    def resolved_workers(self) -> Union[int, str]:
        """The worker-pool sizing, defaulted to ``"auto"`` when unset.

        CPU-count resolution happens inside the pool
        (:func:`repro.symbolic.parallel.resolve_workers`), where the
        block count is known.
        """
        return self.workers if self.workers is not None else "auto"

    @property
    def resolved_members(self) -> Tuple[str, ...]:
        """The portfolio membership, defaulted when unset."""
        return self.portfolio_members if self.portfolio_members is not None \
            else DEFAULT_PORTFOLIO_MEMBERS

    @property
    def engine_id(self) -> str:
        """The result's engine identifier, e.g. ``relational/chained``."""
        if self.backend == "portfolio":
            return "portfolio"
        if self.k_bound is not None:
            return f"kbounded/{self.k_bound}"
        if self.backend == "zdd":
            return f"zdd/{self.resolved_engine}"
        if self.resolved_form == "functional":
            return "functional"
        return f"relational/{self.resolved_engine}"

    # ------------------------------------------------------------------
    # Validation (errors) and applicability (warnings)
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        def require(value, allowed, label):
            if value not in allowed:
                raise SpecError(f"unknown {label} {value!r}; expected one "
                                f"of {allowed}")

        require(self.scheme, SCHEMES, "scheme")
        require(self.backend, BACKEND_FAMILIES, "backend")
        if self.form is not None:
            require(self.form, FORMS, "form")
        require(self.strategy, STRATEGIES, "strategy")
        require(self.chain_order, CHAIN_ORDERS, "chain_order")
        if self.backend == "portfolio":
            if self.form is not None or self.engine is not None:
                raise SpecError(
                    "the portfolio backend races its members' engines; "
                    "to force a single engine, run that backend "
                    "directly instead of setting form/engine on a "
                    "portfolio")
            if self.cluster_size is not None:
                raise SpecError(
                    "cluster_size does not apply to the portfolio "
                    "backend; its relational members cluster "
                    "adaptively")
        if self.portfolio_members is not None:
            if self.backend != "portfolio":
                raise SpecError(
                    f"portfolio_members only applies to the portfolio "
                    f"backend, not backend={self.backend!r}")
            if not self.portfolio_members:
                raise SpecError("a portfolio needs at least one member")
            seen = set()
            for member in self.portfolio_members:
                if member not in PORTFOLIO_MEMBERS:
                    raise SpecError(
                        f"unknown portfolio member {member!r}; expected "
                        f"one of {PORTFOLIO_MEMBERS}")
                if member in seen:
                    raise SpecError(
                        f"duplicate portfolio member {member!r}")
                seen.add(member)
        for option in ("timeout", "member_timeout"):
            value = getattr(self, option)
            if value is None:
                continue
            if self.backend != "portfolio":
                raise SpecError(
                    f"{option} needs the portfolio's worker processes "
                    f"(an in-process fixpoint cannot be preempted); "
                    f"backend={self.backend!r} cannot enforce it")
            if value <= 0:
                raise SpecError(
                    f"{option} must be positive, got {value}")
        if self.engine is not None:
            require(self.engine, RELATIONAL_ENGINES, "engine")
            if self.resolved_form == "functional":
                raise SpecError(
                    f"engine={self.engine!r} is a relational image "
                    f"engine; it requires form='relational' (got "
                    f"form={self.form!r})")
        if self.workers is not None:
            if self.workers != "auto" and (
                    not isinstance(self.workers, int)
                    or isinstance(self.workers, bool)
                    or self.workers < 1):
                raise SpecError(
                    f"workers must be a positive integer or 'auto', "
                    f"got {self.workers!r}")
            if (self.backend != "portfolio"
                    and self.resolved_engine != "partitioned-mp"):
                raise SpecError(
                    f"workers sizes the partitioned-mp worker pool; "
                    f"the {self.resolved_engine!r} engine runs in "
                    f"process and has no pool to size")
        if self.cluster_size is not None:
            try:
                validate_cluster_size(self.cluster_size)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
            if self.k_bound is not None \
                    or self.resolved_form == "functional":
                raise SpecError(
                    "cluster_size only applies to the partitioned/"
                    "chained relational engines; this configuration "
                    "has no partitions to cluster")
        if self.reorder_threshold < 1:
            raise SpecError(
                f"reorder_threshold must be positive, got "
                f"{self.reorder_threshold}")
        if self.k_bound is not None:
            if self.k_bound < 1:
                raise SpecError(
                    f"k_bound must be at least one, got {self.k_bound}")
            if self.backend == "zdd":
                raise SpecError(
                    "k_bound is only supported on the BDD backend; the "
                    "sparse-ZDD representation is tied to safe nets "
                    "(one element per place)")
            if self.form is not None or self.engine is not None:
                raise SpecError(
                    "k_bound selects its own count-bit relational "
                    "engine; leave form and engine unset")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise SpecError(
                f"max_iterations must be positive, got "
                f"{self.max_iterations}")
        if self.checkpoint_path is not None and not self.checkpoint_path:
            raise SpecError("checkpoint_path must not be empty")
        for option in ("checkpoint_every", "checkpoint_every_seconds"):
            value = getattr(self, option)
            if value is None:
                continue
            if self.checkpoint_path is None:
                raise SpecError(
                    f"{option} is a checkpoint cadence; it needs "
                    f"checkpoint_path to be set")
            if value < 1 if option == "checkpoint_every" else value <= 0:
                raise SpecError(
                    f"{option} must be positive, got {value}")
        if self.resume and self.checkpoint_path is None:
            raise SpecError(
                "resume needs checkpoint_path: there is nothing to "
                "resume from")
        for option in ("node_budget", "deadline"):
            value = getattr(self, option)
            if value is None:
                continue
            if self.backend == "portfolio":
                raise SpecError(
                    f"{option} guards an in-process manager; portfolio "
                    f"members are whole worker processes — bound them "
                    f"with timeout/member_timeout instead")
            if value < 1 if option == "node_budget" else value <= 0:
                raise SpecError(
                    f"{option} must be positive, got {value}")

    def warnings(self) -> Tuple[SpecWarning, ...]:
        """Structured inapplicable-option warnings for this spec.

        Only options moved off their defaults warn; a default spec is
        silent on every backend.
        """
        collected = []

        def warn(option: str, reason: str) -> None:
            collected.append(SpecWarning(option, getattr(self, option),
                                         reason))

        functional_bdd = (self.backend == "bdd" and self.k_bound is None
                          and self.resolved_form == "functional")
        # The portfolio threads the functional knobs through to its
        # bdd-functional member, so they are only inapplicable when no
        # such member races.
        if self.backend == "portfolio":
            functional_bdd = "bdd-functional" in self.resolved_members
        if not functional_bdd:
            target = (f"k_bound={self.k_bound}" if self.k_bound is not None
                      else self.engine_id)
            if self.strategy != "chaining":
                warn("strategy", f"the {target} engine uses its own "
                                 f"sweep order")
            if self.chain_order != "support":
                warn("chain_order", f"the {target} engine uses its own "
                                    f"sweep order")
            if not self.use_toggle:
                warn("use_toggle", f"toggle firing only applies to the "
                                   f"functional BDD image, not "
                                   f"{target}")
        if self.backend == "zdd":
            if self.scheme != "improved":
                warn("scheme", "the ZDD backend encodes token sets "
                               "directly (one element per place); "
                               "encoding schemes do not apply")
            if self.simplify_frontier:
                warn("simplify_frontier", "the ZDD chained sweep "
                                          "narrows working sets with "
                                          "set difference by default; "
                                          "Coudert-Madre restriction "
                                          "is a BDD operation")
        if self.backend == "portfolio":
            members = self.resolved_members
            if len(members) == 1:
                warn("portfolio_members",
                     f"a one-member portfolio races nobody; run the "
                     f"{members[0]} configuration directly")
            has_bdd = any(m.startswith("bdd-") for m in members)
            if not has_bdd:
                if self.scheme != "improved":
                    warn("scheme", "no BDD member in the portfolio "
                                   "consumes an encoding scheme")
                if self.simplify_frontier:
                    warn("simplify_frontier",
                         "no BDD member in the portfolio applies "
                         "Coudert-Madre restriction")
            if self.k_bound is not None and "kbounded" not in members:
                warn("k_bound", "no kbounded member in the portfolio "
                                "to apply the bound to")
            if (self.workers is not None
                    and "bdd-partitioned-mp" not in members):
                warn("workers", "no bdd-partitioned-mp member in the "
                                "portfolio to size a worker pool for")
        if self.k_bound is not None and self.backend != "portfolio":
            if self.scheme != "improved":
                warn("scheme", "the k-bounded engine uses count-bit "
                               "encodings, not the safe-net schemes")
            if self.simplify_frontier:
                warn("simplify_frontier", "the k-bounded engine sweeps "
                                          "raw frontiers")
            if not self.reorder:
                warn("reorder", "the k-bounded engine keeps the fixed "
                                "interleaved count-bit order; there is "
                                "no reordering to disable")
        if (self.resolved_form == "relational"
                and self.resolved_engine == "monolithic"
                and self.cluster_size is not None):
            warn("cluster_size", "the monolithic engine folds every "
                                 "transition into one relation; there "
                                 "are no partitions to cluster")
        return tuple(collected)

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_args(cls, args) -> "AnalysisSpec":
        """Build a spec from a CLI ``argparse`` namespace.

        Recognized attributes (all optional — absent ones keep the spec
        default): ``scheme``, ``engine`` (the backend family flag),
        ``image`` (``functional`` or a relational engine name; ``None``
        resolves per backend), ``cluster_size``, ``strategy``,
        ``chain_order``, ``no_reorder``, ``simplify_frontier``,
        ``k_bound``, ``portfolio_members`` (comma-separated member
        ids), ``timeout``, ``member_timeout``, ``checkpoint`` (the
        checkpoint path), ``checkpoint_every``, ``resume``,
        ``node_budget``, ``deadline``, ``workers``.
        """
        values: Dict[str, Any] = {}
        if getattr(args, "scheme", None) is not None:
            values["scheme"] = args.scheme
        if getattr(args, "engine", None) is not None:
            values["backend"] = args.engine
        image = getattr(args, "image", None)
        if image == "functional":
            values["form"] = "functional"
        elif image is not None:
            values["form"] = "relational"
            values["engine"] = image
        if getattr(args, "cluster_size", None) is not None:
            values["cluster_size"] = args.cluster_size
        if getattr(args, "strategy", None) is not None:
            values["strategy"] = args.strategy
        if getattr(args, "chain_order", None) is not None:
            values["chain_order"] = args.chain_order
        if getattr(args, "no_reorder", False):
            values["reorder"] = False
        if getattr(args, "simplify_frontier", False):
            values["simplify_frontier"] = True
        if getattr(args, "k_bound", None) is not None:
            values["k_bound"] = args.k_bound
        members = getattr(args, "portfolio_members", None)
        if members is not None:
            values["portfolio_members"] = tuple(
                m.strip() for m in members.split(",") if m.strip())
        if getattr(args, "timeout", None) is not None:
            values["timeout"] = args.timeout
        if getattr(args, "member_timeout", None) is not None:
            values["member_timeout"] = args.member_timeout
        if getattr(args, "checkpoint", None) is not None:
            values["checkpoint_path"] = args.checkpoint
        if getattr(args, "checkpoint_every", None) is not None:
            values["checkpoint_every"] = args.checkpoint_every
        if getattr(args, "resume", False):
            values["resume"] = True
        if getattr(args, "node_budget", None) is not None:
            values["node_budget"] = args.node_budget
        if getattr(args, "deadline", None) is not None:
            values["deadline"] = args.deadline
        if getattr(args, "workers", None) is not None:
            values["workers"] = args.workers
        return cls(**values)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable field dump (round-trips via
        :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def semantic_fields(self) -> Dict[str, Any]:
        """The fields that pick the analysis trajectory.

        The :meth:`to_dict` dump minus :data:`NONSEMANTIC_FIELDS` — the
        durability, budget and pool-sizing knobs, which change how a
        run is supervised but never which states it visits.
        """
        return {key: value for key, value in self.to_dict().items()
                if key not in NONSEMANTIC_FIELDS}

    def semantic_fingerprint(self) -> str:
        """Digest of :meth:`semantic_fields` — the spec's identity.

        This is the *single* definition of "the same analysis" for
        every layer that needs one: checkpoint headers
        (:func:`repro.analysis.checkpoint.spec_fingerprint` delegates
        here), the ``repro.service`` result cache key, and its
        in-flight request dedupe.  Two specs that differ only in
        non-semantic fields (``workers``, checkpoint paths, budgets,
        ``max_iterations``) share a fingerprint by construction.
        """
        blob = json.dumps(self.semantic_fields(), sort_keys=True,
                          default=list)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  ignore_unknown: bool = False) -> "AnalysisSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        ``ignore_unknown=True`` drops (and logs) fields this build does
        not know instead of raising — the forward-compatibility mode
        :meth:`repro.analysis.result.AnalysisResult.from_dict` uses so
        a cached result written by a newer build, whose spec may carry
        new fields, does not poison an older reader.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            if not ignore_unknown:
                raise SpecError(f"unknown spec fields: {sorted(unknown)}")
            log.warning("ignoring unknown spec fields %s (written by a "
                        "newer build?)", sorted(unknown))
            data = {key: value for key, value in data.items()
                    if key in known}
        return cls(**data)

    def replace(self, **changes) -> "AnalysisSpec":
        """A copy with the given fields changed (re-validated)."""
        values = self.to_dict()
        values.update(changes)
        return type(self)(**values)


def _check_field_classification() -> None:
    """Every spec field must be classified semantic or non-semantic.

    Runs at import so an unclassified (or doubly classified) field is a
    loud failure in *every* process, not just a test run — a field that
    slipped past the split would silently fracture or merge cache and
    checkpoint identity.
    """
    declared = set(SEMANTIC_FIELDS) | set(NONSEMANTIC_FIELDS)
    actual = {f.name for f in fields(AnalysisSpec)}
    overlap = set(SEMANTIC_FIELDS) & set(NONSEMANTIC_FIELDS)
    if overlap:
        raise RuntimeError(
            f"spec fields classified both semantic and non-semantic: "
            f"{sorted(overlap)}")
    if declared != actual:
        raise RuntimeError(
            f"spec fields missing a semantic/non-semantic "
            f"classification: {sorted(actual - declared)}; "
            f"classified but not on the spec: {sorted(declared - actual)}")


_check_field_classification()
