"""Decision-diagram substrate: BDD manager, sifting reorderer, ZDDs.

Public entry points:

* :class:`BDD` — the manager (variable order, unique tables, operations).
* :class:`Function` — reference-counted handle; the API user code works with.
* :func:`sift`, :func:`sift_to_convergence` — dynamic variable reordering.
* :class:`ZDD` — zero-suppressed diagrams (the Table 4 baseline).
"""

from .function import Function, cube, false, true, variable
from .manager import BDD, BDDError, ONE, ZERO
from .reorder import sift, sift_to_convergence
from .zdd import BASE, EMPTY, ZDD, ZDDError

__all__ = [
    "BDD", "BDDError", "ZERO", "ONE",
    "Function", "true", "false", "variable", "cube",
    "sift", "sift_to_convergence",
    "ZDD", "ZDDError", "EMPTY", "BASE",
]
