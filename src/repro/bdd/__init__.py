"""Decision-diagram substrate: BDD manager, sifting reorderer, ZDDs.

Both managers are instantiations of the shared kernel
:class:`repro.dd.manager.DDManager` — one node-table / GC / reordering
core under two reduction rules.

Public entry points:

* :class:`BDD` — the boolean manager (variable order, unique tables,
  operations).
* :class:`Function` — reference-counted handle; the API user code works with.
* :func:`sift`, :func:`sift_to_convergence` — dynamic variable reordering
  (generic: the same passes reorder ZDD managers).
* :class:`ZDD` — zero-suppressed diagrams (the Table 4 baseline), with
  the same reference counting, garbage collection and reordering as the
  BDD manager.
"""

from ..dd import DDError, DDManager
from .function import Function, cube, false, true, variable
from .manager import BDD, BDDError, ONE, ZERO
from .reorder import sift, sift_to_convergence
from .zdd import BASE, EMPTY, ZDD, ZDDError

__all__ = [
    "DDManager", "DDError",
    "BDD", "BDDError", "ZERO", "ONE",
    "Function", "true", "false", "variable", "cube",
    "sift", "sift_to_convergence",
    "ZDD", "ZDDError", "EMPTY", "BASE",
]
