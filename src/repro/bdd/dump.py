"""Graphviz export of decision diagrams (for debugging and documentation).

Nodes are emitted in sorted id order and arcs in a fixed per-node
sequence, so two dumps of the same diagram are byte-identical and diff
cleanly.

Arc conventions for the complement-edge BDD:

* else (low) arc: ``style=dashed`` — never complemented (canonical form),
* then (high) arc: ``style=solid``,
* a *complemented* arc (a then arc or root arc whose edge carries the
  complement bit) is drawn ``style=dashed`` with an ``odot`` arrowhead
  and a ``~`` label — the classic dashed-complement-arc convention for
  attributed edges.

The ZDD export keeps the plain else-dashed/then-solid scheme (no
complement bits exist there).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .manager import BDD
from .zdd import BASE, EMPTY, ZDD

_COMPLEMENT_DECORATION = 'style=dashed, arrowhead=odot, label="~"'


def bdd_to_dot(bdd: BDD, roots: Iterable[Tuple[str, int]]) -> str:
    """Render the DAG spanned by named roots as a Graphviz digraph.

    ``roots`` is an iterable of ``(label, edge)`` pairs.  Complemented
    arcs are drawn dashed with an odot arrowhead and a ``~`` label;
    regular then arcs are solid, else arcs dashed (they are never
    complemented).  Output is deterministic: nodes sorted by id, roots
    in the given order.
    """
    lines: List[str] = ["digraph bdd {", "  rankdir=TB;"]
    seen = set()
    stack = []
    for label, edge in roots:
        node = edge >> 1
        lines.append(f'  "r_{label}" [shape=plaintext, label="{label}"];')
        if edge & 1:
            lines.append(
                f'  "r_{label}" -> n{node} [{_COMPLEMENT_DECORATION}];')
        else:
            lines.append(f'  "r_{label}" -> n{node};')
        stack.append(node)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if bdd._var[node] >= 0:
            stack.append(bdd._low[node] >> 1)
            stack.append(bdd._high[node] >> 1)
    for node in sorted(seen):
        if bdd._var[node] < 0:
            lines.append(f'  n{node} [shape=box, label="1"];')
            continue
        name = bdd.var_name(bdd._var[node])
        low, high = bdd._low[node], bdd._high[node]
        lines.append(f'  n{node} [shape=circle, label="{name}"];')
        lines.append(f'  n{node} -> n{low >> 1} [style=dashed];')
        if high & 1:
            lines.append(
                f'  n{node} -> n{high >> 1} [{_COMPLEMENT_DECORATION}];')
        else:
            lines.append(f'  n{node} -> n{high >> 1} [style=solid];')
    lines.append("}")
    return "\n".join(lines)


def zdd_to_dot(zdd: ZDD, roots: Iterable[Tuple[str, int]]) -> str:
    """Render a ZDD DAG as a Graphviz digraph (deterministic order)."""
    lines: List[str] = ["digraph zdd {", "  rankdir=TB;"]
    seen = set()
    stack = []
    for label, node in roots:
        lines.append(f'  "r_{label}" [shape=plaintext, label="{label}"];')
        lines.append(f'  "r_{label}" -> n{node};')
        stack.append(node)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node not in (EMPTY, BASE):
            stack.append(zdd._low[node])
            stack.append(zdd._high[node])
    for node in sorted(seen):
        if node == EMPTY:
            lines.append(f'  n{node} [shape=box, label="{{}}"];')
            continue
        if node == BASE:
            lines.append(f'  n{node} [shape=box, label="{{{{}}}}"];')
            continue
        name = zdd.var_name(zdd._var[node])
        low, high = zdd._low[node], zdd._high[node]
        lines.append(f'  n{node} [shape=circle, label="{name}"];')
        lines.append(f'  n{node} -> n{low} [style=dashed];')
        lines.append(f'  n{node} -> n{high} [style=solid];')
    lines.append("}")
    return "\n".join(lines)
