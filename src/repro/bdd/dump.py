"""Graphviz export of decision diagrams (for debugging and documentation)."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .manager import BDD, ONE, ZERO
from .zdd import BASE, EMPTY, ZDD


def bdd_to_dot(bdd: BDD, roots: Iterable[Tuple[str, int]]) -> str:
    """Render the DAG spanned by named roots as a Graphviz digraph.

    ``roots`` is an iterable of ``(label, node_id)`` pairs.
    """
    lines: List[str] = ["digraph bdd {", '  rankdir=TB;']
    seen = set()
    stack = []
    for label, node in roots:
        lines.append(f'  "r_{label}" [shape=plaintext, label="{label}"];')
        lines.append(f'  "r_{label}" -> n{node};')
        stack.append(node)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node == ZERO:
            lines.append(f'  n{node} [shape=box, label="0"];')
            continue
        if node == ONE:
            lines.append(f'  n{node} [shape=box, label="1"];')
            continue
        name = bdd.var_name(bdd._var[node])
        low, high = bdd._low[node], bdd._high[node]
        lines.append(f'  n{node} [shape=circle, label="{name}"];')
        lines.append(f'  n{node} -> n{low} [style=dashed];')
        lines.append(f'  n{node} -> n{high} [style=solid];')
        stack.append(low)
        stack.append(high)
    lines.append("}")
    return "\n".join(lines)


def zdd_to_dot(zdd: ZDD, roots: Iterable[Tuple[str, int]]) -> str:
    """Render a ZDD DAG as a Graphviz digraph."""
    lines: List[str] = ["digraph zdd {", "  rankdir=TB;"]
    seen = set()
    stack = []
    for label, node in roots:
        lines.append(f'  "r_{label}" [shape=plaintext, label="{label}"];')
        lines.append(f'  "r_{label}" -> n{node};')
        stack.append(node)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node == EMPTY:
            lines.append(f'  n{node} [shape=box, label="{{}}"];')
            continue
        if node == BASE:
            lines.append(f'  n{node} [shape=box, label="{{{{}}}}"];')
            continue
        name = zdd.var_name(zdd._var[node])
        low, high = zdd._low[node], zdd._high[node]
        lines.append(f'  n{node} [shape=circle, label="{name}"];')
        lines.append(f'  n{node} -> n{low} [style=dashed];')
        lines.append(f'  n{node} -> n{high} [style=solid];')
        stack.append(low)
        stack.append(high)
    lines.append("}")
    return "\n".join(lines)
