"""Reference-counted handle on a BDD node.

A :class:`Function` pairs a :class:`~repro.bdd.manager.BDD` manager with a
node id and keeps an external reference for as long as the handle lives, so
garbage collection and dynamic reordering never invalidate it.  All the
convenience operators build new handles.

Handles compare equal iff they denote the same function (same manager, same
canonical node), so ``f & g == g & f`` holds structurally.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

from .manager import BDD, ONE, ZERO, BDDError


def _unwrap(value) -> int:
    if isinstance(value, Function):
        return value.node
    raise TypeError(f"expected a Function, got {type(value).__name__}")


class Function:
    """A boolean function handle bound to a BDD manager."""

    __slots__ = ("bdd", "node", "__weakref__")

    def __init__(self, bdd: BDD, node: int) -> None:
        self.bdd = bdd
        self.node = node
        bdd.ref(node)

    def __del__(self) -> None:
        bdd = getattr(self, "bdd", None)
        if bdd is None:
            return
        try:
            bdd.deref(self.node)
        except Exception:
            # Interpreter shutdown may have torn down the manager already.
            pass

    # -- identity ------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (isinstance(other, Function) and other.bdd is self.bdd
                and other.node == self.node)

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.node))

    def __bool__(self) -> bool:
        raise BDDError("Function truth value is ambiguous; use is_zero(), "
                       "is_one() or compare explicitly")

    def is_zero(self) -> bool:
        """True iff this is the constant false function."""
        return self.node == ZERO

    def is_one(self) -> bool:
        """True iff this is the constant true function."""
        return self.node == ONE

    # -- boolean connectives -------------------------------------------

    def _wrap(self, node: int) -> "Function":
        return Function(self.bdd, node)

    def __and__(self, other: "Function") -> "Function":
        return self._wrap(self.bdd.apply_and(self.node, _unwrap(other)))

    def __or__(self, other: "Function") -> "Function":
        return self._wrap(self.bdd.apply_or(self.node, _unwrap(other)))

    def __xor__(self, other: "Function") -> "Function":
        return self._wrap(self.bdd.apply_xor(self.node, _unwrap(other)))

    def __invert__(self) -> "Function":
        return self._wrap(self.bdd.apply_not(self.node))

    def __sub__(self, other: "Function") -> "Function":
        """Set difference: ``self AND NOT other``."""
        return self._wrap(self.bdd.apply_diff(self.node, _unwrap(other)))

    def implies(self, other: "Function") -> "Function":
        """Logical implication ``self -> other``."""
        return (~self) | other

    def iff(self, other: "Function") -> "Function":
        """Logical equivalence ``self <-> other``."""
        return ~(self ^ other)

    def ite(self, then: "Function", orelse: "Function") -> "Function":
        """If-then-else with ``self`` as the condition."""
        return self._wrap(self.bdd.ite(self.node, _unwrap(then),
                                       _unwrap(orelse)))

    # -- quantification ------------------------------------------------

    def exists(self, variables: Iterable) -> "Function":
        """Existentially quantify ``variables`` (names, indices, literals)."""
        return self._wrap(self.bdd.exists(self.node, _var_list(variables)))

    def forall(self, variables: Iterable) -> "Function":
        """Universally quantify ``variables``."""
        return self._wrap(self.bdd.forall(self.node, _var_list(variables)))

    def and_exists(self, other: "Function", variables: Iterable) -> "Function":
        """Relational product: ``exists(variables, self & other)``."""
        return self._wrap(self.bdd.and_exists(
            self.node, _unwrap(other), _var_list(variables)))

    # -- structural operations -------------------------------------------

    def cofactor(self, assignment: Dict) -> "Function":
        """Restrict by a partial assignment ``{var: bool}``."""
        return self._wrap(self.bdd.cofactor(self.node, assignment))

    def rename(self, mapping: Dict) -> "Function":
        """Rename variables (mapping must be order-monotone on support)."""
        return self._wrap(self.bdd.rename(self.node, mapping))

    def toggle(self, variables: Iterable) -> "Function":
        """Substitute ``v -> NOT v`` for each listed variable."""
        return self._wrap(self.bdd.toggle(self.node, _var_list(variables)))

    def compose(self, var, inner: "Function") -> "Function":
        """Substitute ``inner`` for variable ``var``."""
        return self._wrap(self.bdd.compose(self.node, var, _unwrap(inner)))

    def restrict(self, care: "Function") -> "Function":
        """Coudert-Madre simplification against a care set: the result
        agrees with ``self`` on ``care`` and is usually smaller."""
        return self._wrap(self.bdd.restrict_cm(self.node, _unwrap(care)))

    # -- inspection ------------------------------------------------------

    def __call__(self, assignment: Dict) -> bool:
        """Evaluate under a total assignment ``{var: bool}``."""
        return self.bdd.eval_node(self.node, assignment)

    def support(self) -> frozenset:
        """Indices of variables this function depends on."""
        return self.bdd.support(self.node)

    def support_names(self) -> frozenset:
        """Names of variables this function depends on."""
        return frozenset(self.bdd.var_name(v) for v in self.support())

    def size(self) -> int:
        """Node count of the DAG rooted here (including terminals)."""
        return self.bdd.size(self.node)

    def satcount(self, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        return self.bdd.satcount(self.node, nvars)

    def sat_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying partial assignment keyed by variable name."""
        cube = self.bdd.sat_one(self.node)
        if cube is None:
            return None
        return {self.bdd.var_name(v): val for v, val in cube.items()}

    def iter_cubes(self) -> Iterator[Dict[str, bool]]:
        """Iterate cubes as name-keyed partial assignments."""
        for cube in self.bdd.iter_cubes(self.node):
            yield {self.bdd.var_name(v): val for v, val in cube.items()}

    def __repr__(self) -> str:
        if self.node == ZERO:
            return "<Function FALSE>"
        if self.node == ONE:
            return "<Function TRUE>"
        return (f"<Function node={self.node} vars="
                f"{sorted(self.support_names())} size={self.size()}>")


def _var_list(variables: Iterable):
    result = []
    for var in variables:
        if isinstance(var, Function):
            support = var.support()
            if len(support) != 1:
                raise BDDError("only literals may be used as variables")
            result.append(next(iter(support)))
        else:
            result.append(var)
    return result


def true(bdd: BDD) -> Function:
    """The constant-true handle."""
    return Function(bdd, ONE)


def false(bdd: BDD) -> Function:
    """The constant-false handle."""
    return Function(bdd, ZERO)


def variable(bdd: BDD, var) -> Function:
    """Positive-literal handle of a variable (by name or index)."""
    return Function(bdd, bdd.var_node(var))


def cube(bdd: BDD, assignment: Dict) -> Function:
    """Conjunction of literals from ``{var: bool}``."""
    return Function(bdd, bdd.cube(assignment))
