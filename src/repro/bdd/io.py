"""Serialization of decision-diagram functions and families.

Saves one or more functions — e.g. a computed reachability set — to a
compact, order-independent text format and reloads them into any manager
that declares (at least) the same variable names.  Nodes are written in
topological order (children first), so loading is a single linear pass of
hash-consing ``_mk`` calls; the round trip therefore re-canonicalizes
under the target manager's variable order automatically.

BDD format v2 (one record per line; written since complement edges)::

    bddio 2
    var <name> <name> ...
    node <id> <var-name> <low-id> <high-id> <high-complement>
    root <label> <id> <complement>

The single id ``1`` is the terminal; a reference is an id plus a
complement bit.  Else (low) edges carry no bit — the manager's canonical
form guarantees they are regular — while then (high) edges and roots
carry an explicit ``0``/``1``.  A complement bit outside ``{0, 1}``
(non-boolean or out of range) is rejected with a structured error, as is
a stream whose header names a version this reader does not understand,
or — when the caller pins ``require_version`` — a version the peer does
not accept.  Legacy v1 streams (``bddio 1``; ids ``0``/``1`` are
``ZERO``/``ONE``, no complement fields) still load: reconstruction goes
through ITE on the literal, which is representation-agnostic.

ZDD format (:func:`dump_zdd_nodes` / :func:`load_zdd_nodes`) — plain
node ids, no complement bits (the ZDD keeps plain edges)::

    zddio 1
    elem <name> <name> ...
    node <id> <elem-name> <low-id> <high-id>
    root <label> <id>

Both loaders reject malformed records with a structured error
(:class:`~repro.bdd.manager.BDDError` / :class:`~repro.bdd.zdd.ZDDError`)
naming the offending line — never a bare ``ValueError``/``KeyError``
mid-parse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from .function import Function
from .manager import BDD, BDDError, ONE, ZERO
from .zdd import BASE, EMPTY, ZDD, ZDDError

_HEADER_V1 = "bddio 1"
_HEADER_V2 = "bddio 2"
_ZDD_HEADER = "zddio 1"


def _int_field(value: str, line: str, error_class) -> int:
    """Parse one integer field, or fail with the record in the message."""
    try:
        return int(value)
    except ValueError:
        raise error_class(
            f"malformed integer field {value!r} in record {line!r}"
        ) from None


def _bit_field(value: str, line: str) -> int:
    """Parse a complement bit, which must be exactly ``0`` or ``1``."""
    try:
        bit = int(value)
    except ValueError:
        raise BDDError(
            f"non-boolean complement bit {value!r} in record {line!r}"
        ) from None
    if bit not in (0, 1):
        raise BDDError(
            f"out-of-range complement bit {bit} in record {line!r} "
            f"(must be 0 or 1)")
    return bit


def dump_functions(functions: Dict[str, Function]) -> str:
    """Serialize labeled functions sharing one manager to the v2 text
    format (edges carry an explicit complement bit)."""
    if not functions:
        raise BDDError("nothing to dump")
    managers = {func.bdd for func in functions.values()}
    if len(managers) != 1:
        raise BDDError("all functions must share one manager")
    bdd = managers.pop()

    lines = [_HEADER_V2,
             "var " + " ".join(bdd.order())]
    # node id -> file id; the single terminal node is file id 1.
    written: Dict[int, int] = {ONE >> 1: 1}
    counter = 2

    def emit(edge: int) -> int:
        """Emit the node behind ``edge`` (children first); returns its
        file id.  The caller handles the edge's complement bit."""
        nonlocal counter
        node = edge >> 1
        known = written.get(node)
        if known is not None:
            return known
        low_edge = bdd._low[node]
        if low_edge & 1:
            raise BDDError(
                f"manager violates canonical form: node {node} stores "
                f"a complemented else edge (corrupt manager state?)")
        low = emit(low_edge)
        high_edge = bdd._high[node]
        high = emit(high_edge)
        written[node] = counter
        lines.append(f"node {counter} {bdd.var_name(bdd._var[node])} "
                     f"{low} {high} {high_edge & 1}")
        counter += 1
        return written[node]

    for label, func in functions.items():
        if any(ch.isspace() for ch in label):
            raise BDDError(f"root label must not contain spaces: {label!r}")
        root = emit(func.node)
        lines.append(f"root {label} {root} {func.node & 1}")
    return "\n".join(lines) + "\n"


def load_functions(text: str, bdd: BDD,
                   require_version: Optional[int] = None
                   ) -> Dict[str, Function]:
    """Parse the text format into functions on the given manager.

    Every variable named in the file must already be declared on ``bdd``
    (its order may differ — functions are rebuilt canonically).  Both
    the current v2 format and legacy v1 dumps are accepted; a peer that
    only speaks one version pins it with ``require_version``, turning a
    mixed-version exchange into a structured :class:`BDDError` instead
    of a misparse.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise BDDError(
            "empty bddio stream: expected a 'bddio <version>' header "
            "(truncated or blank dump?)")
    version = _parse_bdd_header(lines[0], require_version)
    if version == 1:
        return _load_functions_v1(lines, bdd)
    return _load_functions_v2(lines, bdd)


def _parse_bdd_header(header: str,
                      require_version: Optional[int]) -> int:
    fields = header.split()
    if len(fields) != 2 or fields[0] != "bddio":
        raise BDDError(f"not a bddio stream (header {header!r})")
    version = _int_field(fields[1], header, BDDError)
    if version not in (1, 2):
        raise BDDError(
            f"unsupported bddio version {version}: this reader "
            f"understands v1 and v2 (newer-peer dump?)")
    if require_version is not None and version != require_version:
        raise BDDError(
            f"bddio version mismatch: stream is v{version} but this "
            f"peer only accepts v{require_version}")
    return version


def _load_functions_v1(lines: List[str], bdd: BDD) -> Dict[str, Function]:
    """Legacy format: plain node ids, terminals 0 (ZERO) / 1 (ONE)."""
    node_map: Dict[int, int] = {0: ZERO, 1: ONE}
    roots: Dict[str, Function] = {}
    declared: List[str] = []
    for line in lines[1:]:
        fields = line.split()
        kind = fields[0]
        if kind == "var":
            declared = fields[1:]
            for name in declared:
                bdd.var_index(name)  # raises if missing
        elif kind == "node":
            if len(fields) != 5:
                raise BDDError(f"malformed node line: {line!r}")
            file_id = _int_field(fields[1], line, BDDError)
            var_name = fields[2]
            low = _int_field(fields[3], line, BDDError)
            high = _int_field(fields[4], line, BDDError)
            try:
                children = (node_map[low], node_map[high])
            except KeyError as exc:
                raise BDDError(f"forward reference in {line!r}") from exc
            node_map[file_id] = _mk_ordered(bdd, var_name, *children)
        elif kind == "root":
            if len(fields) != 3:
                raise BDDError(f"malformed root line: {line!r}")
            label, file_id = fields[1], _int_field(fields[2], line,
                                                  BDDError)
            if file_id not in node_map:
                raise BDDError(f"unknown root id in {line!r}")
            roots[label] = Function(bdd, node_map[file_id])
        else:
            raise BDDError(f"unknown record {kind!r}")
    if not roots:
        raise BDDError("stream contains no roots")
    return roots


def _load_functions_v2(lines: List[str], bdd: BDD) -> Dict[str, Function]:
    """Current format: one terminal (file id 1), explicit complement
    bits on then edges and roots; else edges are regular by canonical
    form."""
    node_map: Dict[int, int] = {1: ONE}
    roots: Dict[str, Function] = {}
    declared: List[str] = []
    for line in lines[1:]:
        fields = line.split()
        kind = fields[0]
        if kind == "var":
            declared = fields[1:]
            for name in declared:
                bdd.var_index(name)  # raises if missing
        elif kind == "node":
            if len(fields) != 6:
                raise BDDError(f"malformed node line: {line!r}")
            file_id = _int_field(fields[1], line, BDDError)
            var_name = fields[2]
            low = _int_field(fields[3], line, BDDError)
            high = _int_field(fields[4], line, BDDError)
            high_c = _bit_field(fields[5], line)
            try:
                low_edge = node_map[low]
                high_edge = node_map[high]
            except KeyError as exc:
                raise BDDError(f"forward reference in {line!r}") from exc
            if high_c:
                high_edge = bdd.apply_not(high_edge)
            node_map[file_id] = _mk_ordered(bdd, var_name, low_edge,
                                            high_edge)
        elif kind == "root":
            if len(fields) != 4:
                raise BDDError(f"malformed root line: {line!r}")
            label = fields[1]
            file_id = _int_field(fields[2], line, BDDError)
            root_c = _bit_field(fields[3], line)
            if file_id not in node_map:
                raise BDDError(f"unknown root id in {line!r}")
            edge = node_map[file_id]
            if root_c:
                edge = bdd.apply_not(edge)
            roots[label] = Function(bdd, edge)
        else:
            raise BDDError(f"unknown record {kind!r}")
    if not roots:
        raise BDDError("stream contains no roots")
    return roots


def _mk_ordered(bdd: BDD, var_name: str, low: int, high: int) -> int:
    """Rebuild a node under the target order via ITE on the literal.

    When the target order matches the source order this degenerates to a
    plain ``_mk``; otherwise ITE re-normalizes the structure.
    """
    var = bdd.var_index(var_name)
    literal = bdd.var_node(var)
    return bdd.ite(literal, high, low)


def save_functions(functions: Dict[str, Function],
                   path: Union[str, Path]) -> None:
    """Write labeled functions to a file."""
    Path(path).write_text(dump_functions(functions))


def load_functions_file(path: Union[str, Path],
                        bdd: BDD) -> Dict[str, Function]:
    """Read labeled functions from a file."""
    return load_functions(Path(path).read_text(), bdd)


# ----------------------------------------------------------------------
# ZDD families
# ----------------------------------------------------------------------

def dump_zdd_nodes(zdd: ZDD, roots: Dict[str, int]) -> str:
    """Serialize labeled ZDD families (raw node ids) to the text format.

    The mirror of :func:`dump_functions` for set families: nodes are
    emitted children-first under the manager's current element order, so
    :func:`load_zdd_nodes` is a single linear rebuild pass.
    """
    if not roots:
        raise ZDDError("nothing to dump")
    lines = [_ZDD_HEADER,
             "elem " + " ".join(zdd.order())]
    written: Dict[int, int] = {EMPTY: 0, BASE: 1}
    counter = 2

    def emit(node: int) -> int:
        nonlocal counter
        known = written.get(node)
        if known is not None:
            return known
        low = emit(zdd._low[node])
        high = emit(zdd._high[node])
        written[node] = counter
        lines.append(f"node {counter} {zdd.var_name(zdd._var[node])} "
                     f"{low} {high}")
        counter += 1
        return written[node]

    for label, node in roots.items():
        if any(ch.isspace() for ch in label):
            raise ZDDError(f"root label must not contain spaces: {label!r}")
        lines.append(f"root {label} {emit(node)}")
    return "\n".join(lines) + "\n"


def load_zdd_nodes(text: str, zdd: ZDD) -> Dict[str, int]:
    """Parse the ZDD text format into raw node ids on the manager.

    Every element named in the file must already be declared on ``zdd``.
    Its order may differ from the dumping manager's: a node whose
    element sits below one of its children under the target order cannot
    be hash-consed directly, so it is rebuilt semantically as
    ``low ∪ ({{elem}} ⊔ high)`` — the family a ZDD node denotes —
    through the level-aware ``union``/``product`` operations (the same
    fallback the order-monotone ``rename`` uses).

    The returned node ids are unreferenced; callers that keep them past
    the next safe point must :meth:`~repro.dd.manager.DDManager.ref`
    them.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ZDDError(
            "empty zddio stream: expected a 'zddio 1' header "
            "(truncated or blank dump?)")
    if lines[0] != _ZDD_HEADER:
        raise ZDDError("not a zddio v1 stream")
    node_map: Dict[int, int] = {0: EMPTY, 1: BASE}
    roots: Dict[str, int] = {}
    for line in lines[1:]:
        fields = line.split()
        kind = fields[0]
        if kind == "elem":
            for name in fields[1:]:
                zdd.var_index(name)  # raises if missing
        elif kind == "node":
            if len(fields) != 5:
                raise ZDDError(f"malformed node line: {line!r}")
            file_id = _int_field(fields[1], line, ZDDError)
            elem_name = fields[2]
            low = _int_field(fields[3], line, ZDDError)
            high = _int_field(fields[4], line, ZDDError)
            try:
                children = (node_map[low], node_map[high])
            except KeyError as exc:
                raise ZDDError(f"forward reference in {line!r}") from exc
            node_map[file_id] = _mk_zdd_ordered(zdd, elem_name, *children)
        elif kind == "root":
            if len(fields) != 3:
                raise ZDDError(f"malformed root line: {line!r}")
            label, file_id = fields[1], _int_field(fields[2], line,
                                                  ZDDError)
            if file_id not in node_map:
                raise ZDDError(f"unknown root id in {line!r}")
            roots[label] = node_map[file_id]
        else:
            raise ZDDError(f"unknown record {kind!r}")
    if not roots:
        raise ZDDError("stream contains no roots")
    return roots


def _mk_zdd_ordered(zdd: ZDD, elem_name: str, low: int, high: int) -> int:
    """Rebuild one ZDD node under the target element order.

    Fast path: when the element still sits above both children, plain
    hash-consing ``_mk`` reproduces the node.  Order-crossing case: the
    denoted family ``family(low) ∪ {s ∪ {elem} : s ∈ family(high)}`` is
    rebuilt through ``union``/``product``, which compare levels.
    """
    var = zdd.var_index(elem_name)
    vlevel = zdd._var2level[var]
    if vlevel < zdd._level(low) and vlevel < zdd._level(high):
        return zdd._mk(var, low, high)
    return zdd.union(low, zdd.product(zdd._mk(var, EMPTY, BASE), high))
