"""Serialization of BDD functions.

Saves one or more functions — e.g. a computed reachability set — to a
compact, order-independent text format and reloads them into any manager
that declares (at least) the same variable names.  Nodes are written in
topological order (children first), so loading is a single linear pass of
hash-consing ``_mk`` calls; the round trip therefore re-canonicalizes
under the target manager's variable order automatically.

Format (one record per line)::

    bddio 1
    var <name> <name> ...
    node <id> <var-name> <low-id> <high-id>
    root <label> <id>

The ids ``0``/``1`` are the constants; other ids are file-local.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from .function import Function
from .manager import BDD, BDDError, ONE, ZERO

_HEADER = "bddio 1"


def dump_functions(functions: Dict[str, Function]) -> str:
    """Serialize labeled functions sharing one manager to the text
    format."""
    if not functions:
        raise BDDError("nothing to dump")
    managers = {func.bdd for func in functions.values()}
    if len(managers) != 1:
        raise BDDError("all functions must share one manager")
    bdd = managers.pop()

    lines = [_HEADER,
             "var " + " ".join(bdd.order())]
    written: Dict[int, int] = {ZERO: 0, ONE: 1}
    counter = 2

    def emit(node: int) -> int:
        nonlocal counter
        known = written.get(node)
        if known is not None:
            return known
        low = emit(bdd._low[node])
        high = emit(bdd._high[node])
        written[node] = counter
        lines.append(f"node {counter} {bdd.var_name(bdd._var[node])} "
                     f"{low} {high}")
        counter += 1
        return written[node]

    for label, func in functions.items():
        if any(ch.isspace() for ch in label):
            raise BDDError(f"root label must not contain spaces: {label!r}")
        root = emit(func.node)
        lines.append(f"root {label} {root}")
    return "\n".join(lines) + "\n"


def load_functions(text: str, bdd: BDD) -> Dict[str, Function]:
    """Parse the text format into functions on the given manager.

    Every variable named in the file must already be declared on ``bdd``
    (its order may differ — functions are rebuilt canonically).
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != _HEADER:
        raise BDDError("not a bddio v1 stream")
    node_map: Dict[int, int] = {0: ZERO, 1: ONE}
    roots: Dict[str, Function] = {}
    declared: List[str] = []
    for line in lines[1:]:
        fields = line.split()
        kind = fields[0]
        if kind == "var":
            declared = fields[1:]
            for name in declared:
                bdd.var_index(name)  # raises if missing
        elif kind == "node":
            if len(fields) != 5:
                raise BDDError(f"malformed node line: {line!r}")
            file_id, var_name = int(fields[1]), fields[2]
            low, high = int(fields[3]), int(fields[4])
            try:
                children = (node_map[low], node_map[high])
            except KeyError as exc:
                raise BDDError(f"forward reference in {line!r}") from exc
            node_map[file_id] = _mk_ordered(bdd, var_name, *children)
        elif kind == "root":
            if len(fields) != 3:
                raise BDDError(f"malformed root line: {line!r}")
            label, file_id = fields[1], int(fields[2])
            if file_id not in node_map:
                raise BDDError(f"unknown root id in {line!r}")
            roots[label] = Function(bdd, node_map[file_id])
        else:
            raise BDDError(f"unknown record {kind!r}")
    if not roots:
        raise BDDError("stream contains no roots")
    return roots


def _mk_ordered(bdd: BDD, var_name: str, low: int, high: int) -> int:
    """Rebuild a node under the target order via ITE on the literal.

    When the target order matches the source order this degenerates to a
    plain ``_mk``; otherwise ITE re-normalizes the structure.
    """
    var = bdd.var_index(var_name)
    literal = bdd.var_node(var)
    return bdd.ite(literal, high, low)


def save_functions(functions: Dict[str, Function],
                   path: Union[str, Path]) -> None:
    """Write labeled functions to a file."""
    Path(path).write_text(dump_functions(functions))


def load_functions_file(path: Union[str, Path],
                        bdd: BDD) -> Dict[str, Function]:
    """Read labeled functions from a file."""
    return load_functions(Path(path).read_text(), bdd)
