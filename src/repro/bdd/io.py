"""Serialization of decision-diagram functions and families.

Saves one or more functions — e.g. a computed reachability set — to a
compact, order-independent text format and reloads them into any manager
that declares (at least) the same variable names.  Nodes are written in
topological order (children first), so loading is a single linear pass of
hash-consing ``_mk`` calls; the round trip therefore re-canonicalizes
under the target manager's variable order automatically.

BDD format (one record per line)::

    bddio 1
    var <name> <name> ...
    node <id> <var-name> <low-id> <high-id>
    root <label> <id>

ZDD format (:func:`dump_zdd_nodes` / :func:`load_zdd_nodes`)::

    zddio 1
    elem <name> <name> ...
    node <id> <elem-name> <low-id> <high-id>
    root <label> <id>

The ids ``0``/``1`` are the terminals (``ZERO``/``ONE`` for BDDs,
``EMPTY``/``BASE`` for ZDDs); other ids are file-local.  Both loaders
reject malformed records with a structured error
(:class:`~repro.bdd.manager.BDDError` / :class:`~repro.bdd.zdd.ZDDError`)
naming the offending line — never a bare ``ValueError`` mid-parse.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from .function import Function
from .manager import BDD, BDDError, ONE, ZERO
from .zdd import BASE, EMPTY, ZDD, ZDDError

_HEADER = "bddio 1"
_ZDD_HEADER = "zddio 1"


def _int_field(value: str, line: str, error_class) -> int:
    """Parse one integer field, or fail with the record in the message."""
    try:
        return int(value)
    except ValueError:
        raise error_class(
            f"malformed integer field {value!r} in record {line!r}"
        ) from None


def dump_functions(functions: Dict[str, Function]) -> str:
    """Serialize labeled functions sharing one manager to the text
    format."""
    if not functions:
        raise BDDError("nothing to dump")
    managers = {func.bdd for func in functions.values()}
    if len(managers) != 1:
        raise BDDError("all functions must share one manager")
    bdd = managers.pop()

    lines = [_HEADER,
             "var " + " ".join(bdd.order())]
    written: Dict[int, int] = {ZERO: 0, ONE: 1}
    counter = 2

    def emit(node: int) -> int:
        nonlocal counter
        known = written.get(node)
        if known is not None:
            return known
        low = emit(bdd._low[node])
        high = emit(bdd._high[node])
        written[node] = counter
        lines.append(f"node {counter} {bdd.var_name(bdd._var[node])} "
                     f"{low} {high}")
        counter += 1
        return written[node]

    for label, func in functions.items():
        if any(ch.isspace() for ch in label):
            raise BDDError(f"root label must not contain spaces: {label!r}")
        root = emit(func.node)
        lines.append(f"root {label} {root}")
    return "\n".join(lines) + "\n"


def load_functions(text: str, bdd: BDD) -> Dict[str, Function]:
    """Parse the text format into functions on the given manager.

    Every variable named in the file must already be declared on ``bdd``
    (its order may differ — functions are rebuilt canonically).
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise BDDError(
            "empty bddio stream: expected a 'bddio 1' header "
            "(truncated or blank dump?)")
    if lines[0] != _HEADER:
        raise BDDError("not a bddio v1 stream")
    node_map: Dict[int, int] = {0: ZERO, 1: ONE}
    roots: Dict[str, Function] = {}
    declared: List[str] = []
    for line in lines[1:]:
        fields = line.split()
        kind = fields[0]
        if kind == "var":
            declared = fields[1:]
            for name in declared:
                bdd.var_index(name)  # raises if missing
        elif kind == "node":
            if len(fields) != 5:
                raise BDDError(f"malformed node line: {line!r}")
            file_id = _int_field(fields[1], line, BDDError)
            var_name = fields[2]
            low = _int_field(fields[3], line, BDDError)
            high = _int_field(fields[4], line, BDDError)
            try:
                children = (node_map[low], node_map[high])
            except KeyError as exc:
                raise BDDError(f"forward reference in {line!r}") from exc
            node_map[file_id] = _mk_ordered(bdd, var_name, *children)
        elif kind == "root":
            if len(fields) != 3:
                raise BDDError(f"malformed root line: {line!r}")
            label, file_id = fields[1], _int_field(fields[2], line,
                                                  BDDError)
            if file_id not in node_map:
                raise BDDError(f"unknown root id in {line!r}")
            roots[label] = Function(bdd, node_map[file_id])
        else:
            raise BDDError(f"unknown record {kind!r}")
    if not roots:
        raise BDDError("stream contains no roots")
    return roots


def _mk_ordered(bdd: BDD, var_name: str, low: int, high: int) -> int:
    """Rebuild a node under the target order via ITE on the literal.

    When the target order matches the source order this degenerates to a
    plain ``_mk``; otherwise ITE re-normalizes the structure.
    """
    var = bdd.var_index(var_name)
    literal = bdd.var_node(var)
    return bdd.ite(literal, high, low)


def save_functions(functions: Dict[str, Function],
                   path: Union[str, Path]) -> None:
    """Write labeled functions to a file."""
    Path(path).write_text(dump_functions(functions))


def load_functions_file(path: Union[str, Path],
                        bdd: BDD) -> Dict[str, Function]:
    """Read labeled functions from a file."""
    return load_functions(Path(path).read_text(), bdd)


# ----------------------------------------------------------------------
# ZDD families
# ----------------------------------------------------------------------

def dump_zdd_nodes(zdd: ZDD, roots: Dict[str, int]) -> str:
    """Serialize labeled ZDD families (raw node ids) to the text format.

    The mirror of :func:`dump_functions` for set families: nodes are
    emitted children-first under the manager's current element order, so
    :func:`load_zdd_nodes` is a single linear rebuild pass.
    """
    if not roots:
        raise ZDDError("nothing to dump")
    lines = [_ZDD_HEADER,
             "elem " + " ".join(zdd.order())]
    written: Dict[int, int] = {EMPTY: 0, BASE: 1}
    counter = 2

    def emit(node: int) -> int:
        nonlocal counter
        known = written.get(node)
        if known is not None:
            return known
        low = emit(zdd._low[node])
        high = emit(zdd._high[node])
        written[node] = counter
        lines.append(f"node {counter} {zdd.var_name(zdd._var[node])} "
                     f"{low} {high}")
        counter += 1
        return written[node]

    for label, node in roots.items():
        if any(ch.isspace() for ch in label):
            raise ZDDError(f"root label must not contain spaces: {label!r}")
        lines.append(f"root {label} {emit(node)}")
    return "\n".join(lines) + "\n"


def load_zdd_nodes(text: str, zdd: ZDD) -> Dict[str, int]:
    """Parse the ZDD text format into raw node ids on the manager.

    Every element named in the file must already be declared on ``zdd``.
    Its order may differ from the dumping manager's: a node whose
    element sits below one of its children under the target order cannot
    be hash-consed directly, so it is rebuilt semantically as
    ``low ∪ ({{elem}} ⊔ high)`` — the family a ZDD node denotes —
    through the level-aware ``union``/``product`` operations (the same
    fallback the order-monotone ``rename`` uses).

    The returned node ids are unreferenced; callers that keep them past
    the next safe point must :meth:`~repro.dd.manager.DDManager.ref`
    them.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ZDDError(
            "empty zddio stream: expected a 'zddio 1' header "
            "(truncated or blank dump?)")
    if lines[0] != _ZDD_HEADER:
        raise ZDDError("not a zddio v1 stream")
    node_map: Dict[int, int] = {0: EMPTY, 1: BASE}
    roots: Dict[str, int] = {}
    for line in lines[1:]:
        fields = line.split()
        kind = fields[0]
        if kind == "elem":
            for name in fields[1:]:
                zdd.var_index(name)  # raises if missing
        elif kind == "node":
            if len(fields) != 5:
                raise ZDDError(f"malformed node line: {line!r}")
            file_id = _int_field(fields[1], line, ZDDError)
            elem_name = fields[2]
            low = _int_field(fields[3], line, ZDDError)
            high = _int_field(fields[4], line, ZDDError)
            try:
                children = (node_map[low], node_map[high])
            except KeyError as exc:
                raise ZDDError(f"forward reference in {line!r}") from exc
            node_map[file_id] = _mk_zdd_ordered(zdd, elem_name, *children)
        elif kind == "root":
            if len(fields) != 3:
                raise ZDDError(f"malformed root line: {line!r}")
            label, file_id = fields[1], _int_field(fields[2], line,
                                                  ZDDError)
            if file_id not in node_map:
                raise ZDDError(f"unknown root id in {line!r}")
            roots[label] = node_map[file_id]
        else:
            raise ZDDError(f"unknown record {kind!r}")
    if not roots:
        raise ZDDError("stream contains no roots")
    return roots


def _mk_zdd_ordered(zdd: ZDD, elem_name: str, low: int, high: int) -> int:
    """Rebuild one ZDD node under the target element order.

    Fast path: when the element still sits above both children, plain
    hash-consing ``_mk`` reproduces the node.  Order-crossing case: the
    denoted family ``family(low) ∪ {s ∪ {elem} : s ∈ family(high)}`` is
    rebuilt through ``union``/``product``, which compare levels.
    """
    var = zdd.var_index(elem_name)
    vlevel = zdd._var2level[var]
    if vlevel < zdd._level(low) and vlevel < zdd._level(high):
        return zdd._mk(var, low, high)
    return zdd.union(low, zdd.product(zdd._mk(var, EMPTY, BASE), high))
