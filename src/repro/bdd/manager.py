"""Binary Decision Diagram manager.

This module implements a self-contained BDD package in the style of the
classic libraries the paper relies on (Brace/Rudell/Bryant; David Long's
package):

* reduced ordered BDDs without complement edges,
* hash-consing through per-variable unique tables,
* a computed-table (operation cache),
* exact internal reference counting with cascading frees,
* garbage collection and dynamic variable reordering at safe points.

Nodes are records stored in parallel arrays and addressed by integer ids.
Terminal nodes are ``ZERO = 0`` and ``ONE = 1``.  A node's fields may be
mutated in place by variable reordering, but the function represented by a
node id never changes; external code can therefore hold ids across
reordering (see :class:`repro.bdd.function.Function`).

The manager API is deliberately low level (integer node ids, explicit
reference counting).  User code should go through
:class:`repro.bdd.function.Function` obtained from :meth:`BDD.var`,
:attr:`BDD.true` and :attr:`BDD.false`.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import (Callable, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Sequence, Tuple)

ZERO = 0
ONE = 1

# Recursions descend one level per call; deep orders need deep stacks.
_MIN_RECURSION_LIMIT = 100_000
if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
    sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


class BDDError(Exception):
    """Raised for invalid BDD manager operations."""


class BDD:
    """A BDD manager: variable order, unique tables and operations.

    Parameters
    ----------
    var_names:
        Optional initial list of variable names; the initial variable order
        is the list order.
    auto_reorder:
        If true, sifting is triggered automatically when the number of live
        nodes crosses a growing threshold (checked only at safe points,
        i.e. at entry of public operations).
    """

    _TERMINAL_VAR = -1

    def __init__(self, var_names: Optional[Iterable[str]] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._var: List[int] = [self._TERMINAL_VAR, self._TERMINAL_VAR]
        self._low: List[int] = [ZERO, ONE]
        self._high: List[int] = [ZERO, ONE]
        self._ref: List[int] = [1, 1]
        self._free: List[int] = []

        # unique[var] maps (low, high) -> node id
        self._unique: List[Dict[Tuple[int, int], int]] = []
        self._var2level: List[int] = []
        self._level2var: List[int] = []
        self._names: List[str] = []
        self._name2var: Dict[str, int] = {}

        self._cache: Dict[tuple, int] = {}
        # The relational product is the traversal hot path; it gets its own
        # operation cache so general-purpose operations never evict its
        # entries mid-image (and vice versa).
        self._ae_cache: Dict[tuple, int] = {}
        self._interned_sets: Dict[FrozenSet[int], FrozenSet[int]] = {}

        # Relational-product instrumentation (read by benchmarks).
        self.ae_calls = 0
        self.ae_recursions = 0
        self.ae_cache_hits = 0

        self.auto_reorder = auto_reorder
        self.reorder_threshold = reorder_threshold
        self.reorder_count = 0
        self.gc_count = 0
        self.peak_live_nodes = 0
        # Callbacks invoked whenever the variable order changes — after
        # an explicit :meth:`swap_levels` or :meth:`set_order` and after
        # each sifting pass (batched: one notification per pass, not one
        # per internal swap).  Subscribers refresh any order-derived
        # metadata they cache (see RelationalNet.refresh_partitions).
        self.reorder_hooks: List[Callable[["BDD"], None]] = []
        self._reorder_notify_depth = 0
        self._reorder_pending = False
        # Variable groups that must stay adjacent during sifting (e.g.
        # interleaved current/next pairs of a transition relation, which
        # keep rename mappings order-monotone).  ``None`` sifts
        # variables individually.
        self.sift_groups: Optional[Sequence[Tuple[int, ...]]] = None

        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variables and order
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var2level)

    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable index (stable across reordering).
        """
        var = len(self._var2level)
        if name is None:
            name = f"x{var}"
        if name in self._name2var:
            raise BDDError(f"duplicate variable name: {name!r}")
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._unique.append({})
        self._names.append(name)
        self._name2var[name] = var
        return var

    def add_vars(self, names: Iterable[str]) -> List[int]:
        """Declare several variables; returns their indices."""
        return [self.add_var(name) for name in names]

    def var_index(self, var) -> int:
        """Normalize a variable reference (index or name) to an index."""
        if isinstance(var, str):
            try:
                return self._name2var[var]
            except KeyError:
                raise BDDError(f"unknown variable name: {var!r}") from None
        index = int(var)
        if not 0 <= index < self.num_vars:
            raise BDDError(f"variable index out of range: {index}")
        return index

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._names[self.var_index(var)]

    def level_of_var(self, var) -> int:
        """Current level (0 = top) of a variable."""
        return self._var2level[self.var_index(var)]

    def var_at_level(self, level: int) -> int:
        """Variable currently placed at ``level``."""
        return self._level2var[level]

    def order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._names[v] for v in self._level2var]

    def _level(self, u: int) -> int:
        """Level of node ``u`` (terminals sit below every variable)."""
        var = self._var[u]
        if var < 0:
            return len(self._var2level)
        return self._var2level[var]

    # ------------------------------------------------------------------
    # Node construction and reference counting
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduced, hashed)."""
        if low == high:
            return low
        table = self._unique[var]
        key = (low, high)
        node = table.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
            self._ref[node] = 0
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._ref.append(0)
        table[key] = node
        self._ref[low] += 1
        self._ref[high] += 1
        return node

    def ref(self, u: int) -> int:
        """Take an external reference on ``u``; returns ``u``."""
        self._ref[u] += 1
        return u

    def deref(self, u: int) -> None:
        """Release an external reference on ``u`` (no immediate free)."""
        if self._ref[u] <= 0:
            raise BDDError(f"reference underflow on node {u}")
        self._ref[u] -= 1

    def _deref_cascade(self, u: int) -> None:
        """Drop a reference and eagerly free the node if it died."""
        self._ref[u] -= 1
        if self._ref[u] == 0 and u > ONE:
            self._free_node(u)

    def _free_node(self, u: int) -> None:
        var, low, high = self._var[u], self._low[u], self._high[u]
        del self._unique[var][(low, high)]
        self._var[u] = self._TERMINAL_VAR
        self._low[u] = -1
        self._high[u] = -1
        self._free.append(u)
        self._deref_cascade(low)
        self._deref_cascade(high)

    def live_nodes(self) -> int:
        """Number of nodes currently stored in the unique tables (plus 2)."""
        return 2 + sum(len(table) for table in self._unique)

    def clear_caches(self) -> None:
        """Drop every memoized operation result (safe points only).

        Benchmarks call this between timed measurements so one image
        computation cannot warm the caches for the next.
        """
        self._cache.clear()
        self._ae_cache.clear()

    def collect_garbage(self) -> int:
        """Free every node not reachable from a referenced node.

        Must only be called at a safe point (never while an operation is in
        progress).  Clears the operation caches.  Returns the number of nodes
        freed.
        """
        self.clear_caches()
        before = len(self._free)
        # Cascading frees make this a single scan: any node whose references
        # all come from dead ancestors is freed when the last ancestor is.
        dead = [u for u in range(2, len(self._var))
                if self._ref[u] == 0 and self._var[u] >= 0]
        for u in dead:
            if self._ref[u] == 0 and self._var[u] >= 0:
                self._free_node(u)
        self.gc_count += 1
        return len(self._free) - before

    def checkpoint(self) -> None:
        """Safe point hook: garbage collect and maybe reorder."""
        live = self.live_nodes()
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live
        if self.auto_reorder and live > self.reorder_threshold:
            self.collect_garbage()
            from .reorder import sift
            sift(self, groups=self.sift_groups)
            self.reorder_threshold = max(self.reorder_threshold,
                                         2 * self.live_nodes())
            self.reorder_count += 1

    # ------------------------------------------------------------------
    # Reorder notification
    # ------------------------------------------------------------------

    def add_reorder_hook(self, hook: Callable[["BDD"], None]) -> None:
        """Register ``hook(bdd)`` to run after every order change."""
        self.reorder_hooks.append(hook)

    def remove_reorder_hook(self, hook: Callable[["BDD"], None]) -> None:
        """Unregister a previously added reorder hook."""
        self.reorder_hooks.remove(hook)

    @contextmanager
    def deferred_reorder_notifications(self):
        """Batch reorder notifications over a block of swaps.

        Sifting performs thousands of :meth:`swap_levels`; firing the
        hooks per swap would be quadratic.  Inside this context the
        notification is only recorded; on exit the hooks fire once if
        any swap happened.
        """
        self._reorder_notify_depth += 1
        try:
            yield self
        finally:
            self._reorder_notify_depth -= 1
            if self._reorder_notify_depth == 0 and self._reorder_pending:
                self._fire_reorder_hooks()

    def _notify_reorder(self) -> None:
        self._reorder_pending = True
        if self._reorder_notify_depth == 0:
            self._fire_reorder_hooks()

    def _fire_reorder_hooks(self) -> None:
        self._reorder_pending = False
        for hook in self.reorder_hooks:
            hook(self)

    # ------------------------------------------------------------------
    # Constants and literals
    # ------------------------------------------------------------------

    def var_node(self, var) -> int:
        """Node id of the positive literal of ``var``."""
        return self._mk(self.var_index(var), ZERO, ONE)

    def nvar_node(self, var) -> int:
        """Node id of the negative literal of ``var``."""
        return self._mk(self.var_index(var), ONE, ZERO)

    # ------------------------------------------------------------------
    # Core operations (node-id level)
    # ------------------------------------------------------------------

    def apply_not(self, u: int) -> int:
        if u == ZERO:
            return ONE
        if u == ONE:
            return ZERO
        key = ("not", u)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[u],
                          self.apply_not(self._low[u]),
                          self.apply_not(self._high[u]))
        self._cache[key] = result
        return result

    def apply_and(self, u: int, v: int) -> int:
        if u == ZERO or v == ZERO:
            return ZERO
        if u == ONE:
            return v
        if v == ONE or u == v:
            return u
        if u > v:
            u, v = v, u
        key = ("and", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl <= vlvl:
            var, u0, u1 = self._var[u], self._low[u], self._high[u]
        else:
            var, u0, u1 = self._var[v], u, u
        if vlvl <= ulvl:
            v0, v1 = self._low[v], self._high[v]
        else:
            v0, v1 = v, v
        if ulvl > vlvl:
            u0, u1 = u, u
        result = self._mk(var, self.apply_and(u0, v0), self.apply_and(u1, v1))
        self._cache[key] = result
        return result

    def apply_or(self, u: int, v: int) -> int:
        if u == ONE or v == ONE:
            return ONE
        if u == ZERO:
            return v
        if v == ZERO or u == v:
            return u
        if u > v:
            u, v = v, u
        key = ("or", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl <= vlvl:
            var, u0, u1 = self._var[u], self._low[u], self._high[u]
        else:
            var, u0, u1 = self._var[v], u, u
        if vlvl <= ulvl:
            v0, v1 = self._low[v], self._high[v]
        else:
            v0, v1 = v, v
        result = self._mk(var, self.apply_or(u0, v0), self.apply_or(u1, v1))
        self._cache[key] = result
        return result

    def apply_xor(self, u: int, v: int) -> int:
        if u == v:
            return ZERO
        if u == ZERO:
            return v
        if v == ZERO:
            return u
        if u == ONE:
            return self.apply_not(v)
        if v == ONE:
            return self.apply_not(u)
        if u > v:
            u, v = v, u
        key = ("xor", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl <= vlvl:
            var, u0, u1 = self._var[u], self._low[u], self._high[u]
        else:
            var, u0, u1 = self._var[v], u, u
        if vlvl <= ulvl:
            v0, v1 = self._low[v], self._high[v]
        else:
            v0, v1 = v, v
        result = self._mk(var, self.apply_xor(u0, v0), self.apply_xor(u1, v1))
        self._cache[key] = result
        return result

    def apply_diff(self, u: int, v: int) -> int:
        """``u AND NOT v``."""
        return self.apply_and(u, self.apply_not(v))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f*g + !f*h``."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return self.apply_not(f)
        key = ("ite", f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(f), self._level(g), self._level(h))
        var = self._level2var[level]
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        result = self._mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._cache[key] = result
        return result

    def _cofactors_at(self, u: int, level: int) -> Tuple[int, int]:
        if self._level(u) == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def _intern_vars(self, variables: Iterable) -> FrozenSet[int]:
        fset = frozenset(self.var_index(v) for v in variables)
        return self._interned_sets.setdefault(fset, fset)

    def exists(self, u: int, variables: Iterable) -> int:
        """Existential quantification of ``variables`` out of ``u``."""
        qvars = self._intern_vars(variables)
        if not qvars:
            return u
        return self._exists(u, qvars)

    def _exists(self, u: int, qvars: FrozenSet[int]) -> int:
        if u <= ONE:
            return u
        var = self._var[u]
        key = ("ex", u, qvars)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        low, high = self._low[u], self._high[u]
        if var in qvars:
            result = self.apply_or(self._exists(low, qvars),
                                   self._exists(high, qvars))
        else:
            result = self._mk(var, self._exists(low, qvars),
                              self._exists(high, qvars))
        self._cache[key] = result
        return result

    def forall(self, u: int, variables: Iterable) -> int:
        """Universal quantification: ``NOT exists(NOT u)``."""
        return self.apply_not(self.exists(self.apply_not(u), variables))

    def and_exists(self, u: int, v: int, variables: Iterable) -> int:
        """Relational product ``exists(variables, u AND v)`` in one pass.

        The conjunction ``u AND v`` is never materialized: a single
        recursion conjoins and quantifies simultaneously, memoized in a
        dedicated operation cache.  Quantified variables are eliminated as
        the recursion passes their levels; once the recursion has descended
        below the deepest quantified variable the remaining subproblem is a
        plain conjunction and is delegated to :meth:`apply_and` (whose
        operands at that point are strict subfunctions, not ``u AND v``).
        """
        qvars = self._intern_vars(variables)
        self.ae_calls += 1
        if not qvars:
            return self.apply_and(u, v)
        qbottom = max(self._var2level[var] for var in qvars)
        return self._and_exists(u, v, qvars, qbottom)

    def _and_exists(self, u: int, v: int, qvars: FrozenSet[int],
                    qbottom: int) -> int:
        if u == ZERO or v == ZERO:
            return ZERO
        if u == ONE and v == ONE:
            return ONE
        if u == ONE:
            return self._exists(v, qvars)
        if v == ONE or u == v:
            return self._exists(u, qvars)
        if u > v:
            u, v = v, u
        ulvl, vlvl = self._level(u), self._level(v)
        level = min(ulvl, vlvl)
        if level > qbottom:
            # Every quantified variable has been passed: what remains is a
            # pure conjunction of subfunctions.
            return self.apply_and(u, v)
        key = (u, v, qvars)
        cached = self._ae_cache.get(key)
        if cached is not None:
            self.ae_cache_hits += 1
            return cached
        self.ae_recursions += 1
        var = self._level2var[level]
        u0, u1 = self._cofactors_at(u, level)
        v0, v1 = self._cofactors_at(v, level)
        if var in qvars:
            r0 = self._and_exists(u0, v0, qvars, qbottom)
            if r0 == ONE:
                result = ONE
            else:
                result = self.apply_or(
                    r0, self._and_exists(u1, v1, qvars, qbottom))
        else:
            result = self._mk(var,
                              self._and_exists(u0, v0, qvars, qbottom),
                              self._and_exists(u1, v1, qvars, qbottom))
        self._ae_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Cofactor, rename, toggle, compose
    # ------------------------------------------------------------------

    def cube(self, assignment: Dict) -> int:
        """Build the conjunction of literals from ``{var: bool}``."""
        result = ONE
        items = sorted(((self.var_index(v), bool(val))
                        for v, val in assignment.items()),
                       key=lambda item: -self._var2level[item[0]])
        for var, value in items:
            if value:
                result = self._mk(var, ZERO, result)
            else:
                result = self._mk(var, result, ZERO)
        return result

    def cofactor(self, u: int, assignment: Dict) -> int:
        """Restrict ``u`` by the partial assignment ``{var: bool}``."""
        values = {self.var_index(v): bool(val)
                  for v, val in assignment.items()}
        if not values:
            return u
        key_vals = tuple(sorted(values.items()))
        return self._cofactor(u, values, key_vals)

    def _cofactor(self, u: int, values: Dict[int, bool], key_vals) -> int:
        if u <= ONE:
            return u
        var = self._var[u]
        key = ("cof", u, key_vals)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if var in values:
            child = self._high[u] if values[var] else self._low[u]
            result = self._cofactor(child, values, key_vals)
        else:
            result = self._mk(var,
                              self._cofactor(self._low[u], values, key_vals),
                              self._cofactor(self._high[u], values, key_vals))
        self._cache[key] = result
        return result

    def rename(self, u: int, mapping: Dict) -> int:
        """Rename variables of ``u`` according to ``{old: new}``.

        The mapping must be level-monotone on the support of ``u``: the
        relative order of the renamed variables must match the relative
        order of the originals.  This is sufficient for the symbolic image
        computations in this package, where current/next variables are
        interleaved.  A non-monotone mapping raises :class:`BDDError`.
        """
        varmap = {self.var_index(old): self.var_index(new)
                  for old, new in mapping.items()}
        support = self.support(u)
        pairs = sorted(
            ((self._var2level[v], self._var2level[varmap.get(v, v)])
             for v in support),
            key=lambda pair: pair[0])
        new_levels = [dst for _, dst in pairs]
        if any(b <= a for a, b in zip(new_levels, new_levels[1:])):
            raise BDDError("rename mapping is not monotone in the variable "
                           f"order: {mapping!r}")
        key_map = tuple(sorted(varmap.items()))
        return self._rename(u, varmap, key_map)

    def _rename(self, u: int, varmap: Dict[int, int], key_map) -> int:
        if u <= ONE:
            return u
        key = ("ren", u, key_map)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        result = self._mk(varmap.get(var, var),
                          self._rename(self._low[u], varmap, key_map),
                          self._rename(self._high[u], varmap, key_map))
        self._cache[key] = result
        return result

    def toggle(self, u: int, variables: Iterable) -> int:
        """Substitute ``var -> NOT var`` for each variable.

        This is the paper's Section 5.2 operation: firing a transition under
        a Gray-style encoding amounts to toggling the variables whose codes
        differ, which "interchanges the then and else arcs" of the affected
        nodes.
        """
        tvars = self._intern_vars(variables)
        if not tvars:
            return u
        return self._toggle(u, tvars)

    def _toggle(self, u: int, tvars: FrozenSet[int]) -> int:
        if u <= ONE:
            return u
        key = ("tog", u, tvars)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        low = self._toggle(self._low[u], tvars)
        high = self._toggle(self._high[u], tvars)
        if var in tvars:
            result = self._mk(var, high, low)
        else:
            result = self._mk(var, low, high)
        self._cache[key] = result
        return result

    def restrict_cm(self, u: int, care: int) -> int:
        """Coudert-Madre generalized cofactor (sibling substitution).

        Returns a function ``r`` with ``r AND care == u AND care`` that is
        usually smaller than ``u``: branches outside the care set are
        replaced by their siblings.  Used to simplify traversal frontiers
        against the already-reached set.
        """
        if care == ZERO:
            raise BDDError("care set must not be empty")
        return self._restrict_cm(u, care)

    def _restrict_cm(self, u: int, care: int) -> int:
        if care == ONE or u <= ONE:
            return u
        key = ("rcm", u, care)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, clvl = self._level(u), self._level(care)
        if clvl < ulvl:
            # u does not depend on the care set's top variable.
            result = self._restrict_cm(
                u, self.apply_or(self._low[care], self._high[care]))
        else:
            var = self._var[u]
            if ulvl < clvl:
                c0 = c1 = care
            else:
                c0, c1 = self._low[care], self._high[care]
            if c0 == ZERO:
                result = self._restrict_cm(self._high[u], c1)
            elif c1 == ZERO:
                result = self._restrict_cm(self._low[u], c0)
            else:
                result = self._mk(var,
                                  self._restrict_cm(self._low[u], c0),
                                  self._restrict_cm(self._high[u], c1))
        self._cache[key] = result
        return result

    def compose(self, u: int, var, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``u``."""
        index = self.var_index(var)
        xg = self.apply_and(g, self._restrict1(u, index))
        xng = self.apply_and(self.apply_not(g), self._restrict0(u, index))
        return self.apply_or(xg, xng)

    def _restrict0(self, u: int, var: int) -> int:
        return self.cofactor(u, {var: False})

    def _restrict1(self, u: int, var: int) -> int:
        return self.cofactor(u, {var: True})

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def eval_node(self, u: int, assignment: Dict) -> bool:
        """Evaluate ``u`` under a total assignment ``{var: bool}``."""
        values = {self.var_index(v): bool(val)
                  for v, val in assignment.items()}
        while u > ONE:
            u = self._high[u] if values[self._var[u]] else self._low[u]
        return u == ONE

    def support(self, u: int) -> FrozenSet[int]:
        """Set of variables ``u`` depends on."""
        seen = set()
        variables = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(variables)

    def size(self, u: int) -> int:
        """Number of nodes in the DAG rooted at ``u`` (including terminals)."""
        seen = set()
        stack = [u]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > ONE:
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def size_many(self, roots: Iterable[int]) -> int:
        """Number of distinct nodes in the DAG spanned by several roots."""
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > ONE:
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def satcount(self, u: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        if nvars is None:
            nvars = self.num_vars
        if nvars < len(self.support(u)):
            raise BDDError("nvars smaller than support size")
        bottom = len(self._var2level)
        memo: Dict[int, int] = {ZERO: 0, ONE: 1}

        def count(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            level = self._level(node)
            low, high = self._low[node], self._high[node]
            total = (count(low) * (1 << (self._level(low) - level - 1)) +
                     count(high) * (1 << (self._level(high) - level - 1)))
            memo[node] = total
            return total

        # Count over the full variable order, then rescale to nvars.
        full = count(u) * (1 << self._level(u))
        if nvars >= bottom:
            return full << (nvars - bottom)
        return full >> (bottom - nvars)

    def sat_one(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment, or None if ``u`` is ZERO."""
        if u == ZERO:
            return None
        cube: Dict[int, bool] = {}
        while u > ONE:
            if self._low[u] != ZERO:
                cube[self._var[u]] = False
                u = self._low[u]
            else:
                cube[self._var[u]] = True
                u = self._high[u]
        return cube

    def iter_cubes(self, u: int) -> Iterator[Dict[int, bool]]:
        """Iterate over the cubes (partial assignments) of ``u``."""
        if u == ZERO:
            return
        if u == ONE:
            yield {}
            return
        var = self._var[u]
        for value, child in ((False, self._low[u]), (True, self._high[u])):
            for sub in self.iter_cubes(child):
                cube = {var: value}
                cube.update(sub)
                yield cube

    def iter_minterms(self, u: int,
                      variables: Optional[List[int]] = None
                      ) -> Iterator[Dict[int, bool]]:
        """Iterate over total assignments (over ``variables``) satisfying u."""
        if variables is None:
            variables = list(range(self.num_vars))
        variables = [self.var_index(v) for v in variables]

        def expand(cube: Dict[int, bool], remaining: List[int]
                   ) -> Iterator[Dict[int, bool]]:
            if not remaining:
                yield dict(cube)
                return
            var = remaining[0]
            rest = remaining[1:]
            if var in cube:
                yield from expand(cube, rest)
            else:
                for value in (False, True):
                    cube[var] = value
                    yield from expand(cube, rest)
                del cube[var]

        for cube in self.iter_cubes(u):
            missing = [v for v in variables]
            yield from expand(dict(cube), missing)

    # ------------------------------------------------------------------
    # Reordering support (used by repro.bdd.reorder)
    # ------------------------------------------------------------------

    def swap_levels(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Implements Rudell's adjacent-variable swap: every node labeled with
        the upper variable that references the lower variable is rewritten
        in place, preserving node ids (and therefore external references).
        Must be called at a safe point; the operation cache is cleared.
        """
        if not 0 <= level < len(self._level2var) - 1:
            raise BDDError(f"cannot swap level {level}")
        self.clear_caches()
        upper = self._level2var[level]
        lower = self._level2var[level + 1]
        upper_table = self._unique[upper]
        lower_var = lower

        for (f0, f1), node in list(upper_table.items()):
            f0_is_lower = self._var[f0] == lower_var
            f1_is_lower = self._var[f1] == lower_var
            if not f0_is_lower and not f1_is_lower:
                continue
            if f0_is_lower:
                f00, f01 = self._low[f0], self._high[f0]
            else:
                f00 = f01 = f0
            if f1_is_lower:
                f10, f11 = self._low[f1], self._high[f1]
            else:
                f10 = f11 = f1
            new_low = self._mk(upper, f00, f10)
            new_high = self._mk(upper, f01, f11)
            self._ref[new_low] += 1
            self._ref[new_high] += 1
            del upper_table[(f0, f1)]
            self._var[node] = lower_var
            self._low[node] = new_low
            self._high[node] = new_high
            existing = self._unique[lower_var].get((new_low, new_high))
            if existing is not None:
                raise BDDError("canonicity violation during swap")
            self._unique[lower_var][(new_low, new_high)] = node
            self._deref_cascade(f0)
            self._deref_cascade(f1)

        self._level2var[level] = lower
        self._level2var[level + 1] = upper
        self._var2level[lower] = level
        self._var2level[upper] = level + 1
        self._notify_reorder()

    def set_order(self, names_or_vars: Iterable) -> None:
        """Reorder variables to the given top-to-bottom sequence."""
        target = [self.var_index(v) for v in names_or_vars]
        if sorted(target) != list(range(self.num_vars)):
            raise BDDError("set_order requires a permutation of all variables")
        self.collect_garbage()
        # Selection-sort by repeated adjacent swaps (bubble the right
        # variable up to each level in turn); hooks fire once at the end.
        with self.deferred_reorder_notifications():
            for level, var in enumerate(target):
                current = self._var2level[var]
                while current > level:
                    self.swap_levels(current - 1)
                    current -= 1

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def assert_consistent(self) -> None:
        """Validate internal invariants (for tests); raises on violation."""
        for var, table in enumerate(self._unique):
            for (low, high), node in table.items():
                if self._var[node] != var:
                    raise BDDError(f"node {node} var mismatch")
                if self._low[node] != low or self._high[node] != high:
                    raise BDDError(f"node {node} key mismatch")
                if low == high:
                    raise BDDError(f"node {node} is redundant")
                for child in (low, high):
                    if child > ONE and self._var[child] < 0:
                        raise BDDError(f"node {node} references freed child")
                    if child > ONE and (self._var2level[self._var[child]]
                                        <= self._var2level[var]):
                        raise BDDError(f"node {node} violates ordering")
        # Reference counts: recompute from tables.
        counts = [0] * len(self._var)
        for table in self._unique:
            for (low, high) in table:
                counts[low] += 1
                counts[high] += 1
        for u in range(2, len(self._var)):
            if self._var[u] < 0:
                continue
            if counts[u] > self._ref[u]:
                raise BDDError(f"node {u} undercounted refs "
                               f"({counts[u]} > {self._ref[u]})")

    def __repr__(self) -> str:
        return (f"<BDD vars={self.num_vars} live_nodes={self.live_nodes()} "
                f"order={self.order()!r}>")
