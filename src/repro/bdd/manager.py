"""Binary Decision Diagram manager.

This module implements a self-contained BDD package in the style of the
classic libraries the paper relies on (Brace/Rudell/Bryant; David Long's
package):

* reduced ordered BDDs **with complement edges**,
* hash-consing through per-variable unique tables,
* a computed-table (operation cache),
* exact internal reference counting with cascading frees,
* garbage collection and dynamic variable reordering at safe points.

The node storage, reference counting, garbage collection, level
bookkeeping, adjacent-level swap and reorder-hook machinery live in the
shared kernel :class:`repro.dd.manager.DDManager` (also underneath
:class:`repro.bdd.zdd.ZDD`); this class adds the boolean reduction rule
(``low == high`` collapses), the complement-edge canonical form and the
boolean operation algebra.

Edge representation
-------------------

Every value handled by this manager is an *edge*: ``(node_id << 1) | c``
where ``c`` is the complement bit.  Edge ``e`` denotes the function of
node ``e >> 1``, negated iff ``e & 1``.  There is a single terminal node
(id ``1``); its two polarities are the constants::

    ONE  = 2          # edge (node 1, regular)
    ZERO = 3          # edge (node 1, complemented)

Canonical form: **the else (low) edge of a stored node is never
complemented**.  :meth:`BDD._mk` enforces this at find-or-create — a
complemented else edge flips both children and complements the resulting
edge instead (``mk(v, ~a, b) == ~mk(v, a, ~b)``) — so every boolean
function has exactly one edge and

* :meth:`BDD.apply_not` is a bit flip (O(1), no recursion, no node
  allocation),
* ``~~f == f`` holds structurally (``(e ^ 1) ^ 1 == e``),
* a function and its negation share one DAG, roughly halving node
  counts on negation-heavy workloads.

Operation caches are complement-canonicalised so equivalent queries
share cache lines: OR is De Morgan'd onto the AND cache, XOR factors
both complement bits out of its key, ITE applies the standard-triple
rules (regular first argument, regular then-branch, terminal cases
delegated to AND/XOR), and the unary structural ops (cofactor, rename,
toggle, restrict) cache on the regular edge because they commute with
negation.

A node's fields may be mutated in place by variable reordering, but the
function represented by an edge never changes; external code can
therefore hold edges across reordering (see
:class:`repro.bdd.function.Function`).

The manager API is deliberately low level (integer edges, explicit
reference counting).  User code should go through
:class:`repro.bdd.function.Function` obtained from :meth:`BDD.var`,
:attr:`BDD.true` and :attr:`BDD.false`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..dd.manager import DDError, DDManager, _PACK

#: The constant edges: one terminal node (id 1) in two polarities.
ONE = 2
ZERO = 3


class BDDError(DDError):
    """Raised for invalid BDD manager operations."""


class BDD(DDManager):
    """A BDD manager: variable order, unique tables and operations.

    Parameters
    ----------
    var_names:
        Optional initial list of variable names; the initial variable order
        is the list order.
    auto_reorder:
        If true, sifting is triggered automatically when the number of live
        nodes crosses a growing threshold (checked only at safe points,
        i.e. at entry of public operations).
    """

    _error_class = BDDError
    _var_prefix = "x"
    _edge_shift = 1
    complement_edges = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Dedicated caches for the hottest operations, int-keyed like
        # the unique tables (pack two edges as ``(u << _PACK) | v``, or
        # nest one small dict per quantifier/assignment context): int
        # keys hash as themselves, the hot loops allocate no tuples,
        # and the million-entry inner dicts stay exempt from the cycle
        # collector.  AND also serves OR and DIFF via De Morgan.
        # Registered with the kernel so safe points clear them.
        self._and_cache: Dict[int, int] = self.register_cache({})
        self._ex_cache: Dict[FrozenSet[int], Dict[int, int]] = \
            self.register_cache({})
        self._cof_cache: Dict[tuple, Dict[int, int]] = self.register_cache({})
        self._rcm_cache: Dict[int, int] = self.register_cache({})

    # ------------------------------------------------------------------
    # Kernel hooks: the boolean reduction rule and canonical form
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the edge for node ``(var, low, high)``.

        Applies the boolean reduction rule (``low == high`` collapses)
        and the complement-edge canonical form: a complemented else
        edge is normalised away by flipping both children and
        complementing the result.
        """
        if low == high:
            return low
        if low & 1:
            return (self._node(var, low ^ 1, high ^ 1) << 1) | 1
        return self._node(var, low, high) << 1

    def _is_reduced(self, low: int, high: int) -> bool:
        return low != high

    def _swap_cofactors(self, child: int, lower: int) -> Tuple[int, int]:
        node = child >> 1
        if self._var[node] == lower:
            c = child & 1
            return self._low[node] ^ c, self._high[node] ^ c
        # Independent of the lower variable: both cofactors are the child.
        return child, child

    def _level(self, u: int) -> int:
        """Level of the node behind edge ``u`` (terminals at bottom)."""
        var = self._var[u >> 1]
        if var < 0:
            return len(self._var2level)
        return self._var2level[var]

    # ------------------------------------------------------------------
    # Edge accessors
    # ------------------------------------------------------------------

    def is_complement(self, u: int) -> bool:
        """Whether edge ``u`` carries the complement bit."""
        return bool(u & 1)

    def regular(self, u: int) -> int:
        """Edge ``u`` with the complement bit cleared."""
        return u & -2

    def edge_var(self, u: int) -> int:
        """Variable labelling the node behind edge ``u`` (-1: terminal)."""
        return self._var[u >> 1]

    def low_edge(self, u: int) -> int:
        """Else cofactor of edge ``u`` (complement bit pushed down)."""
        return self._low[u >> 1] ^ (u & 1)

    def high_edge(self, u: int) -> int:
        """Then cofactor of edge ``u`` (complement bit pushed down)."""
        return self._high[u >> 1] ^ (u & 1)

    # ------------------------------------------------------------------
    # Constants and literals
    # ------------------------------------------------------------------

    def var_node(self, var) -> int:
        """Edge of the positive literal of ``var``."""
        return self._mk(self.var_index(var), ZERO, ONE)

    def nvar_node(self, var) -> int:
        """Edge of the negative literal of ``var``."""
        return self._mk(self.var_index(var), ONE, ZERO)

    # ------------------------------------------------------------------
    # Core operations (edge level)
    # ------------------------------------------------------------------

    def apply_not(self, u: int) -> int:
        """Negation: flip the complement bit.  O(1) — no recursion, no
        allocation, no cache lookup; ``~~f == f`` structurally."""
        return u ^ 1

    def apply_and(self, u: int, v: int) -> int:
        # Terminal cases first, before paying for the closure below.
        if u == v:
            return u
        if u == ZERO or v == ZERO or u ^ v == 1:
            # The third case is f AND (NOT f) on the shared node.
            return ZERO
        if u == ONE:
            return v
        if v == ONE:
            return u
        # The recursion binds the node arrays, the cache and the
        # hash-consing hook to locals and inlines ``_mk``: on traversal
        # workloads a top-level AND averages hundreds of recursive
        # steps, so shaving attribute lookups and method dispatch off
        # each step dominates the one-off cost of building the closure.
        cache = self._and_cache
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        var2level = self._var2level
        node_fn = self._node

        def rec(u: int, v: int) -> int:
            if u == v:
                return u
            if u == ZERO or v == ZERO or u ^ v == 1:
                return ZERO
            if u == ONE:
                return v
            if v == ONE:
                return u
            if u > v:
                u, v = v, u
            key = (u << _PACK) | v
            result = cache.get(key)
            if result is not None:
                return result
            # Both edges point at internal nodes here, so var >= 0.
            un = u >> 1
            vn = v >> 1
            ulvl = var2level[var_arr[un]]
            vlvl = var2level[var_arr[vn]]
            if ulvl <= vlvl:
                var = var_arr[un]
                uc = u & 1
                u0 = low_arr[un] ^ uc
                u1 = high_arr[un] ^ uc
            else:
                var = var_arr[vn]
                u0 = u1 = u
            if vlvl <= ulvl:
                vc = v & 1
                v0 = low_arr[vn] ^ vc
                v1 = high_arr[vn] ^ vc
            else:
                v0 = v1 = v
            r0 = rec(u0, v0)
            r1 = rec(u1, v1)
            if r0 == r1:
                result = r0
            elif r0 & 1:
                result = (node_fn(var, r0 ^ 1, r1 ^ 1) << 1) | 1
            else:
                result = node_fn(var, r0, r1) << 1
            cache[key] = result
            return result

        return rec(u, v)

    def apply_or(self, u: int, v: int) -> int:
        # De Morgan onto the AND cache: f OR g == NOT (NOT f AND NOT g).
        # With O(1) negation this costs two bit flips and shares cache
        # lines with the conjunctive phrasing of the same query.
        return self.apply_and(u ^ 1, v ^ 1) ^ 1

    def apply_xor(self, u: int, v: int) -> int:
        # XOR is invariant under complementing *both* arguments, and
        # complementing one complements the result — so both bits factor
        # out of the cache key entirely.
        c = (u ^ v) & 1
        u &= -2
        v &= -2
        if u == v:
            return ZERO ^ c
        if u == ONE:
            return v ^ 1 ^ c
        if v == ONE:
            return u ^ 1 ^ c
        if u > v:
            u, v = v, u
        key = ("xor", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached ^ c
        un, vn = u >> 1, v >> 1
        ulvl = self._var2level[self._var[un]]
        vlvl = self._var2level[self._var[vn]]
        if ulvl <= vlvl:
            var = self._var[un]
            u0, u1 = self._low[un], self._high[un]
        else:
            var = self._var[vn]
            u0 = u1 = u
        if vlvl <= ulvl:
            v0, v1 = self._low[vn], self._high[vn]
        else:
            v0 = v1 = v
        result = self._mk(var, self.apply_xor(u0, v0), self.apply_xor(u1, v1))
        self._cache[key] = result
        return result ^ c

    def apply_diff(self, u: int, v: int) -> int:
        """``u AND NOT v`` — one bit flip on top of the AND cache."""
        return self.apply_and(u, v ^ 1)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f*g + !f*h`` with standard-triple
        canonicalisation, so equivalent queries (``ite(f,g,0)`` /
        ``f AND g`` / De Morgan'd phrasings) share cache lines."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        # Branches equal (or complementary) to the test collapse to
        # constants of that branch.
        if g == f:
            g = ONE
        elif g == (f ^ 1):
            g = ZERO
        if h == f:
            h = ZERO
        elif h == (f ^ 1):
            h = ONE
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        # One constant branch: delegate to the binary ops (and their
        # canonicalised caches).
        if h == ZERO:
            return self.apply_and(f, g)
        if g == ZERO:
            return self.apply_and(f ^ 1, h)
        if g == ONE:
            return self.apply_and(f ^ 1, h ^ 1) ^ 1
        if h == ONE:
            return self.apply_and(f, g ^ 1) ^ 1
        if g == (h ^ 1):
            return self.apply_xor(f, h)
        # Standard triples: regular test (ite(~f,g,h) == ite(f,h,g)),
        # then regular then-branch (ite(f,~g,~h) == ~ite(f,g,h)).
        if f & 1:
            f, g, h = f ^ 1, h, g
        c = g & 1
        if c:
            g, h = g ^ 1, h ^ 1
        key = ("ite", f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached ^ c
        level = min(self._level(f), self._level(g), self._level(h))
        var = self._level2var[level]
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        result = self._mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._cache[key] = result
        return result ^ c

    def _cofactors_at(self, u: int, level: int) -> Tuple[int, int]:
        if self._level(u) == level:
            node = u >> 1
            c = u & 1
            return self._low[node] ^ c, self._high[node] ^ c
        return u, u

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def exists(self, u: int, variables: Iterable) -> int:
        """Existential quantification of ``variables`` out of ``u``."""
        qvars = self._intern_vars(variables)
        if not qvars:
            return u
        return self._exists(u, qvars)

    def _exists(self, u: int, qvars: FrozenSet[int]) -> int:
        if u == ZERO or u == ONE:
            return u
        cache = self._ex_cache.get(qvars)
        if cache is None:
            cache = self._ex_cache[qvars] = {}
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        node_fn = self._node
        apply_and = self.apply_and

        def rec(u: int) -> int:
            if u == ZERO or u == ONE:
                return u
            # No complement factoring here: exists does NOT commute
            # with negation (that is forall), so the cache key is the
            # full edge.
            result = cache.get(u)
            if result is not None:
                return result
            node = u >> 1
            c = u & 1
            var = var_arr[node]
            if var in qvars:
                r0 = rec(low_arr[node] ^ c)
                if r0 == ONE:
                    result = ONE
                else:
                    result = apply_and(r0 ^ 1, rec(high_arr[node] ^ c) ^ 1) ^ 1
            else:
                r0 = rec(low_arr[node] ^ c)
                r1 = rec(high_arr[node] ^ c)
                if r0 == r1:
                    result = r0
                elif r0 & 1:
                    result = (node_fn(var, r0 ^ 1, r1 ^ 1) << 1) | 1
                else:
                    result = node_fn(var, r0, r1) << 1
            cache[u] = result
            return result

        return rec(u)

    def forall(self, u: int, variables: Iterable) -> int:
        """Universal quantification: ``NOT exists(NOT u)``.

        Both negations are bit flips, so this costs exactly one
        existential quantification.
        """
        return self.exists(u ^ 1, variables) ^ 1

    def and_exists(self, u: int, v: int, variables: Iterable) -> int:
        """Relational product ``exists(variables, u AND v)`` in one pass.

        The conjunction ``u AND v`` is never materialized: a single
        recursion conjoins and quantifies simultaneously, memoized in a
        dedicated operation cache.  Quantified variables are eliminated as
        the recursion passes their levels; once the recursion has descended
        below the deepest quantified variable the remaining subproblem is a
        plain conjunction and is delegated to :meth:`apply_and` (whose
        operands at that point are strict subfunctions, not ``u AND v``).
        """
        qvars = self._intern_vars(variables)
        self.ae_calls += 1
        if not qvars:
            return self.apply_and(u, v)
        qbottom = max(self._var2level[var] for var in qvars)
        return self._and_exists(u, v, qvars, qbottom)

    def _and_exists(self, u: int, v: int, qvars: FrozenSet[int],
                    qbottom: int) -> int:
        cache = self._ae_cache.get(qvars)
        if cache is None:
            cache = self._ae_cache[qvars] = {}
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        var2level = self._var2level
        level2var = self._level2var
        node_fn = self._node
        apply_and = self.apply_and
        exists = self._exists
        recs = 0
        hits = 0

        def rec(u: int, v: int) -> int:
            nonlocal recs, hits
            if u == ZERO or v == ZERO or u ^ v == 1:
                return ZERO
            if u == ONE and v == ONE:
                return ONE
            if u == ONE:
                return exists(v, qvars)
            if v == ONE or u == v:
                return exists(u, qvars)
            if u > v:
                u, v = v, u
            # Both edges point at internal nodes here, so var >= 0.
            ulvl = var2level[var_arr[u >> 1]]
            vlvl = var2level[var_arr[v >> 1]]
            level = ulvl if ulvl < vlvl else vlvl
            if level > qbottom:
                # Every quantified variable has been passed: what
                # remains is a pure conjunction of subfunctions.
                return apply_and(u, v)
            key = (u << _PACK) | v
            result = cache.get(key)
            if result is not None:
                hits += 1
                return result
            recs += 1
            var = level2var[level]
            if ulvl == level:
                un = u >> 1
                uc = u & 1
                u0 = low_arr[un] ^ uc
                u1 = high_arr[un] ^ uc
            else:
                u0 = u1 = u
            if vlvl == level:
                vn = v >> 1
                vc = v & 1
                v0 = low_arr[vn] ^ vc
                v1 = high_arr[vn] ^ vc
            else:
                v0 = v1 = v
            if var in qvars:
                r0 = rec(u0, v0)
                if r0 == ONE:
                    result = ONE
                else:
                    result = apply_and(r0 ^ 1, rec(u1, v1) ^ 1) ^ 1
            else:
                r0 = rec(u0, v0)
                r1 = rec(u1, v1)
                if r0 == r1:
                    result = r0
                elif r0 & 1:
                    result = (node_fn(var, r0 ^ 1, r1 ^ 1) << 1) | 1
                else:
                    result = node_fn(var, r0, r1) << 1
            cache[key] = result
            return result

        result = rec(u, v)
        self.ae_recursions += recs
        self.ae_cache_hits += hits
        return result

    # ------------------------------------------------------------------
    # Cofactor, rename, toggle, compose
    # ------------------------------------------------------------------

    def cube(self, assignment: Dict) -> int:
        """Build the conjunction of literals from ``{var: bool}``."""
        result = ONE
        items = sorted(((self.var_index(v), bool(val))
                        for v, val in assignment.items()),
                       key=lambda item: -self._var2level[item[0]])
        for var, value in items:
            if value:
                result = self._mk(var, ZERO, result)
            else:
                result = self._mk(var, result, ZERO)
        return result

    def cofactor(self, u: int, assignment: Dict) -> int:
        """Restrict ``u`` by the partial assignment ``{var: bool}``."""
        values = {self.var_index(v): bool(val)
                  for v, val in assignment.items()}
        if not values:
            return u
        key_vals = tuple(sorted(values.items()))
        return self._cofactor(u, values, key_vals)

    def _cofactor(self, u: int, values: Dict[int, bool], key_vals) -> int:
        if u == ZERO or u == ONE:
            return u
        cache = self._cof_cache.get(key_vals)
        if cache is None:
            cache = self._cof_cache[key_vals] = {}
        var_arr = self._var
        low_arr = self._low
        high_arr = self._high
        node_fn = self._node

        def rec(u: int) -> int:
            if u == ZERO or u == ONE:
                return u
            # Cofactoring commutes with negation: compute on the
            # regular edge and re-apply the bit, so f and ~f share
            # cache lines.
            c = u & 1
            u ^= c
            result = cache.get(u)
            if result is not None:
                return result ^ c
            node = u >> 1
            var = var_arr[node]
            if var in values:
                result = rec(high_arr[node] if values[var]
                             else low_arr[node])
            else:
                r0 = rec(low_arr[node])
                r1 = rec(high_arr[node])
                if r0 == r1:
                    result = r0
                elif r0 & 1:
                    result = (node_fn(var, r0 ^ 1, r1 ^ 1) << 1) | 1
                else:
                    result = node_fn(var, r0, r1) << 1
            cache[u] = result
            return result ^ c

        return rec(u)

    def rename(self, u: int, mapping: Dict) -> int:
        """Rename variables of ``u`` according to ``{old: new}``.

        The mapping must be level-monotone on the support of ``u``: the
        relative order of the renamed variables must match the relative
        order of the originals.  This is sufficient for the symbolic image
        computations in this package, where current/next variables are
        interleaved.  A non-monotone mapping raises :class:`BDDError`.
        """
        varmap = {self.var_index(old): self.var_index(new)
                  for old, new in mapping.items()}
        support = self.support(u)
        pairs = sorted(
            ((self._var2level[v], self._var2level[varmap.get(v, v)])
             for v in support),
            key=lambda pair: pair[0])
        new_levels = [dst for _, dst in pairs]
        if any(b <= a for a, b in zip(new_levels, new_levels[1:])):
            raise BDDError("rename mapping is not monotone in the variable "
                           f"order: {mapping!r}")
        key_map = tuple(sorted(varmap.items()))
        return self._rename(u, varmap, key_map)

    def _rename(self, u: int, varmap: Dict[int, int], key_map) -> int:
        if u == ZERO or u == ONE:
            return u
        # Renaming commutes with negation: cache on the regular edge.
        c = u & 1
        u ^= c
        key = ("ren", u, key_map)
        cached = self._cache.get(key)
        if cached is not None:
            return cached ^ c
        node = u >> 1
        var = self._var[node]
        result = self._mk(varmap.get(var, var),
                          self._rename(self._low[node], varmap, key_map),
                          self._rename(self._high[node], varmap, key_map))
        self._cache[key] = result
        return result ^ c

    def toggle(self, u: int, variables: Iterable) -> int:
        """Substitute ``var -> NOT var`` for each variable.

        This is the paper's Section 5.2 operation: firing a transition under
        a Gray-style encoding amounts to toggling the variables whose codes
        differ, which "interchanges the then and else arcs" of the affected
        nodes.
        """
        tvars = self._intern_vars(variables)
        if not tvars:
            return u
        return self._toggle(u, tvars)

    def _toggle(self, u: int, tvars: FrozenSet[int]) -> int:
        if u == ZERO or u == ONE:
            return u
        # Toggling commutes with negation: cache on the regular edge.
        c = u & 1
        u ^= c
        key = ("tog", u, tvars)
        cached = self._cache.get(key)
        if cached is not None:
            return cached ^ c
        node = u >> 1
        var = self._var[node]
        low = self._toggle(self._low[node], tvars)
        high = self._toggle(self._high[node], tvars)
        if var in tvars:
            result = self._mk(var, high, low)
        else:
            result = self._mk(var, low, high)
        self._cache[key] = result
        return result ^ c

    def restrict_cm(self, u: int, care: int) -> int:
        """Coudert-Madre generalized cofactor (sibling substitution).

        Returns a function ``r`` with ``r AND care == u AND care`` that is
        usually smaller than ``u``: branches outside the care set are
        replaced by their siblings.  Used to simplify traversal frontiers
        against the already-reached set.
        """
        if care == ZERO:
            raise BDDError("care set must not be empty")
        return self._restrict_cm(u, care)

    def _restrict_cm(self, u: int, care: int) -> int:
        if care == ONE or u == ZERO or u == ONE:
            return u
        # Sibling substitution commutes with negation of the restricted
        # function (NOT of the care set does not factor): cache on the
        # regular edge of ``u`` with the full ``care`` edge.
        uc = u & 1
        u ^= uc
        key = (u << _PACK) | care
        cached = self._rcm_cache.get(key)
        if cached is not None:
            return cached ^ uc
        un = u >> 1
        cn, cc = care >> 1, care & 1
        ulvl, clvl = self._level(u), self._level(care)
        if clvl < ulvl:
            # u does not depend on the care set's top variable.
            result = self._restrict_cm(
                u, self.apply_or(self._low[cn] ^ cc, self._high[cn] ^ cc))
        else:
            var = self._var[un]
            if ulvl < clvl:
                c0 = c1 = care
            else:
                c0, c1 = self._low[cn] ^ cc, self._high[cn] ^ cc
            if c0 == ZERO:
                result = self._restrict_cm(self._high[un], c1)
            elif c1 == ZERO:
                result = self._restrict_cm(self._low[un], c0)
            else:
                result = self._mk(var,
                                  self._restrict_cm(self._low[un], c0),
                                  self._restrict_cm(self._high[un], c1))
        self._rcm_cache[key] = result
        return result ^ uc

    def compose(self, u: int, var, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``u``."""
        index = self.var_index(var)
        xg = self.apply_and(g, self._restrict1(u, index))
        xng = self.apply_and(g ^ 1, self._restrict0(u, index))
        return self.apply_or(xg, xng)

    def _restrict0(self, u: int, var: int) -> int:
        return self.cofactor(u, {var: False})

    def _restrict1(self, u: int, var: int) -> int:
        return self.cofactor(u, {var: True})

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def eval_node(self, u: int, assignment: Dict) -> bool:
        """Evaluate edge ``u`` under a total assignment ``{var: bool}``."""
        values = {self.var_index(v): bool(val)
                  for v, val in assignment.items()}
        while u != ZERO and u != ONE:
            node = u >> 1
            c = u & 1
            child = (self._high[node] if values[self._var[node]]
                     else self._low[node])
            u = child ^ c
        return u == ONE

    def satcount(self, u: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        if nvars is None:
            nvars = self.num_vars
        if nvars < len(self.support(u)):
            raise BDDError("nvars smaller than support size")
        bottom = len(self._var2level)
        # Memoized per *edge*: the two polarities of a shared node have
        # different counts.
        memo: Dict[int, int] = {ZERO: 0, ONE: 1}

        def count(edge: int) -> int:
            cached = memo.get(edge)
            if cached is not None:
                return cached
            node = edge >> 1
            c = edge & 1
            level = self._var2level[self._var[node]]
            low, high = self._low[node] ^ c, self._high[node] ^ c
            total = (count(low) * (1 << (self._level(low) - level - 1)) +
                     count(high) * (1 << (self._level(high) - level - 1)))
            memo[edge] = total
            return total

        # Count over the full variable order, then rescale to nvars.
        full = count(u) * (1 << self._level(u))
        if nvars >= bottom:
            return full << (nvars - bottom)
        return full >> (bottom - nvars)

    def sat_one(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment, or None if ``u`` is ZERO."""
        if u == ZERO:
            return None
        cube: Dict[int, bool] = {}
        while u != ONE:
            node = u >> 1
            c = u & 1
            low = self._low[node] ^ c
            if low != ZERO:
                cube[self._var[node]] = False
                u = low
            else:
                cube[self._var[node]] = True
                u = self._high[node] ^ c
        return cube

    def iter_cubes(self, u: int) -> Iterator[Dict[int, bool]]:
        """Iterate over the cubes (partial assignments) of ``u``."""
        if u == ZERO:
            return
        if u == ONE:
            yield {}
            return
        node = u >> 1
        c = u & 1
        var = self._var[node]
        for value, child in ((False, self._low[node] ^ c),
                             (True, self._high[node] ^ c)):
            for sub in self.iter_cubes(child):
                cube = {var: value}
                cube.update(sub)
                yield cube

    def iter_minterms(self, u: int,
                      variables: Optional[List[int]] = None
                      ) -> Iterator[Dict[int, bool]]:
        """Iterate over total assignments (over ``variables``) satisfying u."""
        if variables is None:
            variables = list(range(self.num_vars))
        variables = [self.var_index(v) for v in variables]

        def expand(cube: Dict[int, bool], remaining: List[int]
                   ) -> Iterator[Dict[int, bool]]:
            if not remaining:
                yield dict(cube)
                return
            var = remaining[0]
            rest = remaining[1:]
            if var in cube:
                yield from expand(cube, rest)
            else:
                for value in (False, True):
                    cube[var] = value
                    yield from expand(cube, rest)
                del cube[var]

        for cube in self.iter_cubes(u):
            missing = [v for v in variables]
            yield from expand(dict(cube), missing)

    def __repr__(self) -> str:
        return (f"<BDD vars={self.num_vars} live_nodes={self.live_nodes()} "
                f"order={self.order()!r}>")
