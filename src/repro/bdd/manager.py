"""Binary Decision Diagram manager.

This module implements a self-contained BDD package in the style of the
classic libraries the paper relies on (Brace/Rudell/Bryant; David Long's
package):

* reduced ordered BDDs without complement edges,
* hash-consing through per-variable unique tables,
* a computed-table (operation cache),
* exact internal reference counting with cascading frees,
* garbage collection and dynamic variable reordering at safe points.

The node storage, reference counting, garbage collection, level
bookkeeping, adjacent-level swap and reorder-hook machinery live in the
shared kernel :class:`repro.dd.manager.DDManager` (also underneath
:class:`repro.bdd.zdd.ZDD`); this class adds the boolean reduction rule
(``low == high`` collapses) and the boolean operation algebra.

Nodes are records stored in parallel arrays and addressed by integer ids.
Terminal nodes are ``ZERO = 0`` and ``ONE = 1``.  A node's fields may be
mutated in place by variable reordering, but the function represented by a
node id never changes; external code can therefore hold ids across
reordering (see :class:`repro.bdd.function.Function`).

The manager API is deliberately low level (integer node ids, explicit
reference counting).  User code should go through
:class:`repro.bdd.function.Function` obtained from :meth:`BDD.var`,
:attr:`BDD.true` and :attr:`BDD.false`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..dd.manager import DDError, DDManager

ZERO = 0
ONE = 1


class BDDError(DDError):
    """Raised for invalid BDD manager operations."""


class BDD(DDManager):
    """A BDD manager: variable order, unique tables and operations.

    Parameters
    ----------
    var_names:
        Optional initial list of variable names; the initial variable order
        is the list order.
    auto_reorder:
        If true, sifting is triggered automatically when the number of live
        nodes crosses a growing threshold (checked only at safe points,
        i.e. at entry of public operations).
    """

    _error_class = BDDError
    _var_prefix = "x"

    # ------------------------------------------------------------------
    # Kernel hooks: the boolean reduction rule
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduced, hashed)."""
        if low == high:
            return low
        return self._node(var, low, high)

    def _is_reduced(self, low: int, high: int) -> bool:
        return low != high

    def _swap_cofactors(self, child: int, lower: int) -> Tuple[int, int]:
        if self._var[child] == lower:
            return self._low[child], self._high[child]
        # Independent of the lower variable: both cofactors are the child.
        return child, child

    # ------------------------------------------------------------------
    # Constants and literals
    # ------------------------------------------------------------------

    def var_node(self, var) -> int:
        """Node id of the positive literal of ``var``."""
        return self._mk(self.var_index(var), ZERO, ONE)

    def nvar_node(self, var) -> int:
        """Node id of the negative literal of ``var``."""
        return self._mk(self.var_index(var), ONE, ZERO)

    # ------------------------------------------------------------------
    # Core operations (node-id level)
    # ------------------------------------------------------------------

    def apply_not(self, u: int) -> int:
        if u == ZERO:
            return ONE
        if u == ONE:
            return ZERO
        key = ("not", u)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[u],
                          self.apply_not(self._low[u]),
                          self.apply_not(self._high[u]))
        self._cache[key] = result
        return result

    def apply_and(self, u: int, v: int) -> int:
        if u == ZERO or v == ZERO:
            return ZERO
        if u == ONE:
            return v
        if v == ONE or u == v:
            return u
        if u > v:
            u, v = v, u
        key = ("and", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl <= vlvl:
            var, u0, u1 = self._var[u], self._low[u], self._high[u]
        else:
            var, u0, u1 = self._var[v], u, u
        if vlvl <= ulvl:
            v0, v1 = self._low[v], self._high[v]
        else:
            v0, v1 = v, v
        if ulvl > vlvl:
            u0, u1 = u, u
        result = self._mk(var, self.apply_and(u0, v0), self.apply_and(u1, v1))
        self._cache[key] = result
        return result

    def apply_or(self, u: int, v: int) -> int:
        if u == ONE or v == ONE:
            return ONE
        if u == ZERO:
            return v
        if v == ZERO or u == v:
            return u
        if u > v:
            u, v = v, u
        key = ("or", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl <= vlvl:
            var, u0, u1 = self._var[u], self._low[u], self._high[u]
        else:
            var, u0, u1 = self._var[v], u, u
        if vlvl <= ulvl:
            v0, v1 = self._low[v], self._high[v]
        else:
            v0, v1 = v, v
        result = self._mk(var, self.apply_or(u0, v0), self.apply_or(u1, v1))
        self._cache[key] = result
        return result

    def apply_xor(self, u: int, v: int) -> int:
        if u == v:
            return ZERO
        if u == ZERO:
            return v
        if v == ZERO:
            return u
        if u == ONE:
            return self.apply_not(v)
        if v == ONE:
            return self.apply_not(u)
        if u > v:
            u, v = v, u
        key = ("xor", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl <= vlvl:
            var, u0, u1 = self._var[u], self._low[u], self._high[u]
        else:
            var, u0, u1 = self._var[v], u, u
        if vlvl <= ulvl:
            v0, v1 = self._low[v], self._high[v]
        else:
            v0, v1 = v, v
        result = self._mk(var, self.apply_xor(u0, v0), self.apply_xor(u1, v1))
        self._cache[key] = result
        return result

    def apply_diff(self, u: int, v: int) -> int:
        """``u AND NOT v``."""
        return self.apply_and(u, self.apply_not(v))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f*g + !f*h``."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return self.apply_not(f)
        key = ("ite", f, g, h)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(f), self._level(g), self._level(h))
        var = self._level2var[level]
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        result = self._mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._cache[key] = result
        return result

    def _cofactors_at(self, u: int, level: int) -> Tuple[int, int]:
        if self._level(u) == level:
            return self._low[u], self._high[u]
        return u, u

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def exists(self, u: int, variables: Iterable) -> int:
        """Existential quantification of ``variables`` out of ``u``."""
        qvars = self._intern_vars(variables)
        if not qvars:
            return u
        return self._exists(u, qvars)

    def _exists(self, u: int, qvars: FrozenSet[int]) -> int:
        if u <= ONE:
            return u
        var = self._var[u]
        key = ("ex", u, qvars)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        low, high = self._low[u], self._high[u]
        if var in qvars:
            result = self.apply_or(self._exists(low, qvars),
                                   self._exists(high, qvars))
        else:
            result = self._mk(var, self._exists(low, qvars),
                              self._exists(high, qvars))
        self._cache[key] = result
        return result

    def forall(self, u: int, variables: Iterable) -> int:
        """Universal quantification: ``NOT exists(NOT u)``."""
        return self.apply_not(self.exists(self.apply_not(u), variables))

    def and_exists(self, u: int, v: int, variables: Iterable) -> int:
        """Relational product ``exists(variables, u AND v)`` in one pass.

        The conjunction ``u AND v`` is never materialized: a single
        recursion conjoins and quantifies simultaneously, memoized in a
        dedicated operation cache.  Quantified variables are eliminated as
        the recursion passes their levels; once the recursion has descended
        below the deepest quantified variable the remaining subproblem is a
        plain conjunction and is delegated to :meth:`apply_and` (whose
        operands at that point are strict subfunctions, not ``u AND v``).
        """
        qvars = self._intern_vars(variables)
        self.ae_calls += 1
        if not qvars:
            return self.apply_and(u, v)
        qbottom = max(self._var2level[var] for var in qvars)
        return self._and_exists(u, v, qvars, qbottom)

    def _and_exists(self, u: int, v: int, qvars: FrozenSet[int],
                    qbottom: int) -> int:
        if u == ZERO or v == ZERO:
            return ZERO
        if u == ONE and v == ONE:
            return ONE
        if u == ONE:
            return self._exists(v, qvars)
        if v == ONE or u == v:
            return self._exists(u, qvars)
        if u > v:
            u, v = v, u
        ulvl, vlvl = self._level(u), self._level(v)
        level = min(ulvl, vlvl)
        if level > qbottom:
            # Every quantified variable has been passed: what remains is a
            # pure conjunction of subfunctions.
            return self.apply_and(u, v)
        key = (u, v, qvars)
        cached = self._ae_cache.get(key)
        if cached is not None:
            self.ae_cache_hits += 1
            return cached
        self.ae_recursions += 1
        var = self._level2var[level]
        u0, u1 = self._cofactors_at(u, level)
        v0, v1 = self._cofactors_at(v, level)
        if var in qvars:
            r0 = self._and_exists(u0, v0, qvars, qbottom)
            if r0 == ONE:
                result = ONE
            else:
                result = self.apply_or(
                    r0, self._and_exists(u1, v1, qvars, qbottom))
        else:
            result = self._mk(var,
                              self._and_exists(u0, v0, qvars, qbottom),
                              self._and_exists(u1, v1, qvars, qbottom))
        self._ae_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Cofactor, rename, toggle, compose
    # ------------------------------------------------------------------

    def cube(self, assignment: Dict) -> int:
        """Build the conjunction of literals from ``{var: bool}``."""
        result = ONE
        items = sorted(((self.var_index(v), bool(val))
                        for v, val in assignment.items()),
                       key=lambda item: -self._var2level[item[0]])
        for var, value in items:
            if value:
                result = self._mk(var, ZERO, result)
            else:
                result = self._mk(var, result, ZERO)
        return result

    def cofactor(self, u: int, assignment: Dict) -> int:
        """Restrict ``u`` by the partial assignment ``{var: bool}``."""
        values = {self.var_index(v): bool(val)
                  for v, val in assignment.items()}
        if not values:
            return u
        key_vals = tuple(sorted(values.items()))
        return self._cofactor(u, values, key_vals)

    def _cofactor(self, u: int, values: Dict[int, bool], key_vals) -> int:
        if u <= ONE:
            return u
        var = self._var[u]
        key = ("cof", u, key_vals)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if var in values:
            child = self._high[u] if values[var] else self._low[u]
            result = self._cofactor(child, values, key_vals)
        else:
            result = self._mk(var,
                              self._cofactor(self._low[u], values, key_vals),
                              self._cofactor(self._high[u], values, key_vals))
        self._cache[key] = result
        return result

    def rename(self, u: int, mapping: Dict) -> int:
        """Rename variables of ``u`` according to ``{old: new}``.

        The mapping must be level-monotone on the support of ``u``: the
        relative order of the renamed variables must match the relative
        order of the originals.  This is sufficient for the symbolic image
        computations in this package, where current/next variables are
        interleaved.  A non-monotone mapping raises :class:`BDDError`.
        """
        varmap = {self.var_index(old): self.var_index(new)
                  for old, new in mapping.items()}
        support = self.support(u)
        pairs = sorted(
            ((self._var2level[v], self._var2level[varmap.get(v, v)])
             for v in support),
            key=lambda pair: pair[0])
        new_levels = [dst for _, dst in pairs]
        if any(b <= a for a, b in zip(new_levels, new_levels[1:])):
            raise BDDError("rename mapping is not monotone in the variable "
                           f"order: {mapping!r}")
        key_map = tuple(sorted(varmap.items()))
        return self._rename(u, varmap, key_map)

    def _rename(self, u: int, varmap: Dict[int, int], key_map) -> int:
        if u <= ONE:
            return u
        key = ("ren", u, key_map)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        result = self._mk(varmap.get(var, var),
                          self._rename(self._low[u], varmap, key_map),
                          self._rename(self._high[u], varmap, key_map))
        self._cache[key] = result
        return result

    def toggle(self, u: int, variables: Iterable) -> int:
        """Substitute ``var -> NOT var`` for each variable.

        This is the paper's Section 5.2 operation: firing a transition under
        a Gray-style encoding amounts to toggling the variables whose codes
        differ, which "interchanges the then and else arcs" of the affected
        nodes.
        """
        tvars = self._intern_vars(variables)
        if not tvars:
            return u
        return self._toggle(u, tvars)

    def _toggle(self, u: int, tvars: FrozenSet[int]) -> int:
        if u <= ONE:
            return u
        key = ("tog", u, tvars)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        low = self._toggle(self._low[u], tvars)
        high = self._toggle(self._high[u], tvars)
        if var in tvars:
            result = self._mk(var, high, low)
        else:
            result = self._mk(var, low, high)
        self._cache[key] = result
        return result

    def restrict_cm(self, u: int, care: int) -> int:
        """Coudert-Madre generalized cofactor (sibling substitution).

        Returns a function ``r`` with ``r AND care == u AND care`` that is
        usually smaller than ``u``: branches outside the care set are
        replaced by their siblings.  Used to simplify traversal frontiers
        against the already-reached set.
        """
        if care == ZERO:
            raise BDDError("care set must not be empty")
        return self._restrict_cm(u, care)

    def _restrict_cm(self, u: int, care: int) -> int:
        if care == ONE or u <= ONE:
            return u
        key = ("rcm", u, care)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, clvl = self._level(u), self._level(care)
        if clvl < ulvl:
            # u does not depend on the care set's top variable.
            result = self._restrict_cm(
                u, self.apply_or(self._low[care], self._high[care]))
        else:
            var = self._var[u]
            if ulvl < clvl:
                c0 = c1 = care
            else:
                c0, c1 = self._low[care], self._high[care]
            if c0 == ZERO:
                result = self._restrict_cm(self._high[u], c1)
            elif c1 == ZERO:
                result = self._restrict_cm(self._low[u], c0)
            else:
                result = self._mk(var,
                                  self._restrict_cm(self._low[u], c0),
                                  self._restrict_cm(self._high[u], c1))
        self._cache[key] = result
        return result

    def compose(self, u: int, var, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``u``."""
        index = self.var_index(var)
        xg = self.apply_and(g, self._restrict1(u, index))
        xng = self.apply_and(self.apply_not(g), self._restrict0(u, index))
        return self.apply_or(xg, xng)

    def _restrict0(self, u: int, var: int) -> int:
        return self.cofactor(u, {var: False})

    def _restrict1(self, u: int, var: int) -> int:
        return self.cofactor(u, {var: True})

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def eval_node(self, u: int, assignment: Dict) -> bool:
        """Evaluate ``u`` under a total assignment ``{var: bool}``."""
        values = {self.var_index(v): bool(val)
                  for v, val in assignment.items()}
        while u > ONE:
            u = self._high[u] if values[self._var[u]] else self._low[u]
        return u == ONE

    def satcount(self, u: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables."""
        if nvars is None:
            nvars = self.num_vars
        if nvars < len(self.support(u)):
            raise BDDError("nvars smaller than support size")
        bottom = len(self._var2level)
        memo: Dict[int, int] = {ZERO: 0, ONE: 1}

        def count(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            level = self._level(node)
            low, high = self._low[node], self._high[node]
            total = (count(low) * (1 << (self._level(low) - level - 1)) +
                     count(high) * (1 << (self._level(high) - level - 1)))
            memo[node] = total
            return total

        # Count over the full variable order, then rescale to nvars.
        full = count(u) * (1 << self._level(u))
        if nvars >= bottom:
            return full << (nvars - bottom)
        return full >> (bottom - nvars)

    def sat_one(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment, or None if ``u`` is ZERO."""
        if u == ZERO:
            return None
        cube: Dict[int, bool] = {}
        while u > ONE:
            if self._low[u] != ZERO:
                cube[self._var[u]] = False
                u = self._low[u]
            else:
                cube[self._var[u]] = True
                u = self._high[u]
        return cube

    def iter_cubes(self, u: int) -> Iterator[Dict[int, bool]]:
        """Iterate over the cubes (partial assignments) of ``u``."""
        if u == ZERO:
            return
        if u == ONE:
            yield {}
            return
        var = self._var[u]
        for value, child in ((False, self._low[u]), (True, self._high[u])):
            for sub in self.iter_cubes(child):
                cube = {var: value}
                cube.update(sub)
                yield cube

    def iter_minterms(self, u: int,
                      variables: Optional[List[int]] = None
                      ) -> Iterator[Dict[int, bool]]:
        """Iterate over total assignments (over ``variables``) satisfying u."""
        if variables is None:
            variables = list(range(self.num_vars))
        variables = [self.var_index(v) for v in variables]

        def expand(cube: Dict[int, bool], remaining: List[int]
                   ) -> Iterator[Dict[int, bool]]:
            if not remaining:
                yield dict(cube)
                return
            var = remaining[0]
            rest = remaining[1:]
            if var in cube:
                yield from expand(cube, rest)
            else:
                for value in (False, True):
                    cube[var] = value
                    yield from expand(cube, rest)
                del cube[var]

        for cube in self.iter_cubes(u):
            missing = [v for v in variables]
            yield from expand(dict(cube), missing)

    def __repr__(self) -> str:
        return (f"<BDD vars={self.num_vars} live_nodes={self.live_nodes()} "
                f"order={self.order()!r}>")
