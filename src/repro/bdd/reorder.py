"""Dynamic variable reordering by sifting (Rudell, 1993).

The paper applies dynamic reordering "at each iteration" of the symbolic
traversal; this module provides the sifting pass used for that, built on
:meth:`repro.bdd.manager.BDD.swap_levels`.

Sifting moves one variable at a time through the whole order, keeping the
position that minimizes the number of live nodes, subject to a growth bound
that aborts clearly losing directions early.
"""

from __future__ import annotations

from typing import List, Optional

from .manager import BDD


def sift(bdd: BDD, max_growth: float = 1.2,
         max_vars: Optional[int] = None) -> int:
    """Run one sifting pass over the variables of ``bdd``.

    Variables are processed from the largest unique table to the smallest
    (the classic heuristic: big levels have the most to gain).  Each
    variable is swapped to every position; the best position seen is kept.
    A direction is abandoned when the total live node count exceeds
    ``max_growth`` times the size when the variable started moving.

    Parameters
    ----------
    max_growth:
        Growth bound for abandoning a direction.
    max_vars:
        If given, only the ``max_vars`` largest levels are sifted.

    Returns the number of live nodes after the pass.
    """
    bdd.collect_garbage()
    num = bdd.num_vars
    if num < 2:
        return bdd.live_nodes()

    by_size = sorted(range(num), key=lambda v: -len(bdd._unique[v]))
    if max_vars is not None:
        by_size = by_size[:max_vars]

    for var in by_size:
        _sift_one(bdd, var, max_growth)
    return bdd.live_nodes()


def _sift_one(bdd: BDD, var: int, max_growth: float) -> None:
    num = bdd.num_vars
    start_level = bdd.level_of_var(var)
    start_size = bdd.live_nodes()
    limit = int(start_size * max_growth) + 1

    best_size = start_size
    best_level = start_level

    # Choose the cheaper direction first: fewer levels to traverse.
    go_down_first = (num - 1 - start_level) <= start_level

    level = start_level
    if go_down_first:
        level, best_level, best_size = _walk_down(
            bdd, var, level, best_level, best_size, limit)
        level, best_level, best_size = _walk_up(
            bdd, var, level, best_level, best_size, limit)
    else:
        level, best_level, best_size = _walk_up(
            bdd, var, level, best_level, best_size, limit)
        level, best_level, best_size = _walk_down(
            bdd, var, level, best_level, best_size, limit)

    # Return to the best position seen.
    while level < best_level:
        bdd.swap_levels(level)
        level += 1
    while level > best_level:
        bdd.swap_levels(level - 1)
        level -= 1


def _walk_down(bdd: BDD, var: int, level: int, best_level: int,
               best_size: int, limit: int):
    num = bdd.num_vars
    while level < num - 1:
        bdd.swap_levels(level)
        level += 1
        size = bdd.live_nodes()
        if size < best_size:
            best_size = size
            best_level = level
        if size > limit:
            break
    return level, best_level, best_size


def _walk_up(bdd: BDD, var: int, level: int, best_level: int,
             best_size: int, limit: int):
    while level > 0:
        bdd.swap_levels(level - 1)
        level -= 1
        size = bdd.live_nodes()
        if size < best_size:
            best_size = size
            best_level = level
        if size > limit:
            break
    return level, best_level, best_size


def sift_to_convergence(bdd: BDD, max_growth: float = 1.2,
                        max_passes: int = 8) -> int:
    """Repeat sifting passes until the live node count stops improving."""
    size = sift(bdd, max_growth)
    for _ in range(max_passes - 1):
        new_size = sift(bdd, max_growth)
        if new_size >= size:
            return new_size
        size = new_size
    return size


def random_order(bdd: BDD, seed: int = 0) -> List[int]:
    """A deterministic pseudo-random variable order (for experiments)."""
    import random

    rng = random.Random(seed)
    order = list(range(bdd.num_vars))
    rng.shuffle(order)
    return order
