"""Dynamic variable reordering — re-exported from the shared kernel.

The sifting and group-sifting passes now live in
:mod:`repro.dd.reorder`, generic over every manager built on
:class:`repro.dd.manager.DDManager` (both :class:`repro.bdd.manager.BDD`
and :class:`repro.bdd.zdd.ZDD`).  This module remains as the historical
import location.
"""

from ..dd.reorder import (_exchange_blocks, _normalize_blocks, _sift_blocks,
                          _sift_one, _sift_one_block, random_order, sift,
                          sift_to_convergence)

__all__ = ["sift", "sift_to_convergence", "random_order"]

# Internal helpers re-exported for the white-box reorder tests.
_ = (_exchange_blocks, _normalize_blocks, _sift_blocks, _sift_one,
     _sift_one_block)
