"""Zero-suppressed decision diagrams (Minato, 1993).

ZDDs represent families of sets compactly when most elements are absent
from most sets — exactly the sparsity of one-variable-per-place Petri-net
markings, which is why Yoneda et al. proposed them as the baseline the
paper compares against (Table 4).

Terminals: ``EMPTY = 0`` is the empty family and ``BASE = 1`` is the family
containing only the empty set.  The reduction rule differs from BDDs: a
node whose *high* child is ``EMPTY`` is suppressed (replaced by its low
child), so elements absent from a set cost no nodes.

Besides the set-family algebra (union/intersect/diff) and the per-element
firing primitives (``subset0/1``, ``change``), the manager carries the
relational core mirroring :class:`repro.bdd.manager.BDD`: ``product``
(Minato's set join), ``exists``/``project`` onto a variable subset,
``supset`` containment filtering, an order-monotone ``rename``, and a
fused ``and_exists`` — ``exists(product(u, v), vars)`` in one recursion,
memoized in its own operation cache with call/cache-hit counters.  These
are what :class:`repro.symbolic.zdd_relational.ZddRelationalNet` builds
its partitioned transition relations on.

The manager shares the :class:`repro.dd.manager.DDManager` kernel with
the BDD manager, which gives it the full lifecycle machinery the old
fixed-order ZDD lacked: exact reference counting with cascading frees
(``ref``/``deref``), garbage collection, element/level indirection,
Rudell adjacent-level swaps, dynamic (group) sifting and reorder hooks.
Every family operation therefore compares *levels*, never raw element
indices — element indices stay stable across reordering exactly as BDD
variable indices do.  Raw-node-id callers that must survive a garbage
collection protect their roots with :meth:`DDManager.ref`.
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, Iterable, Iterator, List, Mapping,
                    Tuple)

from ..dd.manager import DDError, DDManager

EMPTY = 0
BASE = 1


class ZDDError(DDError):
    """Raised for invalid ZDD operations."""


class ZDD(DDManager):
    """A ZDD manager over a universe of elements.

    Parameters
    ----------
    var_names:
        Optional initial list of element names; the initial element
        order is the list order.
    auto_reorder:
        If true, sifting is triggered automatically when the number of
        live nodes crosses a growing threshold (checked only at safe
        points, i.e. :meth:`DDManager.checkpoint`).
    reorder_threshold:
        Live-node threshold for the automatic sifting trigger.
    """

    _error_class = ZDDError
    _var_prefix = "e"

    # ------------------------------------------------------------------
    # Kernel hooks: the zero-suppression rule
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        if high == EMPTY:
            return low
        return self._node(var, low, high)

    def _is_reduced(self, low: int, high: int) -> bool:
        return high != EMPTY

    def _swap_cofactors(self, child: int, lower: int) -> Tuple[int, int]:
        if self._var[child] == lower:
            return self._low[child], self._high[child]
        # Zero-suppression: a skipped element is absent from every set.
        return child, EMPTY

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Historical alias for :meth:`DDManager.clear_caches`."""
        self.clear_caches()

    def total_nodes(self) -> int:
        """High-water node-slot count (plus the 2 terminals).

        Before the shared kernel this equaled "nodes ever created"; with
        garbage collection, freed slots are recycled, so this is the
        peak simultaneous allocation — still the memory-column metric
        the benchmarks report for a manager that never collected.
        """
        return len(self._var)

    # ------------------------------------------------------------------
    # Family construction
    # ------------------------------------------------------------------

    def empty(self) -> int:
        """The empty family."""
        return EMPTY

    def base(self) -> int:
        """The family containing only the empty set."""
        return BASE

    def singleton(self, elements: Iterable) -> int:
        """The family containing exactly one set with the given elements."""
        members = sorted({self.var_index(e) for e in elements},
                         key=lambda var: self._var2level[var], reverse=True)
        node = BASE
        for var in members:
            node = self._mk(var, EMPTY, node)
        return node

    def from_sets(self, family: Iterable[Iterable]) -> int:
        """Build a ZDD from an iterable of sets of elements."""
        node = EMPTY
        for members in family:
            node = self.union(node, self.singleton(members))
        return node

    def to_sets(self, u: int) -> List[FrozenSet[int]]:
        """The family as a list of frozensets of element *indices*.

        ``to_sets``/``iter_sets`` consistently speak indices; use
        :meth:`to_name_sets`/:meth:`iter_name_sets` for element names.
        """
        return list(self.iter_sets(u))

    def iter_sets(self, u: int) -> Iterator[FrozenSet[int]]:
        """Iterate the sets of the family as frozensets of element indices."""
        if u == EMPTY:
            return
        if u == BASE:
            yield frozenset()
            return
        var = self._var[u]
        yield from self.iter_sets(self._low[u])
        for members in self.iter_sets(self._high[u]):
            yield members | {var}

    def to_name_sets(self, u: int) -> List[FrozenSet[str]]:
        """The family as a list of frozensets of element *names*."""
        return list(self.iter_name_sets(u))

    def iter_name_sets(self, u: int) -> Iterator[FrozenSet[str]]:
        """Iterate the sets of the family as frozensets of element names."""
        for members in self.iter_sets(u):
            yield frozenset(self._names[v] for v in members)

    # ------------------------------------------------------------------
    # Set-family algebra
    # ------------------------------------------------------------------

    def union(self, u: int, v: int) -> int:
        if u == EMPTY:
            return v
        if v == EMPTY or u == v:
            return u
        if u > v:
            u, v = v, u
        key = ("u", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl < vlvl:
            result = self._mk(self._var[u],
                              self.union(self._low[u], v), self._high[u])
        elif vlvl < ulvl:
            result = self._mk(self._var[v],
                              self.union(u, self._low[v]), self._high[v])
        else:
            result = self._mk(self._var[u],
                              self.union(self._low[u], self._low[v]),
                              self.union(self._high[u], self._high[v]))
        self._cache[key] = result
        return result

    def intersect(self, u: int, v: int) -> int:
        if u == EMPTY or v == EMPTY:
            return EMPTY
        if u == v:
            return u
        if u > v:
            u, v = v, u
        key = ("i", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl < vlvl:
            result = self.intersect(self._low[u], v)
        elif vlvl < ulvl:
            result = self.intersect(u, self._low[v])
        else:
            result = self._mk(self._var[u],
                              self.intersect(self._low[u], self._low[v]),
                              self.intersect(self._high[u], self._high[v]))
        self._cache[key] = result
        return result

    def diff(self, u: int, v: int) -> int:
        if u == EMPTY or u == v:
            return EMPTY
        if v == EMPTY:
            return u
        key = ("d", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl < vlvl:
            result = self._mk(self._var[u],
                              self.diff(self._low[u], v), self._high[u])
        elif vlvl < ulvl:
            result = self.diff(u, self._low[v])
        else:
            result = self._mk(self._var[u],
                              self.diff(self._low[u], self._low[v]),
                              self.diff(self._high[u], self._high[v]))
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Element operations (the Petri-net firing primitives)
    # ------------------------------------------------------------------

    def subset1(self, u: int, var) -> int:
        """Sets containing ``var``, with ``var`` removed from each."""
        target = self.var_index(var)
        return self._subset1(u, target, self._var2level[target])

    def _subset1(self, u: int, target: int, tlevel: int) -> int:
        if u <= BASE or self._level(u) > tlevel:
            return EMPTY
        if self._var[u] == target:
            return self._high[u]
        key = ("s1", u, target)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[u],
                          self._subset1(self._low[u], target, tlevel),
                          self._subset1(self._high[u], target, tlevel))
        self._cache[key] = result
        return result

    def subset0(self, u: int, var) -> int:
        """Sets not containing ``var``."""
        target = self.var_index(var)
        return self._subset0(u, target, self._var2level[target])

    def _subset0(self, u: int, target: int, tlevel: int) -> int:
        if u <= BASE or self._level(u) > tlevel:
            return u
        if self._var[u] == target:
            return self._low[u]
        key = ("s0", u, target)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[u],
                          self._subset0(self._low[u], target, tlevel),
                          self._subset0(self._high[u], target, tlevel))
        self._cache[key] = result
        return result

    def change(self, u: int, var) -> int:
        """Toggle membership of ``var`` in every set of the family."""
        target = self.var_index(var)
        return self._change(u, target, self._var2level[target])

    def _change(self, u: int, target: int, tlevel: int) -> int:
        if u == EMPTY:
            return EMPTY
        if self._level(u) > tlevel:
            return self._mk(target, EMPTY, u)
        if self._var[u] == target:
            return self._mk(target, self._high[u], self._low[u])
        key = ("ch", u, target)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._mk(self._var[u],
                          self._change(self._low[u], target, tlevel),
                          self._change(self._high[u], target, tlevel))
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Relational core (the ZddRelationalNet primitives)
    # ------------------------------------------------------------------

    def product(self, u: int, v: int) -> int:
        """Minato's set join: ``{a | b : a in u, b in v}``.

        The ZDD analog of conjunction for sparse cube sets: joining a
        family of markings with a cube of produced tokens deposits the
        tokens into every marking in one cached pass.
        """
        if u == EMPTY or v == EMPTY:
            return EMPTY
        if u == BASE:
            return v
        if v == BASE:
            return u
        if u > v:
            u, v = v, u
        key = ("*", u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ulvl, vlvl = self._level(u), self._level(v)
        if ulvl < vlvl:
            result = self._mk(self._var[u],
                              self.product(self._low[u], v),
                              self.product(self._high[u], v))
        elif vlvl < ulvl:
            result = self._mk(self._var[v],
                              self.product(u, self._low[v]),
                              self.product(u, self._high[v]))
        else:
            # (l1 + x h1)(l2 + x h2) = l1 l2 + x (h1 h2 + h1 l2 + l1 h2)
            low = self.product(self._low[u], self._low[v])
            high = self.union(
                self.product(self._high[u], self._high[v]),
                self.union(self.product(self._high[u], self._low[v]),
                           self.product(self._low[u], self._high[v])))
            result = self._mk(self._var[u], low, high)
        self._cache[key] = result
        return result

    def exists(self, u: int, variables: Iterable) -> int:
        """Abstract ``variables`` away: ``{s - variables : s in u}``.

        The family analog of boolean existential quantification — sets
        differing only on the quantified elements collapse to one.
        """
        targets = self._intern_vars(variables)
        if not targets:
            return u
        bottom = max(self._var2level[t] for t in targets)
        return self._exists(u, targets, bottom)

    def _exists(self, u: int, targets: FrozenSet[int], bottom: int) -> int:
        if u <= BASE or self._level(u) > bottom:
            # Below the deepest quantified element nothing changes.
            return u
        key = ("ex", u, targets)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        low = self._exists(self._low[u], targets, bottom)
        high = self._exists(self._high[u], targets, bottom)
        if var in targets:
            result = self.union(low, high)
        else:
            result = self._mk(var, low, high)
        self._cache[key] = result
        return result

    def project(self, u: int, variables: Iterable) -> int:
        """Project onto ``variables``: ``{s & variables : s in u}``.

        The complement view of :meth:`exists` — everything *outside* the
        kept subset is quantified away.
        """
        keep = self._intern_vars(variables)
        return self._project(u, keep)

    def _project(self, u: int, keep: FrozenSet[int]) -> int:
        if u <= BASE:
            return u
        key = ("pj", u, keep)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        low = self._project(self._low[u], keep)
        high = self._project(self._high[u], keep)
        if var in keep:
            result = self._mk(var, low, high)
        else:
            result = self.union(low, high)
        self._cache[key] = result
        return result

    def supset(self, u: int, variables: Iterable) -> int:
        """Containment filter: the sets of ``u`` containing every element
        of ``variables`` (membership intact — nothing is stripped).

        This is the enabling test of the relational image: markings that
        hold all of a transition's input tokens.
        """
        want = tuple(sorted(self._intern_vars(variables),
                            key=lambda var: self._var2level[var]))
        return self._supset(u, want, 0)

    def _supset(self, u: int, want: Tuple[int, ...], idx: int) -> int:
        if idx == len(want):
            return u
        target = want[idx]
        if u <= BASE or self._level(u) > self._var2level[target]:
            return EMPTY
        key = ("sup", u, want, idx)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = self._var[u]
        if var == target:
            result = self._mk(var, EMPTY,
                              self._supset(self._high[u], want, idx + 1))
        else:
            result = self._mk(var,
                              self._supset(self._low[u], want, idx),
                              self._supset(self._high[u], want, idx))
        self._cache[key] = result
        return result

    def rename(self, u: int, mapping: Mapping) -> int:
        """Re-label elements along an order-monotone map.

        ``mapping`` sends source elements (indices or names) to target
        elements; elements outside its domain keep their label.  The map
        must be strictly increasing along the element *order* — the
        current levels, not the raw indices — (raises :class:`ZDDError`
        otherwise) so the diagram can be rebuilt in one bottom-up pass.
        A set that ends up with a renamed element on an untouched
        element's label collapses by plain set semantics (the label
        appears once).
        """
        pairs = tuple(sorted(
            ((self.var_index(src), self.var_index(dst))
             for src, dst in mapping.items()),
            key=lambda pair: self._var2level[pair[0]]))
        previous = -1
        for _, dst in pairs:
            if self._var2level[dst] <= previous:
                raise ZDDError(
                    f"rename map is not order-monotone: {pairs}")
            previous = self._var2level[dst]
        if not pairs:
            return u
        return self._rename(u, pairs, dict(pairs))

    def _rename(self, u: int, pairs: Tuple[Tuple[int, int], ...],
                lookup: Dict[int, int]) -> int:
        if u <= BASE:
            return u
        key = ("rn", u, pairs)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        var = lookup.get(self._var[u], self._var[u])
        vlevel = self._var2level[var]
        low = self._rename(self._low[u], pairs, lookup)
        high = self._rename(self._high[u], pairs, lookup)
        if (low <= BASE or vlevel < self._level(low)) \
                and (high <= BASE or vlevel < self._level(high)):
            result = self._mk(var, low, high)
        else:
            # A renamed element crossed an untouched one inside this
            # subtree (e.g. next(p) landing on p's level while sibling
            # sets keep a bare p): rebuild by set algebra instead of a
            # raw node — product() inserts the label at its proper level
            # and collapses duplicates.
            result = self.union(
                low, self.product(self._mk(var, EMPTY, BASE), high))
        self._cache[key] = result
        return result

    def and_exists(self, u: int, v: int, variables: Iterable) -> int:
        """Fused relational product ``exists(product(u, v), variables)``.

        The join ``product(u, v)`` is never materialized: one recursion
        joins and abstracts simultaneously, memoized in a dedicated
        operation cache — the ZDD mirror of
        :meth:`repro.bdd.manager.BDD.and_exists`.  Equivalently (and how
        the property suite pins it down),
        ``and_exists(u, v, qvars) == project(product(u, v), keep)`` for
        ``keep`` the complement of ``qvars``.
        """
        qvars = self._intern_vars(variables)
        self.ae_calls += 1
        if not qvars:
            return self.product(u, v)
        qbottom = max(self._var2level[var] for var in qvars)
        return self._and_exists(u, v, qvars, qbottom)

    def _and_exists(self, u: int, v: int, qvars: FrozenSet[int],
                    qbottom: int) -> int:
        if u == EMPTY or v == EMPTY:
            return EMPTY
        if u == BASE and v == BASE:
            return BASE
        if u > v:
            u, v = v, u
        ulvl, vlvl = self._level(u), self._level(v)
        if min(ulvl, vlvl) > qbottom:
            # Every quantified element has been passed: what remains is
            # a plain join of subfamilies.
            return self.product(u, v)
        key = (u, v, qvars)
        cached = self._ae_cache.get(key)
        if cached is not None:
            self.ae_cache_hits += 1
            return cached
        self.ae_recursions += 1
        if ulvl < vlvl:
            var, u0, u1, v0, v1 = self._var[u], self._low[u], \
                self._high[u], v, EMPTY
        elif vlvl < ulvl:
            var, u0, u1, v0, v1 = self._var[v], u, EMPTY, \
                self._low[v], self._high[v]
        else:
            var, u0, u1, v0, v1 = self._var[u], self._low[u], \
                self._high[u], self._low[v], self._high[v]
        low = self._and_exists(u0, v0, qvars, qbottom)
        high = self.union(
            self._and_exists(u1, v1, qvars, qbottom),
            self.union(self._and_exists(u1, v0, qvars, qbottom),
                       self._and_exists(u0, v1, qvars, qbottom)))
        if var in qvars:
            result = self.union(low, high)
        else:
            result = self._mk(var, low, high)
        self._ae_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def count(self, u: int) -> int:
        """Number of sets in the family."""
        memo: Dict[int, int] = {EMPTY: 0, BASE: 1}

        def rec(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            total = rec(self._low[node]) + rec(self._high[node])
            memo[node] = total
            return total

        return rec(u)

    def contains(self, u: int, members: Iterable) -> bool:
        """Membership test for one set."""
        want = sorted({self.var_index(e) for e in members},
                      key=lambda var: self._var2level[var])
        node = u
        for var in want:
            tlevel = self._var2level[var]
            while node > BASE and self._level(node) < tlevel:
                node = self._low[node]
            if node <= BASE or self._var[node] != var:
                return False
            node = self._high[node]
        while node > BASE:
            node = self._low[node]
        return node == BASE

    def __repr__(self) -> str:
        return (f"<ZDD elements={self.num_vars} "
                f"live_nodes={self.live_nodes()}>")
