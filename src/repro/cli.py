"""Command-line interface: analyze, encode and generate Petri nets.

Subcommands
-----------

``generate <family> <size>``
    Emit a benchmark net in the ``.pnet`` text format.

``info <net.pnet>``
    Structure report: sizes, class predicates, P/T-invariants, SMCs.

``encode <net.pnet>``
    Build an encoding and print its variable/code summary.

``analyze <net.pnet>``
    Symbolic reachability + deadlock check under a chosen encoding.

``batch <requests.jsonl>``
    Run a batch of analysis requests through the
    :class:`~repro.service.AnalysisService` (result cache, in-flight
    dedupe, warm worker pool) and emit one JSON response line per
    request with per-request cache telemetry.

``serve``
    The same loop, long-lived, over stdin/stdout: one JSONL request in,
    one JSON response out, until EOF.

Request lines for ``batch``/``serve`` name a net by file or family and
optionally override spec fields::

    {"id": "q1", "net": "muller4.pnet"}
    {"id": "q2", "family": "phil", "n": 6, "spec": {"backend": "zdd"}}

Examples
--------

::

    python -m repro.cli generate muller 4 -o muller4.pnet
    python -m repro.cli info muller4.pnet
    python -m repro.cli encode muller4.pnet --scheme improved
    python -m repro.cli analyze muller4.pnet --scheme improved --engine bdd
    python -m repro.cli analyze muller4.pnet --image chained --cluster-size 8
    python -m repro.cli analyze muller4.pnet --engine zdd --image chained
    python -m repro.cli analyze --net phil --n 6 --backend portfolio
    python -m repro.cli analyze --net phil --n 8 --checkpoint run.ckpt
    python -m repro.cli analyze --net phil --n 8 --checkpoint run.ckpt \
        --resume

``analyze`` exit codes: 0 success, 1 portfolio race failure, 2 bad
spec, 3 partial result (a ``--node-budget`` / ``--deadline`` resource
budget was exhausted; the printed marking count is a lower bound).
``batch``/``serve`` exit 0 when every request succeeded, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .analysis import (DEFAULT_PORTFOLIO_MEMBERS, PORTFOLIO_MEMBERS,
                       RELATIONAL_ENGINES, Analysis, AnalysisSpec,
                       PortfolioError, SpecError)
from .encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from .encoding.improved import encoding_variable_summary
from .petri import find_smcs
from .petri.classes import classify
from .petri.generators import (dme_circuit, dme_spec, figure1_net,
                               jj_register, muller, philosophers,
                               slotted_ring)
from .petri.invariants import (invariant_support,
                               minimal_semipositive_invariants,
                               minimal_semipositive_t_invariants)
from .petri.parser import dumps, load

FAMILIES = {
    "muller": muller,
    "phil": philosophers,
    "slot": slotted_ring,
    "dmespec": dme_spec,
    "dmecir": dme_circuit,
}
SCHEMES = {
    "sparse": SparseEncoding,
    "dense": DenseEncoding,
    "improved": ImprovedEncoding,
}


def _cluster_size(value: str):
    """Parse ``--cluster-size``: a positive integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"cluster size must be >= 1, got {size}")
    return size


def _workers(value: str):
    """Parse ``--workers``: a positive integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {count}")
    return count


def _service_workers(value: str):
    """Parse a service ``--workers``: a non-negative integer or
    ``auto`` (0 skips worker processes; every miss solves serially)."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer or 'auto', got {value!r}")
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0, got {count}")
    return count


def _add_service_arguments(sub) -> None:
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persistent result-cache directory (omitted: "
                          "memory-only cache for this run)")
    sub.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="per-key checkpoint directory: cache misses "
                          "run with an injected checkpoint path and "
                          "resume=True, so a re-solved key resumes its "
                          "finished fixpoint instead of cold-starting")
    sub.add_argument("--workers", type=_service_workers, default="auto",
                     help="worker-pool size (a non-negative integer or "
                          "'auto' for the CPU count; 0 solves every "
                          "request serially in-process)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic Petri-net analysis with dense SMC encodings "
                    "(Pastor & Cortadella, DATE 1998)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a benchmark net")
    gen.add_argument("family", choices=sorted(FAMILIES) + ["jjreg"])
    gen.add_argument("size", type=int,
                     help="family size (cells/stations/stages; bits for "
                          "jjreg)")
    gen.add_argument("-o", "--output", default=None,
                     help="output path (stdout when omitted)")
    gen.add_argument("--variant", default="a", choices=["a", "b"],
                     help="jjreg variant")

    info = sub.add_parser("info", help="structural report for a .pnet file")
    info.add_argument("net", help="path to a .pnet file")
    info.add_argument("--invariants", action="store_true",
                      help="also enumerate minimal P- and T-invariants")

    enc = sub.add_parser("encode", help="print an encoding summary")
    enc.add_argument("net", help="path to a .pnet file")
    enc.add_argument("--scheme", default="improved",
                     choices=sorted(SCHEMES))

    ana = sub.add_parser("analyze", help="symbolic reachability analysis")
    ana.add_argument("net_file", nargs="?", default=None,
                     metavar="net.pnet",
                     help="path to a .pnet file (or generate a "
                          "benchmark in-process with --net/--n)")
    ana.add_argument("--net", default=None, metavar="FAMILY",
                     choices=sorted(FAMILIES) + ["figure1", "jjreg"],
                     help="generate a benchmark family instead of "
                          "reading a file (size via --n)")
    ana.add_argument("--n", type=int, default=None, metavar="SIZE",
                     help="family size for --net (cells/stations/"
                          "stages; bits for jjreg; ignored for figure1)")
    ana.add_argument("--scheme", default="improved",
                     choices=sorted(SCHEMES))
    ana.add_argument("--engine", "--backend", dest="engine",
                     default="bdd", choices=["bdd", "zdd", "portfolio"],
                     help="solver backend: a decision-diagram family, "
                          "or 'portfolio' to race heterogeneous member "
                          "configurations in worker processes and "
                          "answer with the first verdict")
    ana.add_argument("--strategy", default="chaining",
                     choices=["bfs", "chaining"])
    ana.add_argument("--image", default=None,
                     choices=["functional"] + list(RELATIONAL_ENGINES),
                     help="image computation: the renaming-free functional "
                          "operators or a relational product engine over "
                          "partitioned transition relations (with "
                          "--engine zdd, 'functional' selects the classic "
                          "per-transition rewrite and the relational "
                          "names select the sparse ZDD relational "
                          "engines); when omitted, each backend's default "
                          "from AnalysisSpec applies (functional for bdd, "
                          "chained for zdd)")
    ana.add_argument("--cluster-size", type=_cluster_size, default=None,
                     help="transitions per partition block for the "
                          "partitioned/chained image engines (a positive "
                          "integer, or 'auto' for adaptive support-overlap "
                          "clustering, the default)")
    ana.add_argument("--workers", type=_workers, default=None,
                     help="worker-process pool size for --image "
                          "partitioned-mp (a positive integer, or "
                          "'auto' for the CPU count capped at the "
                          "block count); with --engine portfolio it "
                          "sizes the bdd-partitioned-mp member's pool")
    ana.add_argument("--portfolio-members", default=None,
                     metavar="M1,M2,...",
                     help="comma-separated member ids for the portfolio "
                          "race (default: "
                          + ",".join(DEFAULT_PORTFOLIO_MEMBERS) + "; "
                          "available: " + ",".join(PORTFOLIO_MEMBERS)
                          + ")")
    ana.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="global wall-clock budget for the portfolio "
                          "race; past it the race fails with every "
                          "member's status")
    ana.add_argument("--member-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-worker wall-clock budget for the "
                          "portfolio race; a member past it is "
                          "terminated and the race continues with the "
                          "survivors")
    ana.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="checkpoint the fixpoint state to this file "
                          "(written atomically at safe points; with "
                          "--engine portfolio each member checkpoints "
                          "to PATH.<member>)")
    ana.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="N",
                     help="checkpoint at most once per N completed "
                          "iterations (default 1 with --checkpoint)")
    ana.add_argument("--resume", action="store_true",
                     help="resume from the checkpoint at --checkpoint "
                          "PATH when it matches this net and "
                          "configuration; any damaged or mismatched "
                          "checkpoint falls back to a cold start "
                          "(reported, never fatal)")
    ana.add_argument("--node-budget", type=int, default=None,
                     metavar="N",
                     help="abort at a safe point once the manager holds "
                          "more than N live nodes even after forced GC "
                          "and reordering; the run returns a partial "
                          "result (exit code 3) and, with --checkpoint, "
                          "a final checkpoint to resume from")
    ana.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget for a single-engine run, "
                          "checked at safe points; past it the run "
                          "returns a partial result (exit code 3); "
                          "for the portfolio race use --timeout / "
                          "--member-timeout instead")
    ana.add_argument("--k-bound", type=int, default=None, metavar="K",
                     help="analyze the net as k-bounded with "
                          "ceil(log2(k+1)) count bits per place (the "
                          "paper's unsafe-net extension; BDD backend "
                          "only)")
    ana.add_argument("--chain-order", default="support",
                     choices=["net", "support"],
                     help="sweep order for the chaining strategy")
    ana.add_argument("--no-reorder", action="store_true",
                     help="disable dynamic variable reordering (the BDD "
                          "and ZDD managers share one sifting kernel and "
                          "both sift at traversal safe points by default; "
                          "ZDD relational engines sift in current/next "
                          "pair groups)")
    ana.add_argument("--simplify-frontier", action="store_true",
                     help="simplify the frontier by its Coudert-Madre "
                          "restriction against frontier | ~reached before "
                          "each image computation (BDD engines; applied "
                          "once per step and only to frontiers large "
                          "enough to profit)")
    ana.add_argument("--deadlocks", action="store_true",
                     help="also report reachable deadlocks")

    batch = sub.add_parser(
        "batch", help="run a JSONL request batch through the analysis "
                      "service (cache + dedupe + worker pool)")
    batch.add_argument("requests", metavar="requests.jsonl",
                       help="request file, one JSON object per line "
                            "('-' reads stdin)")
    batch.add_argument("-o", "--output", default=None,
                       help="response file (stdout when omitted)")
    _add_service_arguments(batch)
    batch.add_argument("--kill-worker-after", type=int, default=None,
                       metavar="N",
                       help="fault-injection hook: after N responses "
                            "have been emitted, SIGKILL one live pool "
                            "worker (the batch must still complete via "
                            "respawn or serial fallback)")

    serve = sub.add_parser(
        "serve", help="long-lived service loop: JSONL requests on "
                      "stdin, JSON responses on stdout, until EOF")
    _add_service_arguments(serve)
    return parser


def _cmd_generate(args) -> int:
    if args.family == "jjreg":
        net = jj_register(args.variant, bits=args.size)
    else:
        net = FAMILIES[args.family](args.size)
    text = dumps(net)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {net.name!r} ({len(net.places)} places, "
              f"{len(net.transitions)} transitions) to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_info(args) -> int:
    net = load(args.net)
    net.validate()
    print(f"net {net.name!r}: {len(net.places)} places, "
          f"{len(net.transitions)} transitions, "
          f"{sum(1 for _ in net.arcs())} arcs")
    print(f"initial marking: {net.initial_marking!r}")
    for label, value in classify(net).items():
        print(f"  {label}: {value}")
    components = find_smcs(net)
    covered = set()
    for component in components:
        covered.update(component.places)
    print(f"single-token SMCs: {len(components)} "
          f"(covering {len(covered)}/{len(net.places)} places)")
    for component in components:
        print(f"  {component!r}")
    if args.invariants:
        print("minimal semi-positive P-invariants:")
        for weights in minimal_semipositive_invariants(net):
            print(f"  {invariant_support(net, weights)}")
        print("minimal semi-positive T-invariants:")
        for weights in minimal_semipositive_t_invariants(net):
            support = tuple(t for t, w in zip(net.transitions, weights)
                            if w > 0)
            print(f"  {support}")
    return 0


def _cmd_encode(args) -> int:
    net = load(args.net)
    encoding = SCHEMES[args.scheme](net)
    print(f"{args.scheme} encoding of {net.name!r}: "
          f"{encoding.num_variables} variables for "
          f"{len(net.places)} places")
    if hasattr(encoding, "components"):
        print(encoding_variable_summary(encoding))
    else:
        print(encoding.describe())
    return 0


def _resolve_analyze_net(args):
    """The analyzed net: a ``.pnet`` file or an in-process generator."""
    if args.net_file is not None and args.net is not None:
        raise SpecError("give either a net.pnet file or --net, not both")
    if args.net_file is not None:
        return load(args.net_file)
    if args.net is None:
        raise SpecError("no net given: pass a net.pnet file or "
                        "--net FAMILY [--n SIZE]")
    if args.net == "figure1":
        return figure1_net()
    if args.n is None:
        raise SpecError(f"--net {args.net} needs a size (--n)")
    if args.net == "jjreg":
        return jj_register("a", bits=args.n)
    return FAMILIES[args.net](args.n)


def _cmd_analyze(args) -> int:
    try:
        net = _resolve_analyze_net(args)
        spec = AnalysisSpec.from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.deadlocks and spec.engine_id != "functional":
        print("deadlocks: only supported with --engine bdd "
              "--image functional", file=sys.stderr)
        return 2
    # Inapplicable options come back as structured SpecWarning objects;
    # rendering them is the CLI's job, not the spec's.
    for warning in spec.warnings():
        print(f"warning: {warning.render()}", file=sys.stderr)
    analysis = Analysis(net, spec)
    try:
        result = analysis.run()
    except PortfolioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for failure in exc.failures:
            member = failure.member or "<queue>"
            print(f"  {member}: {failure.kind} — {failure.detail}",
                  file=sys.stderr)
        return 1
    # Every BDD run applies the scheme (the relational engines encode
    # with it too); only zdd and k-bounded build their own encoding.
    scheme = f"scheme={spec.scheme} " \
        if spec.backend == "bdd" and spec.k_bound is None else ""
    print(f"engine={spec.backend} {scheme}image={result.engine} "
          f"variables={result.variables} "
          f"markings={result.markings} "
          f"nodes={result.final_nodes} "
          f"peak={result.peak_nodes} "
          f"iterations={result.iterations} "
          f"time={result.seconds:.2f}s")
    resume = result.extras.get("resume")
    if resume is not None:
        if resume["status"] == "resumed":
            print(f"resume: continued from {resume['path']} at "
                  f"iteration {resume['iteration']}")
        else:
            print(f"resume: cold start ({resume['reason']}: "
                  f"{resume['error']})", file=sys.stderr)
    if spec.backend == "portfolio":
        race = result.extras["portfolio"]
        print(f"portfolio: winner={race['winner']} mode={race['mode']}")
        for member in race["members"]:
            clock = (f" {member['seconds']:.2f}s"
                     if member["seconds"] is not None else "")
            attempts = (f" (attempt {member['attempts']})"
                        if member.get("attempts", 1) > 1 else "")
            print(f"  {member['member']}: {member['outcome']}"
                  f"{clock}{attempts}")
        for retry in race.get("retries", ()):
            print(f"  {retry['member']}: retried after "
                  f"{retry['reason']} — resuming attempt "
                  f"{retry['attempt'] + 1} from {retry['checkpoint']}")
        for failure in race["failures"]:
            member = failure["member"] or "<queue>"
            print(f"  {member}: {failure['kind']} — {failure['detail']}")
    if result.status == "partial":
        budget = result.extras.get("budget", {})
        ladder = []
        if budget.get("gc_freed") is not None:
            ladder.append(f"gc freed {budget['gc_freed']}")
        if budget.get("reorder_forced"):
            ladder.append("forced reorder")
        tried = f" after {', '.join(ladder)}" if ladder else ""
        print(f"partial: {budget.get('kind', 'budget')} budget "
              f"exhausted{tried}; the marking count is a lower bound"
              + (f"; resume from {spec.checkpoint_path}"
                 if spec.checkpoint_path else ""),
              file=sys.stderr)
    if args.deadlocks:
        report = analysis.checker().find_deadlocks()
        if report.holds:
            print(f"deadlocks: {report.detail}; witness "
                  f"{sorted(report.witness.support)}")
        else:
            print("deadlocks: none reachable")
    return 3 if result.status == "partial" else 0


# ----------------------------------------------------------------------
# The service front ends: batch and serve
# ----------------------------------------------------------------------

def _request_net(request: Dict[str, Any]):
    """Resolve one request line's net: a ``.pnet`` path or a family."""
    if "net" in request:
        return load(request["net"])
    family = request.get("family")
    if family == "figure1":
        return figure1_net()
    if family == "jjreg":
        return jj_register(request.get("variant", "a"),
                           bits=int(request["n"]))
    if family in FAMILIES:
        if "n" not in request:
            raise SpecError(f"family {family!r} needs a size ('n')")
        return FAMILIES[family](int(request["n"]))
    raise SpecError(
        f"request names no net: give 'net' (a .pnet path) or 'family' "
        f"(one of {sorted(FAMILIES) + ['figure1', 'jjreg']})")


def _parse_request(line: str, index: int):
    """One JSONL request line -> (id, net, spec)."""
    request = json.loads(line)
    if not isinstance(request, dict):
        raise SpecError("request line must be a JSON object")
    request_id = request.get("id", index)
    spec_fields = request.get("spec") or {}
    if not isinstance(spec_fields, dict):
        raise SpecError("'spec' must be a JSON object of field "
                        "overrides")
    return request_id, _request_net(request), \
        AnalysisSpec.from_dict(spec_fields)


def _request_line_id(line: str, index: int):
    """The id a failed request line should be reported under.

    The user-supplied ``"id"`` whenever the line parses as a JSON
    object carrying one — a missing net file or bad spec must not
    break request/response correlation — and the positional
    ``line-{index}`` fallback only when the JSON itself is unusable.
    """
    try:
        request = json.loads(line)
    except ValueError:
        return f"line-{index}"
    if isinstance(request, dict) and "id" in request:
        return request["id"]
    return f"line-{index}"


def _error_response(request_id, kind: str, detail: str) -> Dict[str, Any]:
    return {"id": request_id, "status": "error",
            "error": {"kind": kind, "detail": detail}}


def _resolve_response(request_id, handle) -> Dict[str, Any]:
    """Block on one handle; wrap the outcome in a response envelope.

    Service telemetry rides in the envelope, never inside ``result`` —
    a cache hit's payload stays bit-identical to the original solve's.
    """
    from .service import ServiceError
    try:
        payload = handle.result_dict()
    except ServiceError as exc:
        response = _error_response(request_id, exc.kind, str(exc))
        response["service"] = handle.info
        return response
    return {"id": request_id, "status": "ok", "service": handle.info,
            "result": payload}


def _kill_one_worker(service) -> Optional[int]:
    """SIGKILL one live pool worker (the batch fault-injection hook)."""
    import os
    import signal
    pids = service.pool.worker_pids()
    if not pids:
        return None
    os.kill(pids[0], signal.SIGKILL)
    return pids[0]


def _cmd_batch(args) -> int:
    from .service import AnalysisService
    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.requests, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    out = open(args.output, "w", encoding="utf-8") if args.output \
        else sys.stdout
    failed = 0
    try:
        with AnalysisService(cache_dir=args.cache_dir,
                             workers=args.workers,
                             checkpoint_dir=args.checkpoint_dir) \
                as service:
            # Submit everything first: duplicates within the batch
            # dedupe against the in-flight solve instead of waiting
            # for its cache entry.
            handles = []
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    request_id, net, spec = _parse_request(line, index)
                except (ValueError, SpecError, OSError, KeyError) as exc:
                    error_id = _request_line_id(line, index)
                    handles.append((error_id, None,
                                    _error_response(
                                        error_id,
                                        type(exc).__name__, str(exc))))
                    continue
                try:
                    handles.append(
                        (request_id, service.submit(net, spec), None))
                except Exception as exc:
                    handles.append((request_id, None,
                                    _error_response(
                                        request_id, type(exc).__name__,
                                        str(exc))))
            if args.kill_worker_after == 0:
                _kill_one_worker(service)
            emitted = 0
            for request_id, handle, response in handles:
                if response is None:
                    response = _resolve_response(request_id, handle)
                if response["status"] != "ok":
                    failed += 1
                out.write(json.dumps(response, sort_keys=True) + "\n")
                out.flush()
                emitted += 1
                if args.kill_worker_after == emitted:
                    _kill_one_worker(service)
            stats = service.stats()
            print(f"batch: {emitted} responses, {failed} failed; "
                  f"cache hits {stats['cache_hits']} "
                  f"(memory {stats['cache']['hits_memory']}, "
                  f"disk {stats['cache']['hits_disk']}), "
                  f"dedup {stats['dedup_hits']}, "
                  f"pool solves {stats['pool_solves']}, "
                  f"serial solves {stats['serial_solves']}, "
                  f"pool mode {stats['pool']['mode']}",
                  file=sys.stderr)
    finally:
        if out is not sys.stdout:
            out.close()
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    from .service import AnalysisService
    failed = 0
    with AnalysisService(cache_dir=args.cache_dir, workers=args.workers,
                         checkpoint_dir=args.checkpoint_dir) as service:
        for index, line in enumerate(sys.stdin):
            if not line.strip():
                continue
            try:
                request_id, net, spec = _parse_request(line, index)
                response = _resolve_response(request_id,
                                             service.submit(net, spec))
            except (ValueError, SpecError, OSError, KeyError) as exc:
                response = _error_response(
                    _request_line_id(line, index),
                    type(exc).__name__, str(exc))
            if response["status"] != "ok":
                failed += 1
            sys.stdout.write(json.dumps(response, sort_keys=True) + "\n")
            sys.stdout.flush()
        stats = service.stats()
        print(f"serve: {stats['submits']} requests, {failed} failed; "
              f"cache hits {stats['cache_hits']}, "
              f"dedup {stats['dedup_hits']}", file=sys.stderr)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "encode": _cmd_encode,
        "analyze": _cmd_analyze,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
