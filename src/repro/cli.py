"""Command-line interface: analyze, encode and generate Petri nets.

Subcommands
-----------

``generate <family> <size>``
    Emit a benchmark net in the ``.pnet`` text format.

``info <net.pnet>``
    Structure report: sizes, class predicates, P/T-invariants, SMCs.

``encode <net.pnet>``
    Build an encoding and print its variable/code summary.

``analyze <net.pnet>``
    Symbolic reachability + deadlock check under a chosen encoding.

Examples
--------

::

    python -m repro.cli generate muller 4 -o muller4.pnet
    python -m repro.cli info muller4.pnet
    python -m repro.cli encode muller4.pnet --scheme improved
    python -m repro.cli analyze muller4.pnet --scheme improved --engine bdd
    python -m repro.cli analyze muller4.pnet --image chained --cluster-size 8
    python -m repro.cli analyze muller4.pnet --engine zdd --image chained
    python -m repro.cli analyze --net phil --n 6 --backend portfolio
    python -m repro.cli analyze --net phil --n 8 --checkpoint run.ckpt
    python -m repro.cli analyze --net phil --n 8 --checkpoint run.ckpt \
        --resume

``analyze`` exit codes: 0 success, 1 portfolio race failure, 2 bad
spec, 3 partial result (a ``--node-budget`` / ``--deadline`` resource
budget was exhausted; the printed marking count is a lower bound).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (DEFAULT_PORTFOLIO_MEMBERS, PORTFOLIO_MEMBERS,
                       RELATIONAL_ENGINES, Analysis, AnalysisSpec,
                       PortfolioError, SpecError)
from .encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from .encoding.improved import encoding_variable_summary
from .petri import find_smcs
from .petri.classes import classify
from .petri.generators import (dme_circuit, dme_spec, figure1_net,
                               jj_register, muller, philosophers,
                               slotted_ring)
from .petri.invariants import (invariant_support,
                               minimal_semipositive_invariants,
                               minimal_semipositive_t_invariants)
from .petri.parser import dumps, load

FAMILIES = {
    "muller": muller,
    "phil": philosophers,
    "slot": slotted_ring,
    "dmespec": dme_spec,
    "dmecir": dme_circuit,
}
SCHEMES = {
    "sparse": SparseEncoding,
    "dense": DenseEncoding,
    "improved": ImprovedEncoding,
}


def _cluster_size(value: str):
    """Parse ``--cluster-size``: a positive integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"cluster size must be >= 1, got {size}")
    return size


def _workers(value: str):
    """Parse ``--workers``: a positive integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 1, got {count}")
    return count


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic Petri-net analysis with dense SMC encodings "
                    "(Pastor & Cortadella, DATE 1998)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit a benchmark net")
    gen.add_argument("family", choices=sorted(FAMILIES) + ["jjreg"])
    gen.add_argument("size", type=int,
                     help="family size (cells/stations/stages; bits for "
                          "jjreg)")
    gen.add_argument("-o", "--output", default=None,
                     help="output path (stdout when omitted)")
    gen.add_argument("--variant", default="a", choices=["a", "b"],
                     help="jjreg variant")

    info = sub.add_parser("info", help="structural report for a .pnet file")
    info.add_argument("net", help="path to a .pnet file")
    info.add_argument("--invariants", action="store_true",
                      help="also enumerate minimal P- and T-invariants")

    enc = sub.add_parser("encode", help="print an encoding summary")
    enc.add_argument("net", help="path to a .pnet file")
    enc.add_argument("--scheme", default="improved",
                     choices=sorted(SCHEMES))

    ana = sub.add_parser("analyze", help="symbolic reachability analysis")
    ana.add_argument("net_file", nargs="?", default=None,
                     metavar="net.pnet",
                     help="path to a .pnet file (or generate a "
                          "benchmark in-process with --net/--n)")
    ana.add_argument("--net", default=None, metavar="FAMILY",
                     choices=sorted(FAMILIES) + ["figure1", "jjreg"],
                     help="generate a benchmark family instead of "
                          "reading a file (size via --n)")
    ana.add_argument("--n", type=int, default=None, metavar="SIZE",
                     help="family size for --net (cells/stations/"
                          "stages; bits for jjreg; ignored for figure1)")
    ana.add_argument("--scheme", default="improved",
                     choices=sorted(SCHEMES))
    ana.add_argument("--engine", "--backend", dest="engine",
                     default="bdd", choices=["bdd", "zdd", "portfolio"],
                     help="solver backend: a decision-diagram family, "
                          "or 'portfolio' to race heterogeneous member "
                          "configurations in worker processes and "
                          "answer with the first verdict")
    ana.add_argument("--strategy", default="chaining",
                     choices=["bfs", "chaining"])
    ana.add_argument("--image", default=None,
                     choices=["functional"] + list(RELATIONAL_ENGINES),
                     help="image computation: the renaming-free functional "
                          "operators or a relational product engine over "
                          "partitioned transition relations (with "
                          "--engine zdd, 'functional' selects the classic "
                          "per-transition rewrite and the relational "
                          "names select the sparse ZDD relational "
                          "engines); when omitted, each backend's default "
                          "from AnalysisSpec applies (functional for bdd, "
                          "chained for zdd)")
    ana.add_argument("--cluster-size", type=_cluster_size, default=None,
                     help="transitions per partition block for the "
                          "partitioned/chained image engines (a positive "
                          "integer, or 'auto' for adaptive support-overlap "
                          "clustering, the default)")
    ana.add_argument("--workers", type=_workers, default=None,
                     help="worker-process pool size for --image "
                          "partitioned-mp (a positive integer, or "
                          "'auto' for the CPU count capped at the "
                          "block count); with --engine portfolio it "
                          "sizes the bdd-partitioned-mp member's pool")
    ana.add_argument("--portfolio-members", default=None,
                     metavar="M1,M2,...",
                     help="comma-separated member ids for the portfolio "
                          "race (default: "
                          + ",".join(DEFAULT_PORTFOLIO_MEMBERS) + "; "
                          "available: " + ",".join(PORTFOLIO_MEMBERS)
                          + ")")
    ana.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="global wall-clock budget for the portfolio "
                          "race; past it the race fails with every "
                          "member's status")
    ana.add_argument("--member-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-worker wall-clock budget for the "
                          "portfolio race; a member past it is "
                          "terminated and the race continues with the "
                          "survivors")
    ana.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="checkpoint the fixpoint state to this file "
                          "(written atomically at safe points; with "
                          "--engine portfolio each member checkpoints "
                          "to PATH.<member>)")
    ana.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="N",
                     help="checkpoint at most once per N completed "
                          "iterations (default 1 with --checkpoint)")
    ana.add_argument("--resume", action="store_true",
                     help="resume from the checkpoint at --checkpoint "
                          "PATH when it matches this net and "
                          "configuration; any damaged or mismatched "
                          "checkpoint falls back to a cold start "
                          "(reported, never fatal)")
    ana.add_argument("--node-budget", type=int, default=None,
                     metavar="N",
                     help="abort at a safe point once the manager holds "
                          "more than N live nodes even after forced GC "
                          "and reordering; the run returns a partial "
                          "result (exit code 3) and, with --checkpoint, "
                          "a final checkpoint to resume from")
    ana.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock budget for a single-engine run, "
                          "checked at safe points; past it the run "
                          "returns a partial result (exit code 3); "
                          "for the portfolio race use --timeout / "
                          "--member-timeout instead")
    ana.add_argument("--k-bound", type=int, default=None, metavar="K",
                     help="analyze the net as k-bounded with "
                          "ceil(log2(k+1)) count bits per place (the "
                          "paper's unsafe-net extension; BDD backend "
                          "only)")
    ana.add_argument("--chain-order", default="support",
                     choices=["net", "support"],
                     help="sweep order for the chaining strategy")
    ana.add_argument("--no-reorder", action="store_true",
                     help="disable dynamic variable reordering (the BDD "
                          "and ZDD managers share one sifting kernel and "
                          "both sift at traversal safe points by default; "
                          "ZDD relational engines sift in current/next "
                          "pair groups)")
    ana.add_argument("--simplify-frontier", action="store_true",
                     help="simplify the frontier by its Coudert-Madre "
                          "restriction against frontier | ~reached before "
                          "each image computation (BDD engines; applied "
                          "once per step and only to frontiers large "
                          "enough to profit)")
    ana.add_argument("--deadlocks", action="store_true",
                     help="also report reachable deadlocks")
    return parser


def _cmd_generate(args) -> int:
    if args.family == "jjreg":
        net = jj_register(args.variant, bits=args.size)
    else:
        net = FAMILIES[args.family](args.size)
    text = dumps(net)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {net.name!r} ({len(net.places)} places, "
              f"{len(net.transitions)} transitions) to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_info(args) -> int:
    net = load(args.net)
    net.validate()
    print(f"net {net.name!r}: {len(net.places)} places, "
          f"{len(net.transitions)} transitions, "
          f"{sum(1 for _ in net.arcs())} arcs")
    print(f"initial marking: {net.initial_marking!r}")
    for label, value in classify(net).items():
        print(f"  {label}: {value}")
    components = find_smcs(net)
    covered = set()
    for component in components:
        covered.update(component.places)
    print(f"single-token SMCs: {len(components)} "
          f"(covering {len(covered)}/{len(net.places)} places)")
    for component in components:
        print(f"  {component!r}")
    if args.invariants:
        print("minimal semi-positive P-invariants:")
        for weights in minimal_semipositive_invariants(net):
            print(f"  {invariant_support(net, weights)}")
        print("minimal semi-positive T-invariants:")
        for weights in minimal_semipositive_t_invariants(net):
            support = tuple(t for t, w in zip(net.transitions, weights)
                            if w > 0)
            print(f"  {support}")
    return 0


def _cmd_encode(args) -> int:
    net = load(args.net)
    encoding = SCHEMES[args.scheme](net)
    print(f"{args.scheme} encoding of {net.name!r}: "
          f"{encoding.num_variables} variables for "
          f"{len(net.places)} places")
    if hasattr(encoding, "components"):
        print(encoding_variable_summary(encoding))
    else:
        print(encoding.describe())
    return 0


def _resolve_analyze_net(args):
    """The analyzed net: a ``.pnet`` file or an in-process generator."""
    if args.net_file is not None and args.net is not None:
        raise SpecError("give either a net.pnet file or --net, not both")
    if args.net_file is not None:
        return load(args.net_file)
    if args.net is None:
        raise SpecError("no net given: pass a net.pnet file or "
                        "--net FAMILY [--n SIZE]")
    if args.net == "figure1":
        return figure1_net()
    if args.n is None:
        raise SpecError(f"--net {args.net} needs a size (--n)")
    if args.net == "jjreg":
        return jj_register("a", bits=args.n)
    return FAMILIES[args.net](args.n)


def _cmd_analyze(args) -> int:
    try:
        net = _resolve_analyze_net(args)
        spec = AnalysisSpec.from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.deadlocks and spec.engine_id != "functional":
        print("deadlocks: only supported with --engine bdd "
              "--image functional", file=sys.stderr)
        return 2
    # Inapplicable options come back as structured SpecWarning objects;
    # rendering them is the CLI's job, not the spec's.
    for warning in spec.warnings():
        print(f"warning: {warning.render()}", file=sys.stderr)
    analysis = Analysis(net, spec)
    try:
        result = analysis.run()
    except PortfolioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for failure in exc.failures:
            member = failure.member or "<queue>"
            print(f"  {member}: {failure.kind} — {failure.detail}",
                  file=sys.stderr)
        return 1
    # Every BDD run applies the scheme (the relational engines encode
    # with it too); only zdd and k-bounded build their own encoding.
    scheme = f"scheme={spec.scheme} " \
        if spec.backend == "bdd" and spec.k_bound is None else ""
    print(f"engine={spec.backend} {scheme}image={result.engine} "
          f"variables={result.variables} "
          f"markings={result.markings} "
          f"nodes={result.final_nodes} "
          f"peak={result.peak_nodes} "
          f"iterations={result.iterations} "
          f"time={result.seconds:.2f}s")
    resume = result.extras.get("resume")
    if resume is not None:
        if resume["status"] == "resumed":
            print(f"resume: continued from {resume['path']} at "
                  f"iteration {resume['iteration']}")
        else:
            print(f"resume: cold start ({resume['reason']}: "
                  f"{resume['error']})", file=sys.stderr)
    if spec.backend == "portfolio":
        race = result.extras["portfolio"]
        print(f"portfolio: winner={race['winner']} mode={race['mode']}")
        for member in race["members"]:
            clock = (f" {member['seconds']:.2f}s"
                     if member["seconds"] is not None else "")
            attempts = (f" (attempt {member['attempts']})"
                        if member.get("attempts", 1) > 1 else "")
            print(f"  {member['member']}: {member['outcome']}"
                  f"{clock}{attempts}")
        for retry in race.get("retries", ()):
            print(f"  {retry['member']}: retried after "
                  f"{retry['reason']} — resuming attempt "
                  f"{retry['attempt'] + 1} from {retry['checkpoint']}")
        for failure in race["failures"]:
            member = failure["member"] or "<queue>"
            print(f"  {member}: {failure['kind']} — {failure['detail']}")
    if result.status == "partial":
        budget = result.extras.get("budget", {})
        ladder = []
        if budget.get("gc_freed") is not None:
            ladder.append(f"gc freed {budget['gc_freed']}")
        if budget.get("reorder_forced"):
            ladder.append("forced reorder")
        tried = f" after {', '.join(ladder)}" if ladder else ""
        print(f"partial: {budget.get('kind', 'budget')} budget "
              f"exhausted{tried}; the marking count is a lower bound"
              + (f"; resume from {spec.checkpoint_path}"
                 if spec.checkpoint_path else ""),
              file=sys.stderr)
    if args.deadlocks:
        report = analysis.checker().find_deadlocks()
        if report.holds:
            print(f"deadlocks: {report.detail}; witness "
                  f"{sorted(report.witness.support)}")
        else:
            print("deadlocks: none reachable")
    return 3 if result.status == "partial" else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "encode": _cmd_encode,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
