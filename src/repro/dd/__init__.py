"""Shared decision-diagram kernel.

One node-table / garbage-collection / reordering core under every
diagram flavour in the project:

* :class:`DDManager` — the manager base: parallel node arrays addressed
  by integer ids, per-variable unique tables, an operation-cache
  registry, level/order bookkeeping, exact reference counting with
  cascading frees, garbage collection, Rudell adjacent-level swaps and
  reorder hooks with deferred (batched) notification.
* :func:`sift` / :func:`sift_to_convergence` — dynamic variable
  reordering by (group) sifting, generic over any :class:`DDManager`.
* :class:`DDError` — the common error base
  (:class:`repro.bdd.manager.BDDError` and
  :class:`repro.bdd.zdd.ZDDError` both subclass it).

Subclasses supply only what genuinely differs between diagram kinds:
the reduction rule (:meth:`DDManager._mk`), the cofactor expansion used
by the in-place level swap (:meth:`DDManager._swap_cofactors`) and the
operation algebra itself.  :class:`repro.bdd.manager.BDD` (dense
boolean functions) and :class:`repro.bdd.zdd.ZDD` (zero-suppressed set
families) are the two instantiations — which is how the ZDD manager
gets reference counting, garbage collection, sifting and reorder hooks
from the same code the BDD manager always had.
"""

from .manager import DDError, DDManager, ResourceBudgetExceeded
from .reorder import random_order, sift, sift_to_convergence

__all__ = [
    "DDManager", "DDError", "ResourceBudgetExceeded",
    "sift", "sift_to_convergence", "random_order",
]
