"""The decision-diagram manager base: nodes, tables, GC, reordering.

Every diagram flavour in this project stores nodes the same way — a
record ``(var, low, high)`` in parallel arrays addressed by an integer
id, hash-consed through a per-variable unique table, with slots ``0``
and ``1`` reserved for the two terminals — and shares the same
lifecycle machinery:

* exact internal reference counting with cascading frees
  (:meth:`DDManager.ref` / :meth:`DDManager.deref` /
  :meth:`DDManager.collect_garbage`),
* an operation-cache registry cleared at every safe point,
* variable/level indirection (``var2level`` / ``level2var``) so the
  order can change while node ids stay stable,
* Rudell's in-place adjacent-level swap (:meth:`DDManager.swap_levels`)
  and :meth:`DDManager.set_order`,
* reorder hooks with deferred (batched) notification, and the
  threshold-triggered :meth:`DDManager.checkpoint` that drives garbage
  collection and dynamic sifting at traversal safe points.

What a node *means* — and therefore the reduction rule applied by
:meth:`DDManager._mk` and the cofactor expansion used when two adjacent
levels are exchanged (:meth:`DDManager._swap_cofactors`) — is the
subclass's business:

========================  =========================  =====================
hook                      BDD (boolean functions)    ZDD (set families)
========================  =========================  =====================
``_mk`` reduction         ``low == high -> low``     ``high == 0 -> low``
``_swap_cofactors`` else  ``(child, child)``         ``(child, EMPTY)``
terminals                 ``ZERO`` / ``ONE``         ``EMPTY`` / ``BASE``
``_edge_shift``           ``1`` (complement edges)   ``0`` (plain ids)
========================  =========================  =====================

Since ISSUE 10 the kernel speaks *edges*, not bare node ids.  An edge is
``(node_id << _edge_shift) | attributes``; a manager with
``_edge_shift = 0`` (the ZDD — complement bits would break
zero-suppression canonicity) stores plain node ids and nothing changes,
while the BDD sets ``_edge_shift = 1`` and carries a complement bit in
the edge's low bit, making negation a bit flip.  All shared machinery —
reference counting, cascading frees, the unique tables (which key on
child *edges*), :meth:`swap_levels`, :meth:`support`/:meth:`size`, and
:meth:`assert_consistent` — shifts the attribute bits off before
touching the node arrays.  The canonical form for complement-edge
managers ("else edge never complemented") is the subclass's job to
enforce in ``_mk``; the kernel verifies it during swaps and consistency
checks.

A node's fields may be mutated in place by variable reordering, but the
function/family represented by a node id never changes; external code
can hold ids across reordering as long as it keeps a reference
(:class:`repro.bdd.function.Function` does this automatically; raw-id
callers use :meth:`ref` / :meth:`deref`).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import (Any, Callable, Dict, FrozenSet, Iterable, List,
                    Optional, Sequence, Tuple)

# Recursions descend one level per call; deep orders need deep stacks.
_MIN_RECURSION_LIMIT = 100_000
if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
    sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


#: Default live-node growth factor for the growth-based reorder trigger
#: (see :meth:`DDManager.configure_reorder`): sift when the diagram has
#: doubled since the last reorder.
DEFAULT_REORDER_GROWTH = 2.0

#: Safe-point GC trigger: collect once unique-table occupancy has
#: multiplied by this factor since the last collection.
DEFAULT_GC_GROWTH = 2.0

#: Bit width used to pack a ``(left, right)`` pair of edges into one
#: integer key (``(left << _PACK) | right``) for the unique tables and
#: the hot operation caches.  Int-keyed dicts are exempt from CPython's
#: cycle collector and int keys hash as themselves; 2**40 edges would
#: need terabytes of node storage, so the pack cannot overflow in
#: practice.
_PACK = 40


class DDError(Exception):
    """Base error for invalid decision-diagram manager operations."""


class ResourceBudgetExceeded(DDError):
    """A resource budget could not be met even after degradation.

    Raised from :meth:`DDManager.checkpoint` safe points when the
    manager exhausts its configured live-node budget (after forcing a
    garbage collection and then a reorder pass — the degradation
    ladder) or overruns its wall-clock deadline.  ``kind`` is
    ``"nodes"`` or ``"deadline"``; :meth:`telemetry` returns the
    structured numbers for surfacing in partial results.
    """

    def __init__(self, message: str, *, kind: str,
                 live_nodes: Optional[int] = None,
                 node_budget: Optional[int] = None,
                 elapsed: Optional[float] = None,
                 deadline: Optional[float] = None,
                 gc_freed: Optional[int] = None,
                 reorder_forced: bool = False) -> None:
        super().__init__(message)
        self.kind = kind
        self.live_nodes = live_nodes
        self.node_budget = node_budget
        self.elapsed = elapsed
        self.deadline = deadline
        self.gc_freed = gc_freed
        self.reorder_forced = reorder_forced

    def telemetry(self) -> Dict[str, Any]:
        """JSON-serializable budget numbers (for result extras)."""
        return {
            "kind": self.kind,
            "live_nodes": self.live_nodes,
            "node_budget": self.node_budget,
            "elapsed": self.elapsed,
            "deadline": self.deadline,
            "gc_freed": self.gc_freed,
            "reorder_forced": self.reorder_forced,
        }


class DDManager:
    """Shared manager core: variable order, unique tables, GC, reorder.

    Parameters
    ----------
    var_names:
        Optional initial list of variable names; the initial variable
        order is the list order.
    auto_reorder:
        If true, sifting is triggered automatically when the number of
        live nodes crosses a growing threshold (checked only at safe
        points, i.e. :meth:`checkpoint`).
    reorder_threshold:
        Live-node threshold for the automatic sifting trigger.
    """

    _TERMINAL_VAR = -1
    #: Error class raised by shared machinery; subclasses narrow it.
    _error_class = DDError
    #: Prefix for auto-generated variable names (``x0`` / ``e0`` ...).
    _var_prefix = "x"
    #: Attribute bits carried in an edge's low end: ``0`` for plain
    #: node-id edges (ZDD), ``1`` for a complement bit (BDD).  The
    #: node behind edge ``e`` is always ``e >> _edge_shift``.
    _edge_shift = 0
    #: Whether edges of this manager carry a complement bit.
    complement_edges = False

    def __init__(self, var_names: Optional[Iterable[str]] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        # Parallel node arrays; slots 0/1 are the terminals.
        self._var: List[int] = [self._TERMINAL_VAR, self._TERMINAL_VAR]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._ref: List[int] = [1, 1]
        self._free: List[int] = []

        # unique[var] maps the packed key (low << _PACK) | high to a
        # node id.  Packing the child pair into one integer (instead of
        # a tuple) matters beyond hashing speed: a dict whose keys and
        # values are all plain ints is untracked by CPython's cycle
        # collector, so multi-million-entry unique tables stop being
        # walked on every full collection (tuple-keyed tables made the
        # collector dominate large traversals).
        self._unique: List[Dict[int, int]] = []
        self._var2level: List[int] = []
        self._level2var: List[int] = []
        self._names: List[str] = []
        self._name2var: Dict[str, int] = {}

        # Operation caches.  ``_cache`` serves the general ops; the
        # fused relational product (``and_exists``) is the traversal hot
        # path on both managers and gets its own cache so general ops
        # never evict its entries mid-image (and vice versa).  Both are
        # registered so every safe point clears the full set; subclasses
        # with additional caches call :meth:`register_cache`.
        self._cache: Dict[tuple, int] = {}
        self._ae_cache: Dict[tuple, int] = {}
        self._op_caches: List[Dict] = [self._cache, self._ae_cache]
        self._interned_sets: Dict[FrozenSet[int], FrozenSet[int]] = {}

        # Relational-product instrumentation (read by benchmarks).
        self.ae_calls = 0
        self.ae_recursions = 0
        self.ae_cache_hits = 0

        self.auto_reorder = auto_reorder
        self.reorder_threshold = reorder_threshold
        # Growth-based trigger (used by the ZDD sessions): sift when the
        # live-node count multiplies by ``reorder_growth`` since the
        # last reorder/baseline, once past ``reorder_growth_floor``.
        # ``None`` keeps the fixed threshold as the only trigger.
        self.reorder_growth: Optional[float] = None
        self.reorder_growth_floor: int = 1_000
        self._reorder_baseline: Optional[int] = None
        # Safe-point garbage collection (CUDD-style): operations leave
        # their intermediate nodes in the unique tables at reference
        # count zero, so occupancy grows with *allocations*, not live
        # data.  A checkpoint collects once occupancy has multiplied by
        # ``gc_growth`` since the last collection (amortised O(1) per
        # allocation); ``None`` disables, small tables never bother.
        self.gc_growth: Optional[float] = DEFAULT_GC_GROWTH
        self.gc_growth_floor: int = 8_192
        self._gc_baseline: int = self.gc_growth_floor
        self.reorder_count = 0
        self.gc_count = 0
        self.peak_live_nodes = 0
        # Callbacks invoked whenever the variable order changes — after
        # an explicit :meth:`swap_levels` or :meth:`set_order` and after
        # each sifting pass (batched: one notification per pass, not one
        # per internal swap).  Subscribers refresh any order-derived
        # metadata they cache (see PartitionedNet.refresh_partitions).
        self.reorder_hooks: List[Callable[["DDManager"], None]] = []
        self._reorder_notify_depth = 0
        self._reorder_pending = False
        # Variable groups that must stay adjacent during sifting (e.g.
        # interleaved current/next pairs of a transition relation, which
        # keep rename mappings order-monotone).  ``None`` sifts
        # variables individually.
        self.sift_groups: Optional[Sequence[Tuple[int, ...]]] = None

        # Resource budgets, enforced at safe points only (see
        # :meth:`set_resource_budget` / :meth:`checkpoint`).
        self.node_budget: Optional[int] = None
        self._budget_clock: Callable[[], float] = time.monotonic
        self._budget_started: Optional[float] = None
        self._budget_deadline: Optional[float] = None
        self._deadline_seconds: Optional[float] = None
        self.budget_gc_rescues = 0
        self.budget_reorder_rescues = 0

        if var_names is not None:
            for name in var_names:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create with the subclass's reduction rule applied."""
        raise NotImplementedError

    def _swap_cofactors(self, child: int, lower: int) -> Tuple[int, int]:
        """Cofactors of ``child`` w.r.t. ``lower`` during a level swap.

        Returns ``(without, with)`` — the child's decomposition against
        the lower variable.  For a child labeled ``lower`` both managers
        return its ``(low, high)``; for an unlabeled child the BDD
        duplicates it (independence) while the ZDD pairs it with
        ``EMPTY`` (zero-suppression: the element is absent).
        """
        raise NotImplementedError

    def _is_reduced(self, low: int, high: int) -> bool:
        """Whether a node with these children survives the reduction
        rule (BDD: ``low != high``; ZDD: ``high != EMPTY``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Variables and order
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._var2level)

    def add_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the variable index (stable across reordering).
        """
        var = len(self._var2level)
        if name is None:
            name = f"{self._var_prefix}{var}"
        if name in self._name2var:
            raise self._error_class(f"duplicate variable name: {name!r}")
        self._var2level.append(len(self._level2var))
        self._level2var.append(var)
        self._unique.append({})
        self._names.append(name)
        self._name2var[name] = var
        return var

    def add_vars(self, names: Iterable[str]) -> List[int]:
        """Declare several variables; returns their indices."""
        return [self.add_var(name) for name in names]

    def var_index(self, var) -> int:
        """Normalize a variable reference (index or name) to an index."""
        if isinstance(var, str):
            try:
                return self._name2var[var]
            except KeyError:
                raise self._error_class(
                    f"unknown variable name: {var!r}") from None
        index = int(var)
        if not 0 <= index < self.num_vars:
            raise self._error_class(
                f"variable index out of range: {index}")
        return index

    def var_name(self, var: int) -> str:
        """Name of variable ``var``."""
        return self._names[self.var_index(var)]

    def level_of_var(self, var) -> int:
        """Current level (0 = top) of a variable."""
        return self._var2level[self.var_index(var)]

    def var_at_level(self, level: int) -> int:
        """Variable currently placed at ``level``."""
        return self._level2var[level]

    def order(self) -> List[str]:
        """Variable names from top level to bottom level."""
        return [self._names[v] for v in self._level2var]

    def _level(self, u: int) -> int:
        """Level of node ``u`` (terminals sit below every variable)."""
        var = self._var[u]
        if var < 0:
            return len(self._var2level)
        return self._var2level[var]

    def _intern_vars(self, variables: Iterable) -> FrozenSet[int]:
        fset = frozenset(self.var_index(v) for v in variables)
        return self._interned_sets.setdefault(fset, fset)

    # ------------------------------------------------------------------
    # Node construction and reference counting
    # ------------------------------------------------------------------

    def _node(self, var: int, low: int, high: int) -> int:
        """Find-or-create the (already reduced) node ``(var, low, high)``.

        ``low`` and ``high`` are child *edges*; the returned value is a
        bare node id (the subclass's ``_mk`` shifts it into an edge for
        complement-edge managers).
        """
        table = self._unique[var]
        key = (low << _PACK) | high
        node = table.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._low[node] = low
            self._high[node] = high
            self._ref[node] = 0
        else:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._ref.append(0)
        table[key] = node
        shift = self._edge_shift
        self._ref[low >> shift] += 1
        self._ref[high >> shift] += 1
        return node

    def ref(self, u: int) -> int:
        """Take an external reference on edge ``u``; returns ``u``."""
        self._ref[u >> self._edge_shift] += 1
        return u

    def deref(self, u: int) -> None:
        """Release an external reference on edge ``u`` (no immediate
        free)."""
        node = u >> self._edge_shift
        if self._ref[node] <= 0:
            raise self._error_class(f"reference underflow on node {node}")
        self._ref[node] -= 1

    def _deref_cascade(self, u: int) -> None:
        """Drop a reference on edge ``u``; eagerly free a dead node."""
        node = u >> self._edge_shift
        self._ref[node] -= 1
        if self._ref[node] == 0 and node > 1:
            self._free_node(node)

    def _free_node(self, u: int) -> None:
        """Free node id ``u`` (its children are edges and cascade)."""
        var, low, high = self._var[u], self._low[u], self._high[u]
        del self._unique[var][(low << _PACK) | high]
        self._var[u] = self._TERMINAL_VAR
        self._low[u] = -1
        self._high[u] = -1
        self._free.append(u)
        self._deref_cascade(low)
        self._deref_cascade(high)

    def live_nodes(self) -> int:
        """Number of nodes currently stored in the unique tables (plus 2).

        Also advances :attr:`peak_live_nodes`, so every safe point and
        every sifting step feeds the peak-memory statistic.
        """
        live = 2 + sum(len(table) for table in self._unique)
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live
        return live

    def register_cache(self, cache: Dict) -> Dict:
        """Register an extra operation cache for safe-point clearing."""
        self._op_caches.append(cache)
        return cache

    def clear_caches(self) -> None:
        """Drop every memoized operation result (safe points only).

        Benchmarks call this between timed measurements so one image
        computation cannot warm the caches for the next.
        """
        for cache in self._op_caches:
            cache.clear()

    def collect_garbage(self) -> int:
        """Free every node not reachable from a referenced node.

        Must only be called at a safe point (never while an operation is
        in progress).  Clears the operation caches.  Returns the number
        of nodes freed.
        """
        self.clear_caches()
        before = len(self._free)
        # Cascading frees make this a single scan: any node whose
        # references all come from dead ancestors is freed when the last
        # ancestor is.
        dead = [u for u in range(2, len(self._var))
                if self._ref[u] == 0 and self._var[u] >= 0]
        for u in dead:
            if self._ref[u] == 0 and self._var[u] >= 0:
                self._free_node(u)
        self.gc_count += 1
        return len(self._free) - before

    def configure_reorder(self, auto_reorder: bool,
                          reorder_threshold: int,
                          growth: Optional[float] = None) -> None:
        """Honor a net's reordering request on this manager.

        Enables threshold-triggered sifting when ``auto_reorder`` is
        set — including on a caller-supplied manager, so a net
        constructor's request always wins.  ``growth`` additionally arms
        the growth-based trigger: a safe point sifts when live nodes
        have multiplied by that factor since the last reorder, even if
        the fixed threshold has not been reached yet (the ZDD sessions
        pass this so reordering reacts to the diagram's own growth rate
        rather than one absolute knob).  With ``auto_reorder`` false
        this is a no-op: the manager's own settings (whatever the
        caller configured it with) are left untouched, and the other
        arguments are deliberately ignored.
        """
        if auto_reorder:
            self.auto_reorder = True
            self.reorder_threshold = reorder_threshold
            if growth is not None:
                if growth <= 1.0:
                    raise self._error_class(
                        f"reorder growth factor must exceed 1.0, "
                        f"got {growth}")
                self.reorder_growth = growth
                self._reorder_baseline = None

    def set_resource_budget(self, node_budget: Optional[int] = None,
                            deadline_seconds: Optional[float] = None,
                            clock: Optional[Callable[[], float]] = None
                            ) -> None:
        """Arm resource budgets, enforced at every safe point.

        ``node_budget`` caps the live-node count; past it the safe
        point walks the degradation ladder — force a garbage
        collection, then force a sifting pass — and raises
        :class:`ResourceBudgetExceeded` only if the diagram genuinely
        cannot fit.  ``deadline_seconds`` is a wall-clock allowance
        measured from this call; a safe point past it raises
        immediately (an in-flight operation cannot be preempted, so
        enforcement granularity is one traversal iteration).  ``clock``
        injects a virtual clock for tests.  Passing ``None`` for both
        disarms the budgets.
        """
        if node_budget is not None and node_budget < 1:
            raise self._error_class(
                f"node_budget must be positive, got {node_budget}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise self._error_class(
                f"deadline_seconds must be positive, got "
                f"{deadline_seconds}")
        if clock is not None:
            self._budget_clock = clock
        self.node_budget = node_budget
        self._deadline_seconds = deadline_seconds
        self._budget_started = self._budget_clock()
        self._budget_deadline = (self._budget_started + deadline_seconds
                                 if deadline_seconds is not None else None)

    def checkpoint(self) -> None:
        """Safe point hook: garbage collect, maybe reorder, enforce
        budgets."""
        live = self.live_nodes()
        trigger = False
        if self.auto_reorder:
            if live > self.reorder_threshold:
                trigger = True
            elif self.reorder_growth is not None:
                if self._reorder_baseline is None:
                    self._reorder_baseline = live
                elif (live >= self.reorder_growth_floor
                      and live > self._reorder_baseline
                      * self.reorder_growth):
                    trigger = True
        if trigger:
            self.collect_garbage()
            from .reorder import sift
            sift(self, groups=self.sift_groups)
            self.reorder_threshold = max(self.reorder_threshold,
                                         2 * self.live_nodes())
            self._reorder_baseline = self.live_nodes()
            self._gc_baseline = max(self._reorder_baseline,
                                    self.gc_growth_floor)
            self.reorder_count += 1
        elif (self.gc_growth is not None
              and live >= self.gc_growth_floor
              and live > self._gc_baseline * self.gc_growth):
            # Doubling-style collection: dead intermediates are swept
            # before the table doubles again, so peak occupancy tracks
            # a constant factor of the live data instead of the total
            # allocation count.  (The reorder branch above already
            # collected.)
            self.collect_garbage()
            self._gc_baseline = max(self.live_nodes(),
                                    self.gc_growth_floor)
        self._enforce_budget()

    def _enforce_budget(self) -> None:
        """The degradation ladder behind :meth:`set_resource_budget`.

        Deadline first (no remedial action can buy time back), then the
        node budget: recheck after a forced GC, recheck after a forced
        reorder pass, and only then give up with the full telemetry.
        """
        if self._budget_deadline is not None:
            now = self._budget_clock()
            if now >= self._budget_deadline:
                elapsed = now - self._budget_started
                raise ResourceBudgetExceeded(
                    f"wall-clock deadline exceeded: {elapsed:.3f}s "
                    f"elapsed of a {self._deadline_seconds}s allowance",
                    kind="deadline", elapsed=elapsed,
                    deadline=self._deadline_seconds,
                    live_nodes=self.live_nodes(),
                    node_budget=self.node_budget)
        if self.node_budget is None:
            return
        if self.live_nodes() <= self.node_budget:
            return
        gc_freed = self.collect_garbage()
        if self.live_nodes() <= self.node_budget:
            self.budget_gc_rescues += 1
            return
        from .reorder import sift
        sift(self, groups=self.sift_groups)
        self.reorder_count += 1
        live = self.live_nodes()
        if live <= self.node_budget:
            self.budget_reorder_rescues += 1
            return
        raise ResourceBudgetExceeded(
            f"live-node budget exceeded: {live} live nodes against a "
            f"budget of {self.node_budget} (after forced GC freed "
            f"{gc_freed} nodes and a forced reorder pass)",
            kind="nodes", live_nodes=live, node_budget=self.node_budget,
            gc_freed=gc_freed, reorder_forced=True,
            elapsed=(self._budget_clock() - self._budget_started
                     if self._budget_started is not None else None))

    # ------------------------------------------------------------------
    # Reorder notification
    # ------------------------------------------------------------------

    def add_reorder_hook(self, hook: Callable[["DDManager"], None]) -> None:
        """Register ``hook(manager)`` to run after every order change."""
        self.reorder_hooks.append(hook)

    def remove_reorder_hook(self,
                            hook: Callable[["DDManager"], None]) -> None:
        """Unregister a previously added reorder hook."""
        self.reorder_hooks.remove(hook)

    @contextmanager
    def deferred_reorder_notifications(self):
        """Batch reorder notifications over a block of swaps.

        Sifting performs thousands of :meth:`swap_levels`; firing the
        hooks per swap would be quadratic.  Inside this context the
        notification is only recorded; on exit the hooks fire once if
        any swap happened.
        """
        self._reorder_notify_depth += 1
        try:
            yield self
        finally:
            self._reorder_notify_depth -= 1
            if self._reorder_notify_depth == 0 and self._reorder_pending:
                self._fire_reorder_hooks()

    def _notify_reorder(self) -> None:
        self._reorder_pending = True
        if self._reorder_notify_depth == 0:
            self._fire_reorder_hooks()

    def _fire_reorder_hooks(self) -> None:
        self._reorder_pending = False
        for hook in self.reorder_hooks:
            hook(self)

    # ------------------------------------------------------------------
    # Reordering (Rudell's adjacent-variable swap)
    # ------------------------------------------------------------------

    def swap_levels(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Every node labeled with the upper variable that references the
        lower variable is rewritten in place, preserving node ids (and
        therefore external references).  The cofactor expansion against
        the lower variable — the only place the BDD and ZDD semantics
        differ — is delegated to :meth:`_swap_cofactors`.  Must be
        called at a safe point; the operation caches are cleared.
        """
        if not 0 <= level < len(self._level2var) - 1:
            raise self._error_class(f"cannot swap level {level}")
        self.clear_caches()
        shift = self._edge_shift
        upper = self._level2var[level]
        lower = self._level2var[level + 1]
        upper_table = self._unique[upper]

        for key, node in list(upper_table.items()):
            f0, f1 = key >> _PACK, key & ((1 << _PACK) - 1)
            if (self._var[f0 >> shift] != lower
                    and self._var[f1 >> shift] != lower):
                continue
            f00, f01 = self._swap_cofactors(f0, lower)
            f10, f11 = self._swap_cofactors(f1, lower)
            new_low = self._mk(upper, f00, f10)
            new_high = self._mk(upper, f01, f11)
            # The rewritten node keeps its id, so its new else edge must
            # be regular in complement mode: f00/f10 derive from stored
            # (hence regular) else edges, so _mk cannot have had to
            # complement-normalise here.  Verify rather than trust.
            if shift and (new_low & 1):
                raise self._error_class(
                    "canonical-form violation during swap: "
                    "complemented else edge")
            self._ref[new_low >> shift] += 1
            self._ref[new_high >> shift] += 1
            del upper_table[key]
            if not self._is_reduced(new_low, new_high):
                raise self._error_class(
                    "reduction violation during swap")
            self._var[node] = lower
            self._low[node] = new_low
            self._high[node] = new_high
            new_key = (new_low << _PACK) | new_high
            existing = self._unique[lower].get(new_key)
            if existing is not None:
                raise self._error_class("canonicity violation during swap")
            self._unique[lower][new_key] = node
            self._deref_cascade(f0)
            self._deref_cascade(f1)

        self._level2var[level] = lower
        self._level2var[level + 1] = upper
        self._var2level[lower] = level
        self._var2level[upper] = level + 1
        self._notify_reorder()

    def set_order(self, names_or_vars: Iterable) -> None:
        """Reorder variables to the given top-to-bottom sequence."""
        target = [self.var_index(v) for v in names_or_vars]
        if sorted(target) != list(range(self.num_vars)):
            raise self._error_class(
                "set_order requires a permutation of all variables")
        self.collect_garbage()
        # Selection-sort by repeated adjacent swaps (bubble the right
        # variable up to each level in turn); hooks fire once at the end.
        with self.deferred_reorder_notifications():
            for level, var in enumerate(target):
                current = self._var2level[var]
                while current > level:
                    self.swap_levels(current - 1)
                    current -= 1

    # ------------------------------------------------------------------
    # Structural inspection (reduction-rule independent)
    # ------------------------------------------------------------------

    def support(self, u: int) -> FrozenSet[int]:
        """Set of variables appearing in the DAG rooted at edge ``u``."""
        shift = self._edge_shift
        seen = set()
        variables = set()
        stack = [u >> shift]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node] >> shift)
            stack.append(self._high[node] >> shift)
        return frozenset(variables)

    def size(self, u: int) -> int:
        """Number of nodes in the DAG rooted at edge ``u`` (incl.
        terminals).  Complement-edge managers count shared nodes once
        regardless of the polarity they are reached with."""
        shift = self._edge_shift
        seen = set()
        stack = [u >> shift]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > 1:
                stack.append(self._low[node] >> shift)
                stack.append(self._high[node] >> shift)
        return len(seen)

    def size_many(self, roots: Iterable[int]) -> int:
        """Number of distinct nodes in the DAG spanned by several roots."""
        shift = self._edge_shift
        seen = set()
        stack = [root >> shift for root in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > 1:
                stack.append(self._low[node] >> shift)
                stack.append(self._high[node] >> shift)
        return len(seen)

    # ------------------------------------------------------------------
    # Consistency checking (for tests)
    # ------------------------------------------------------------------

    def assert_consistent(self) -> None:
        """Validate internal invariants (for tests); raises on violation."""
        shift = self._edge_shift
        mask = (1 << _PACK) - 1
        for var, table in enumerate(self._unique):
            for key, node in table.items():
                low, high = key >> _PACK, key & mask
                if self._var[node] != var:
                    raise self._error_class(f"node {node} var mismatch")
                if self._low[node] != low or self._high[node] != high:
                    raise self._error_class(f"node {node} key mismatch")
                if not self._is_reduced(low, high):
                    raise self._error_class(f"node {node} is redundant")
                if shift and (low & 1):
                    raise self._error_class(
                        f"node {node} stores a complemented else edge")
                for child in (low, high):
                    child_node = child >> shift
                    if child_node > 1 and self._var[child_node] < 0:
                        raise self._error_class(
                            f"node {node} references freed child")
                    if child_node > 1 and (
                            self._var2level[self._var[child_node]]
                            <= self._var2level[var]):
                        raise self._error_class(
                            f"node {node} violates ordering")
        # Reference counts: recompute from tables.
        counts = [0] * len(self._var)
        for table in self._unique:
            for key in table:
                counts[(key >> _PACK) >> shift] += 1
                counts[(key & mask) >> shift] += 1
        for u in range(2, len(self._var)):
            if self._var[u] < 0:
                continue
            if counts[u] > self._ref[u]:
                raise self._error_class(
                    f"node {u} undercounted refs "
                    f"({counts[u]} > {self._ref[u]})")

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} vars={self.num_vars} "
                f"live_nodes={self.live_nodes()} order={self.order()!r}>")
