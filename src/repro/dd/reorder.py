"""Dynamic variable reordering by sifting (Rudell, 1993).

The paper applies dynamic reordering "at each iteration" of the symbolic
traversal; this module provides the sifting pass used for that, built on
:meth:`repro.dd.manager.DDManager.swap_levels` — and therefore generic
over every diagram flavour sharing the kernel: the same pass reorders
BDD managers and ZDD managers alike.

Sifting moves one variable (or one variable *group*) at a time through
the whole order, keeping the position that minimizes the number of live
nodes, subject to a growth bound that aborts clearly losing directions
early.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .manager import DDManager


def sift(manager: DDManager, max_growth: float = 1.2,
         max_vars: Optional[int] = None,
         groups: Optional[Sequence[Tuple[int, ...]]] = None) -> int:
    """Run one sifting pass over the variables of ``manager``.

    Variables are processed from the largest unique table to the smallest
    (the classic heuristic: big levels have the most to gain).  Each
    variable is swapped to every position; the best position seen is kept.
    A direction is abandoned when the total live node count exceeds
    ``max_growth`` times the size when the variable started moving.

    Reorder hooks fire once per pass (not per swap), after the pass.

    Parameters
    ----------
    max_growth:
        Growth bound for abandoning a direction.
    max_vars:
        If given, only the ``max_vars`` largest levels (or groups) are
        sifted.
    groups:
        Variable groups (tuples of indices/names) that must stay
        adjacent: each group moves through the order as one block, and
        positions are only evaluated with every block whole.  Variables
        not mentioned in any group sift individually.  This is how a
        relational manager keeps its interleaved current/next pairs —
        and therefore the order-monotonicity of its rename maps —
        intact while still reordering (cf. CUDD's group sifting).

    Returns the number of live nodes after the pass.
    """
    manager.collect_garbage()
    num = manager.num_vars
    if num < 2:
        return manager.live_nodes()

    with manager.deferred_reorder_notifications():
        if groups:
            return _sift_blocks(manager, groups, max_growth, max_vars)

        by_size = sorted(range(num),
                         key=lambda v: -len(manager._unique[v]))
        if max_vars is not None:
            by_size = by_size[:max_vars]

        for var in by_size:
            _sift_one(manager, var, max_growth)
        return manager.live_nodes()


def _sift_one(manager: DDManager, var: int, max_growth: float) -> None:
    num = manager.num_vars
    start_level = manager.level_of_var(var)
    start_size = manager.live_nodes()
    limit = int(start_size * max_growth) + 1

    best_size = start_size
    best_level = start_level

    # Choose the cheaper direction first: fewer levels to traverse.
    go_down_first = (num - 1 - start_level) <= start_level

    level = start_level
    if go_down_first:
        level, best_level, best_size = _walk_down(
            manager, var, level, best_level, best_size, limit)
        level, best_level, best_size = _walk_up(
            manager, var, level, best_level, best_size, limit)
    else:
        level, best_level, best_size = _walk_up(
            manager, var, level, best_level, best_size, limit)
        level, best_level, best_size = _walk_down(
            manager, var, level, best_level, best_size, limit)

    # Return to the best position seen.
    while level < best_level:
        manager.swap_levels(level)
        level += 1
    while level > best_level:
        manager.swap_levels(level - 1)
        level -= 1


def _walk_down(manager: DDManager, var: int, level: int, best_level: int,
               best_size: int, limit: int):
    num = manager.num_vars
    while level < num - 1:
        manager.swap_levels(level)
        level += 1
        size = manager.live_nodes()
        if size < best_size:
            best_size = size
            best_level = level
        if size > limit:
            break
    return level, best_level, best_size


def _walk_up(manager: DDManager, var: int, level: int, best_level: int,
             best_size: int, limit: int):
    while level > 0:
        manager.swap_levels(level - 1)
        level -= 1
        size = manager.live_nodes()
        if size < best_size:
            best_size = size
            best_level = level
        if size > limit:
            break
    return level, best_level, best_size


# ---------------------------------------------------------------------
# Group (block) sifting
# ---------------------------------------------------------------------

def _normalize_blocks(manager: DDManager,
                      groups: Sequence[Tuple[int, ...]]) -> List[List[int]]:
    """Resolve ``groups`` to disjoint variable blocks and make each one
    contiguous in the current order (members bubble up below their
    group's topmost variable; passing variables shift whole, so other
    blocks are never split).  Ungrouped variables become singletons.
    Returns the blocks top-to-bottom."""
    blocks: List[List[int]] = []
    seen = set()
    for group in groups:
        members = [manager.var_index(v) for v in group]
        if not members:
            continue
        if len(set(members)) != len(members) \
                or seen.intersection(members):
            raise ValueError(f"sift groups overlap: {groups!r}")
        seen.update(members)
        blocks.append(members)
    for var in range(manager.num_vars):
        if var not in seen:
            blocks.append([var])
    for members in blocks:
        members.sort(key=manager.level_of_var)
        top = manager.level_of_var(members[0])
        for offset, var in enumerate(members[1:], start=1):
            current = manager.level_of_var(var)
            while current > top + offset:
                manager.swap_levels(current - 1)
                current -= 1
    blocks.sort(key=lambda members: manager.level_of_var(members[0]))
    return blocks


def _exchange_blocks(manager: DDManager, blocks: List[List[int]],
                     index: int) -> None:
    """Swap the adjacent blocks at ``index`` and ``index + 1`` (both stay
    internally ordered) via adjacent-level swaps."""
    level = sum(len(b) for b in blocks[:index])
    upper, lower = len(blocks[index]), len(blocks[index + 1])
    for passed in range(lower):
        for step in range(upper):
            manager.swap_levels(level + passed + upper - 1 - step)
    blocks[index], blocks[index + 1] = blocks[index + 1], blocks[index]


def _sift_blocks(manager: DDManager, groups: Sequence[Tuple[int, ...]],
                 max_growth: float, max_vars: Optional[int]) -> int:
    blocks = _normalize_blocks(manager, groups)
    if len(blocks) < 2:
        return manager.live_nodes()
    by_size = sorted(blocks,
                     key=lambda b: -sum(len(manager._unique[v]) for v in b))
    if max_vars is not None:
        by_size = by_size[:max_vars]
    for block in by_size:
        _sift_one_block(manager, blocks, block, max_growth)
    return manager.live_nodes()


def _sift_one_block(manager: DDManager, blocks: List[List[int]],
                    block: List[int], max_growth: float) -> None:
    last = len(blocks) - 1
    index = blocks.index(block)
    size = manager.live_nodes()
    limit = int(size * max_growth) + 1
    best_size, best_index = size, index

    def walk(index: int, step: int, stop: int) -> int:
        nonlocal best_size, best_index
        while index != stop:
            _exchange_blocks(manager, blocks, min(index, index + step))
            index += step
            size = manager.live_nodes()
            if size < best_size:
                best_size, best_index = size, index
            if size > limit:
                break
        return index

    if last - index <= index:
        index = walk(index, +1, last)
        index = walk(index, -1, 0)
    else:
        index = walk(index, -1, 0)
        index = walk(index, +1, last)
    while index < best_index:
        _exchange_blocks(manager, blocks, index)
        index += 1
    while index > best_index:
        _exchange_blocks(manager, blocks, index - 1)
        index -= 1


def sift_to_convergence(manager: DDManager, max_growth: float = 1.2,
                        max_passes: int = 8,
                        groups: Optional[Sequence[Tuple[int, ...]]] = None
                        ) -> int:
    """Repeat sifting passes until the live node count stops improving."""
    size = sift(manager, max_growth, groups=groups)
    for _ in range(max_passes - 1):
        new_size = sift(manager, max_growth, groups=groups)
        if new_size >= size:
            return new_size
        size = new_size
    return size


def random_order(manager: DDManager, seed: int = 0) -> List[int]:
    """A deterministic pseudo-random variable order (for experiments)."""
    import random

    rng = random.Random(seed)
    order = list(range(manager.num_vars))
    rng.shuffle(order)
    return order
