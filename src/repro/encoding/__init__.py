"""Encoding schemes for safe Petri-net markings (the paper's contribution).

* :class:`SparseEncoding` — one variable per place (the baseline).
* :class:`DenseEncoding` — SMC-based with unate-covering selection
  (Sections 4.1-4.3).
* :class:`ImprovedEncoding` — overlap-aware greedy scheme (Section 4.4).
* :mod:`repro.encoding.gray` — Gray-like code assignment (Section 5.2).
* :mod:`repro.encoding.characteristic` — Eq. 4/5 BDD construction.
* :mod:`repro.encoding.optimal` — marking-level yardstick encodings
  (Section 3 / Figure 2).
"""

from .characteristic import (declare_variables, enabling_functions,
                             initial_function, marking_function,
                             place_functions)
from .covering import CoverOption, CoveringError, solve_cover
from .dense import DenseEncoding
from .improved import ImprovedEncoding, encoding_variable_summary
from .scheme import (EncodedComponent, Encoding, EncodingError,
                     TransitionSpec)
from .sparse import SparseEncoding

__all__ = [
    "Encoding", "EncodingError", "EncodedComponent", "TransitionSpec",
    "SparseEncoding", "DenseEncoding", "ImprovedEncoding",
    "encoding_variable_summary",
    "CoverOption", "CoveringError", "solve_cover",
    "declare_variables", "place_functions", "enabling_functions",
    "marking_function", "initial_function",
]
