"""Symbolic characteristic functions (Section 5.1).

Builds, for a given encoding and BDD manager:

* the place characteristic functions ``[p]`` of Eq. 4 (with the recursive
  generalization for shared-code chains),
* the transition enabling functions ``E_t`` of Eq. 5,
* the encoded initial-state BDD.

These are the raw ingredients of the symbolic traversal in
:mod:`repro.symbolic`.
"""

from __future__ import annotations

from typing import Dict

from ..bdd import BDD, Function, cube, true
from ..petri.marking import Marking
from .scheme import Encoding


def declare_variables(encoding: Encoding, bdd: BDD) -> None:
    """Declare the encoding's variables (in its order) on a BDD manager."""
    for name in encoding.variables:
        bdd.add_var(name)


def place_functions(encoding: Encoding, bdd: BDD) -> Dict[str, Function]:
    """The characteristic function ``[p]`` of every place (Eq. 4).

    ``[p]`` holds on an assignment iff the marking it encodes marks ``p``:
    the owner component's variables spell ``p``'s code and no place
    sharing that code is marked.
    """
    memo: Dict[str, Function] = {}

    def build(place: str) -> Function:
        cached = memo.get(place)
        if cached is not None:
            return cached
        func = cube(bdd, dict(encoding.owner_code(place)))
        for partner in encoding.partners(place):
            func = func & ~build(partner)
        memo[place] = func
        return func

    return {place: build(place) for place in encoding.net.places}


def enabling_functions(encoding: Encoding, bdd: BDD,
                       places: Dict[str, Function] = None
                       ) -> Dict[str, Function]:
    """The enabling function ``E_t`` of every transition (Eq. 5)."""
    if places is None:
        places = place_functions(encoding, bdd)
    enabling: Dict[str, Function] = {}
    for transition in encoding.net.transitions:
        func = true(bdd)
        for place in sorted(encoding.net.preset(transition)):
            func = func & places[place]
        enabling[transition] = func
    return enabling


def marking_function(encoding: Encoding, bdd: BDD,
                     marking: Marking) -> Function:
    """The BDD (a minterm) of one encoded marking."""
    return cube(bdd, encoding.marking_to_assignment(marking))


def initial_function(encoding: Encoding, bdd: BDD) -> Function:
    """The encoded initial marking of the net."""
    return marking_function(encoding, bdd, encoding.net.initial_marking)
