"""Unate covering (Section 4.2).

Selecting the SMCs that encode a net is a weighted unate covering problem
(the paper cites McCluskey): cover every place either by an SMC (cost
``ceil(log2 |Pi|)`` variables) or by itself (cost one variable).  This
module provides a generic exact branch-and-bound solver with the classic
reductions (essential columns, row and column dominance) plus a greedy
fallback for instances beyond the exact-search budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CoverOption:
    """One covering object: a label, the elements it covers, its cost."""

    label: Hashable
    covers: FrozenSet
    cost: float


class CoveringError(Exception):
    """Raised when the universe cannot be covered by the given options."""


def solve_cover(universe: Sequence, options: Sequence[CoverOption],
                exact_limit: int = 24) -> List[CoverOption]:
    """A minimum-cost subset of ``options`` covering ``universe``.

    Uses exact branch and bound when at most ``exact_limit`` options remain
    after reductions, otherwise falls back to the greedy
    cost-per-new-element heuristic (whose result still covers everything).

    Raises :class:`CoveringError` if some element is not covered by any
    option.
    """
    needed = frozenset(universe)
    reachable = frozenset().union(*(opt.covers for opt in options)) \
        if options else frozenset()
    missing = needed - reachable
    if missing:
        raise CoveringError(f"elements not coverable: {sorted(missing)!r}")

    relevant = [opt for opt in options if opt.covers & needed]
    if len(relevant) <= exact_limit:
        chosen = _branch_and_bound(needed, relevant)
    else:
        chosen = _greedy(needed, relevant)
    return chosen


def _greedy(needed: FrozenSet, options: List[CoverOption]
            ) -> List[CoverOption]:
    remaining = set(needed)
    chosen: List[CoverOption] = []
    pool = list(options)
    while remaining:
        best = None
        best_ratio = math.inf
        for opt in pool:
            gain = len(opt.covers & remaining)
            if gain == 0:
                continue
            ratio = opt.cost / gain
            if ratio < best_ratio:
                best_ratio = ratio
                best = opt
        if best is None:
            raise CoveringError("greedy covering got stuck")
        chosen.append(best)
        remaining -= best.covers
        pool.remove(best)
    return chosen


def _branch_and_bound(needed: FrozenSet, options: List[CoverOption]
                      ) -> List[CoverOption]:
    greedy_solution = _greedy(needed, options)
    best_cost = sum(opt.cost for opt in greedy_solution)
    best = list(greedy_solution)
    # Order by cost-effectiveness for better pruning.
    order = sorted(options, key=lambda opt: opt.cost / max(1, len(opt.covers)))

    def lower_bound(remaining: FrozenSet, pool: List[CoverOption]) -> float:
        """Fractional relaxation bound: cheapest cost-per-element."""
        if not remaining:
            return 0.0
        rates = [opt.cost / len(opt.covers & remaining)
                 for opt in pool if opt.covers & remaining]
        if not rates:
            return math.inf
        return min(rates) * len(remaining)

    def search(remaining: FrozenSet, pool: List[CoverOption],
               partial: List[CoverOption], cost: float) -> None:
        nonlocal best_cost, best
        if not remaining:
            if cost < best_cost:
                best_cost = cost
                best = list(partial)
            return
        if cost + lower_bound(remaining, pool) >= best_cost:
            return
        # Branch on the hardest element (fewest covering options).
        counts = {}
        for element in remaining:
            counts[element] = [opt for opt in pool if element in opt.covers]
        element = min(counts, key=lambda e: len(counts[e]))
        candidates = counts[element]
        if not candidates:
            return
        for opt in candidates:
            rest = [other for other in pool if other is not opt]
            partial.append(opt)
            search(remaining - opt.covers, rest, partial, cost + opt.cost)
            partial.pop()

    search(needed, order, [], 0.0)
    return best


def smc_cover_options(places: Sequence[str], components,
                      ) -> Tuple[List[CoverOption], List[CoverOption]]:
    """The paper's covering objects for a net.

    Returns ``(smc_options, place_options)``: each SMC covers its places at
    cost ``ceil(log2 |Pi|)``; each place covers itself at cost one.
    """
    smc_options = [
        CoverOption(label=component, covers=component.place_set,
                    cost=max(1, math.ceil(math.log2(len(component)))))
        for component in components]
    place_options = [
        CoverOption(label=place, covers=frozenset({place}), cost=1.0)
        for place in places]
    return smc_options, place_options
