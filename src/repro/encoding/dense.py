"""The SMC-based dense encoding (Sections 4.1-4.3).

A set of single-token SMCs is selected by solving the unate covering
problem of Section 4.2 (each SMC costs ``ceil(log2 |Pi|)`` variables, each
uncovered place one variable).  Every selected SMC is encoded with an
injective Gray-like code over *all* its places; places covered by several
selected SMCs are owned by the first and merely carry consistent codes in
the rest.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.smc import StateMachineComponent, find_smcs, single_token_smcs
from .covering import CoverOption, smc_cover_options, solve_cover
from .gray import assign_arbitrary_codes, assign_gray_codes
from .scheme import (EncodedComponent, Encoding, EncodingError,
                     TransitionSpec, component_transition_effects,
                     sparse_place_effects)


class SMCEncodingBase(Encoding):
    """Shared behaviour of the covering-based and improved encodings."""

    def __init__(self, net: PetriNet) -> None:
        super().__init__(net)
        self.components: List[EncodedComponent] = []
        self.free_places: List[str] = []
        self._owner: Dict[str, Optional[EncodedComponent]] = {}
        self._variables: Tuple[str, ...] = ()
        self._specs: Dict[str, TransitionSpec] = {}

    # -- construction helpers ------------------------------------------------

    def _finalize(self) -> None:
        names: List[str] = []
        for comp in self.components:
            names.extend(comp.variables)
        names.extend(self.free_places)
        if len(set(names)) != len(names):
            raise EncodingError("variable names collide")
        self._variables = tuple(names)

    def _next_var_names(self, count: int) -> Tuple[str, ...]:
        start = sum(len(c.variables) for c in self.components)
        return tuple(f"x{start + i + 1}" for i in range(count))

    # -- Encoding interface ---------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._variables

    def owner_code(self, place: str) -> Tuple[Tuple[str, bool], ...]:
        owner = self._owner[place]
        if owner is None:
            return ((place, True),)
        return tuple(zip(owner.variables, owner.codes[place]))

    def partners(self, place: str) -> Tuple[str, ...]:
        owner = self._owner[place]
        if owner is None:
            return ()
        code = owner.codes[place]
        return tuple(q for q in owner.component.places
                     if q != place and owner.codes[q] == code)

    def owner_component(self, place: str) -> Optional[EncodedComponent]:
        """The component that encodes ``place`` (None if free)."""
        return self._owner[place]

    def transition_spec(self, transition: str) -> TransitionSpec:
        spec = self._specs.get(transition)
        if spec is not None:
            return spec
        quantify, force, toggle, handled = component_transition_effects(
            self.net, self.components, transition)
        # Every covered place adjacent to the transition is handled by one
        # of its components (T' contains all transitions adjacent to P'),
        # so the sparse fallback below only ever touches free places.
        extra_q, extra_f, extra_t = sparse_place_effects(
            self.net.preset(transition), self.net.postset(transition),
            skip=handled)
        # Deduplicate while preserving order (overlapping components may
        # both force the same variables — with equal values).
        seen = set()
        quantify_all = []
        for var in quantify + extra_q:
            if var not in seen:
                seen.add(var)
                quantify_all.append(var)
        force_map: Dict[str, bool] = {}
        for var, value in force + extra_f:
            if var in force_map and force_map[var] != value:
                raise EncodingError(
                    f"components disagree on {var!r} when firing "
                    f"{transition!r}")
            force_map[var] = value
        toggle_seen = set()
        toggle_all = []
        for var in toggle + extra_t:
            if var not in toggle_seen:
                toggle_seen.add(var)
                toggle_all.append(var)
        spec = TransitionSpec(transition=transition,
                              quantify=tuple(quantify_all),
                              force=tuple(force_map.items()),
                              toggle=tuple(toggle_all))
        self._specs[transition] = spec
        return spec

    def marking_to_assignment(self, marking: Marking) -> Dict[str, bool]:
        marking = Marking(marking)
        assignment: Dict[str, bool] = {}
        for comp in self.components:
            marked = [p for p in comp.component.places if marking[p] > 0]
            if len(marked) != 1:
                raise EncodingError(
                    f"component {comp.name} must hold exactly one token, "
                    f"got {marked!r} in {marking!r}")
            for var, value in zip(comp.variables, comp.codes[marked[0]]):
                assignment[var] = value
        for place in self.free_places:
            assignment[place] = marking[place] > 0
        return self._validate_assignment(marking, assignment)


class DenseEncoding(SMCEncodingBase):
    """Covering-based SMC encoding (Sections 4.2-4.3).

    Parameters
    ----------
    net:
        The safe net to encode.
    components:
        Candidate single-token SMCs; discovered automatically when omitted.
    gray:
        Assign Gray-like codes along the SMC adjacency (Section 5.2);
        plain binary-counting codes otherwise (the ablation baseline).
    exact_limit:
        Budget for the exact covering search (see
        :func:`repro.encoding.covering.solve_cover`).
    """

    def __init__(self, net: PetriNet,
                 components: Optional[Sequence[StateMachineComponent]] = None,
                 gray: bool = True, exact_limit: int = 24) -> None:
        super().__init__(net)
        if components is None:
            components = find_smcs(net)
        candidates = single_token_smcs(list(components))
        smc_options, place_options = smc_cover_options(net.places, candidates)
        chosen = solve_cover(net.places, smc_options + place_options,
                             exact_limit=exact_limit)
        owner: Dict[str, Optional[EncodedComponent]] = {}
        chosen_smcs = [opt.label for opt in chosen
                       if isinstance(opt.label, StateMachineComponent)]
        # Deterministic order: as produced by the candidate list.
        chosen_smcs.sort(key=lambda c: candidates.index(c))
        for component in chosen_smcs:
            width = max(1, math.ceil(math.log2(len(component))))
            variables = self._next_var_names(width)
            if gray:
                codes = assign_gray_codes(net, component, width=width)
            else:
                codes = assign_arbitrary_codes(component, width=width)
            encoded = EncodedComponent(
                component=component, variables=variables, codes=codes,
                owned=frozenset(p for p in component.places
                                if p not in owner))
            self.components.append(encoded)
            for place in component.places:
                owner.setdefault(place, encoded)
        self.free_places = [p for p in net.places if p not in owner]
        for place in self.free_places:
            owner[place] = None
        self._owner = owner
        self._finalize()
