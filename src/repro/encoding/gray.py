"""Gray-like code assignment for SMC places (Section 5.2).

Moving a token along an SMC toggles the variables on which the codes of
the input and output place differ; the paper assigns codes "according to
the adjacency of the places in the SMC" so each transition toggles as few
variables as possible (ideally one), which speeds up the toggle-based BDD
firing.

The assignment here works in three steps:

1. order the places along a greedy walk of the SMC's place-adjacency
   graph (token moves), starting from the initially marked place;
2. assign the reflected-Gray-code sequence along that order, so
   consecutive places differ in one bit;
3. improve with a bounded local search that swaps code words while the
   total toggle cost (sum over SMC transitions of the Hamming distance
   between input and output codes) decreases.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..petri.net import PetriNet
from ..petri.smc import StateMachineComponent

Code = Tuple[bool, ...]


def gray_sequence(count: int, width: int) -> List[Code]:
    """The first ``count`` reflected Gray codes of the given bit width."""
    if count > (1 << width):
        raise ValueError("width too small for the requested count")
    codes = []
    for i in range(count):
        value = i ^ (i >> 1)
        codes.append(tuple(bool((value >> bit) & 1)
                           for bit in reversed(range(width))))
    return codes


def hamming(code_a: Code, code_b: Code) -> int:
    """Number of differing bits."""
    return sum(a != b for a, b in zip(code_a, code_b))


def place_adjacency(net: PetriNet, component: StateMachineComponent
                    ) -> List[Tuple[str, str]]:
    """Token moves ``(input place, output place)`` of the SMC, one per
    component transition (self-moves excluded)."""
    covered = component.place_set
    moves = []
    for trans in component.transitions:
        inputs = net.preset(trans) & covered
        outputs = net.postset(trans) & covered
        if len(inputs) != 1 or len(outputs) != 1:
            raise ValueError(
                f"{trans!r} is not a state-machine transition in "
                f"{component.name}")
        source = next(iter(inputs))
        target = next(iter(outputs))
        if source != target:
            moves.append((source, target))
    return moves


def walk_order(net: PetriNet, component: StateMachineComponent
               ) -> List[str]:
    """Order the SMC's places along a greedy walk of its token moves."""
    moves = place_adjacency(net, component)
    successors: Dict[str, List[str]] = {p: [] for p in component.places}
    for source, target in moves:
        successors[source].append(target)
    initial = net.initial_marking
    start = next((p for p in component.places if initial[p] > 0),
                 component.places[0])
    order = [start]
    seen = {start}
    current = start
    while len(order) < len(component.places):
        nxt = next((q for q in successors[current] if q not in seen), None)
        if nxt is None:
            # Dead end: jump to the first unvisited place (new chain).
            nxt = next(p for p in component.places if p not in seen)
        order.append(nxt)
        seen.add(nxt)
        current = nxt
    return order


def toggle_cost(moves: Sequence[Tuple[str, str]],
                codes: Dict[str, Code]) -> int:
    """Total toggled bits over all token moves."""
    return sum(hamming(codes[src], codes[dst]) for src, dst in moves)


def assign_gray_codes(net: PetriNet, component: StateMachineComponent,
                      width: int = 0,
                      swap_budget: int = 200) -> Dict[str, Code]:
    """Gray-like injective codes for all places of ``component``.

    ``width`` defaults to ``ceil(log2 |places|)``.  The local-search step
    performs at most ``swap_budget`` improving swaps.
    """
    count = len(component.places)
    if width == 0:
        width = max(1, math.ceil(math.log2(count))) if count > 1 else 1
    order = walk_order(net, component)
    codes = dict(zip(order, gray_sequence(count, width)))
    moves = place_adjacency(net, component)
    _local_search(moves, codes, width, swap_budget)
    return codes


def _local_search(moves: Sequence[Tuple[str, str]],
                  codes: Dict[str, Code], width: int,
                  swap_budget: int) -> None:
    """Swap code words (including unused ones) while the cost drops."""
    places = list(codes)
    used = set(codes.values())
    free_codes = [tuple(bool((v >> b) & 1) for b in reversed(range(width)))
                  for v in range(1 << width)]
    free_codes = [c for c in free_codes if c not in used]
    cost = toggle_cost(moves, codes)
    swaps = 0
    improved = True
    while improved and swaps < swap_budget:
        improved = False
        for i, place_a in enumerate(places):
            # Try swapping with other places' codes.
            for place_b in places[i + 1:]:
                codes[place_a], codes[place_b] = (codes[place_b],
                                                  codes[place_a])
                new_cost = toggle_cost(moves, codes)
                if new_cost < cost:
                    cost = new_cost
                    swaps += 1
                    improved = True
                else:
                    codes[place_a], codes[place_b] = (codes[place_b],
                                                      codes[place_a])
            # Try moving to an unused code word.
            for j, candidate in enumerate(free_codes):
                old = codes[place_a]
                codes[place_a] = candidate
                new_cost = toggle_cost(moves, codes)
                if new_cost < cost:
                    cost = new_cost
                    free_codes[j] = old
                    swaps += 1
                    improved = True
                else:
                    codes[place_a] = old
            if swaps >= swap_budget:
                break


def assign_arbitrary_codes(component: StateMachineComponent,
                           width: int = 0) -> Dict[str, Code]:
    """Binary-counting (non-Gray) codes, the ablation baseline."""
    count = len(component.places)
    if width == 0:
        width = max(1, math.ceil(math.log2(count))) if count > 1 else 1
    if count > (1 << width):
        raise ValueError("width too small")
    return {place: tuple(bool((i >> b) & 1)
                         for b in reversed(range(width)))
            for i, place in enumerate(component.places)}
