"""The improved overlap-aware encoding (Section 4.4).

Components are added greedily; each new SMC only pays
``ceil(log2 |P_new|)`` variables for its not-yet-covered places.  Places
of the SMC that are already covered receive codes that may collide with
the new places' codes — the ambiguity is resolved by the characteristic
functions of Eq. 4 (generalized recursively, see
:meth:`repro.encoding.scheme.Encoding.partners`).

On the paper's Figure 4 net this reproduces Table 1 exactly: SM1 and SM3
with two variables each, SM2 and SM4 with one, forks p4/p5 one variable
each — eight variables total.

As an extension (the paper stops at one variable per leftover place), a
component whose ``P_new`` is a single place can encode it with *zero*
variables: the place is marked iff no other place of the component is.
Enable with ``allow_zero_variable_components=True``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..petri.net import PetriNet
from ..petri.smc import StateMachineComponent, find_smcs, single_token_smcs
from .gray import gray_sequence, hamming, place_adjacency, walk_order
from .scheme import EncodedComponent, EncodingError
from .dense import SMCEncodingBase

Code = Tuple[bool, ...]


class ImprovedEncoding(SMCEncodingBase):
    """Greedy overlap-aware SMC encoding (Section 4.4)."""

    def __init__(self, net: PetriNet,
                 components: Optional[Sequence[StateMachineComponent]] = None,
                 gray: bool = True,
                 allow_zero_variable_components: bool = False) -> None:
        super().__init__(net)
        if components is None:
            components = find_smcs(net)
        candidates = single_token_smcs(list(components))
        owner: Dict[str, Optional[EncodedComponent]] = {}
        covered: Set[str] = set()
        remaining = list(candidates)

        while True:
            best = None
            best_key = (0, 0, 0)
            for index, component in enumerate(remaining):
                new_places = [p for p in component.places
                              if p not in covered]
                if not new_places:
                    continue
                if len(new_places) == 1:
                    cost = 0 if allow_zero_variable_components else 1
                else:
                    cost = math.ceil(math.log2(len(new_places)))
                benefit = len(new_places) - cost
                if benefit <= 0:
                    continue
                # Prefer higher benefit, then cheaper, then smaller
                # components (pairs beat mixed cycles on ties — less
                # over-encoding), then earlier candidates.
                key = (benefit, -cost, -len(component), -index)
                if best is None or key > best_key:
                    best = (component, new_places, cost)
                    best_key = key
            if best is None:
                break
            component, new_places, cost = best
            remaining.remove(component)
            encoded = self._encode_component(component, new_places, cost,
                                             gray)
            self.components.append(encoded)
            for place in new_places:
                owner[place] = encoded
            covered.update(component.places)

        self.free_places = [p for p in net.places if p not in owner]
        for place in self.free_places:
            owner[place] = None
        self._owner = owner
        self._finalize()

    def _encode_component(self, component: StateMachineComponent,
                          new_places: List[str], width: int,
                          gray: bool) -> EncodedComponent:
        """Codes for all places: injective over ``new_places``, free
        (possibly colliding) for the already-covered rest."""
        variables = self._next_var_names(width)
        order = walk_order(self.net, component)
        moves = place_adjacency(self.net, component)
        codes: Dict[str, Code] = {}
        if width == 0:
            empty: Code = ()
            for place in component.places:
                codes[place] = empty
            return EncodedComponent(component=component, variables=(),
                                    codes=codes,
                                    owned=frozenset(new_places))
        if gray:
            new_in_order = [p for p in order if p in set(new_places)]
            new_codes = gray_sequence(len(new_in_order), width)
        else:
            # Ablation baseline: binary counting in declaration order.
            new_in_order = list(new_places)
            new_codes = [tuple(bool((i >> b) & 1)
                               for b in reversed(range(width)))
                         for i in range(len(new_in_order))]
        for place, code in zip(new_in_order, new_codes):
            codes[place] = code
        all_codes = gray_sequence(1 << width, width)
        for place in order:
            if place in codes:
                continue
            codes[place] = self._best_cover_code(place, codes, moves,
                                                 all_codes, gray)
        return EncodedComponent(component=component, variables=variables,
                                codes=codes, owned=frozenset(new_places))

    @staticmethod
    def _best_cover_code(place: str, codes: Dict[str, Code], moves,
                         all_codes: List[Code], gray: bool) -> Code:
        """Pick the code of an already-covered place to minimize toggling
        against its coded neighbours (any code may be reused).

        Ties are broken toward the code of a move *predecessor* (the
        place the token arrives from), continuing the Gray walk in token
        direction — this reproduces the paper's Table 1 assignment.
        """
        if not gray:
            return all_codes[0]
        successors = [dst for src, dst in moves if src == place]
        predecessors = [src for src, dst in moves if dst == place]
        coded = [codes[q] for q in successors + predecessors if q in codes]
        if not coded:
            return all_codes[0]
        pred_codes = {codes[q] for q in predecessors if q in codes}
        return min(all_codes,
                   key=lambda c: (sum(hamming(c, other) for other in coded),
                                  c not in pred_codes))


def encoding_variable_summary(encoding: SMCEncodingBase) -> str:
    """Tabulate components, their variables and place codes (Table 1
    style)."""
    lines = []
    for comp in encoding.components:
        var_list = ", ".join(comp.variables) if comp.variables else "(none)"
        lines.append(f"{comp.name}: variables {var_list}")
        for place in comp.component.places:
            bits = "".join(str(int(b)) for b in comp.codes[place])
            owned = "*" if place in comp.owned else " "
            lines.append(f"  {owned} {place} = {bits or '-'}")
    if encoding.free_places:
        lines.append("free places (one variable each): "
                     + ", ".join(encoding.free_places))
    lines.append(f"total variables: {encoding.num_variables}")
    return "\n".join(lines)
