"""Marking-level (optimal-count) encodings (Section 3, Figure 2.c/d).

The paper contrasts the structural schemes against the hypothetical
optimum: encode the ``|[M0>|`` reachable markings directly with
``ceil(log2 |[M0>|)`` variables.  That needs the reachability graph — the
very thing symbolic analysis is meant to compute — so it is only a
yardstick, but it defines the *density* target and illustrates the
toggle-activity objective: Figure 2 shows two 3-variable assignments for
the running example whose average toggles per fired transition are 15/11
and 19/11.

This module implements such marking encodings over an explicit
reachability graph, the toggle-cost metric, and a greedy Gray-style
assignment heuristic.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from ..petri.marking import Marking
from ..petri.reachability import ReachabilityGraph

Code = Tuple[bool, ...]


def optimal_variable_count(marking_count: int) -> int:
    """``ceil(log2 n)`` — the minimum variables for ``n`` markings."""
    if marking_count <= 0:
        raise ValueError("marking count must be positive")
    return max(1, math.ceil(math.log2(marking_count)))


class MarkingEncoding:
    """An injective assignment of codes to reachable markings."""

    def __init__(self, graph: ReachabilityGraph,
                 codes: Dict[Marking, Code]) -> None:
        if len(codes) != len(graph.markings):
            raise ValueError("every reachable marking needs a code")
        if len(set(codes.values())) != len(codes):
            raise ValueError("codes must be injective")
        self.graph = graph
        self.codes = dict(codes)
        self.width = len(next(iter(codes.values())))

    def toggle_cost(self) -> int:
        """Total bits toggled over all reachability-graph edges."""
        total = 0
        for src, _, dst in self.graph.edges:
            code_a = self.codes[self.graph.markings[src]]
            code_b = self.codes[self.graph.markings[dst]]
            total += sum(a != b for a, b in zip(code_a, code_b))
        return total

    def average_toggles(self) -> float:
        """Average toggled bits per fired transition (the 15/11 metric)."""
        edges = len(self.graph.edges)
        return self.toggle_cost() / edges if edges else 0.0


def binary_marking_encoding(graph: ReachabilityGraph,
                            width: int = 0) -> MarkingEncoding:
    """Codes assigned in BFS discovery order (an arbitrary baseline)."""
    if width == 0:
        width = optimal_variable_count(len(graph.markings))
    codes = {marking: _int_code(i, width)
             for i, marking in enumerate(graph.markings)}
    return MarkingEncoding(graph, codes)


def greedy_gray_marking_encoding(graph: ReachabilityGraph,
                                 width: int = 0) -> MarkingEncoding:
    """Greedy low-toggle assignment: BFS over the reachability graph,
    giving each marking the free code closest to its coded neighbours."""
    if width == 0:
        width = optimal_variable_count(len(graph.markings))
    all_codes = [_int_code(v ^ (v >> 1), width) for v in range(1 << width)]
    free = list(all_codes)
    codes: Dict[Marking, Code] = {}
    neighbours: Dict[int, List[int]] = {}
    for src, _, dst in graph.edges:
        neighbours.setdefault(src, []).append(dst)
        neighbours.setdefault(dst, []).append(src)
    for index, marking in enumerate(graph.markings):
        coded = [codes[graph.markings[n]]
                 for n in neighbours.get(index, ())
                 if graph.markings[n] in codes]
        if coded:
            best = min(free, key=lambda c: sum(
                sum(a != b for a, b in zip(c, other)) for other in coded))
        else:
            best = free[0]
        free.remove(best)
        codes[marking] = best
    return MarkingEncoding(graph, codes)


def random_marking_encoding(graph: ReachabilityGraph, seed: int = 0,
                            width: int = 0) -> MarkingEncoding:
    """A random injective assignment (worst-case-ish baseline)."""
    if width == 0:
        width = optimal_variable_count(len(graph.markings))
    rng = random.Random(seed)
    values = rng.sample(range(1 << width), len(graph.markings))
    codes = {marking: _int_code(v, width)
             for marking, v in zip(graph.markings, values)}
    return MarkingEncoding(graph, codes)


def _int_code(value: int, width: int) -> Code:
    return tuple(bool((value >> bit) & 1)
                 for bit in reversed(range(width)))
