"""Encoding schemes: the common abstraction (Sections 3-5).

An encoding maps safe-net markings to boolean-variable assignments.  The
symbolic layer only needs four things from it:

* the ordered list of boolean variables,
* per place, the *owner equality term* (variable values identifying the
  place's code in the SMC that encodes it) and the *partner places* whose
  characteristic functions must be negated to resolve shared codes
  (Equation 4, applied recursively — see :meth:`Encoding.partners`),
* per transition, a :class:`TransitionSpec`: which variables change and
  the values they take (Equations 2 and 6), plus the toggle set for the
  Section 5.2 fast path,
* conversions between markings and assignments.

Concrete schemes: :class:`repro.encoding.sparse.SparseEncoding`,
:class:`repro.encoding.dense.DenseEncoding` (covering-based, Section 4.2)
and :class:`repro.encoding.improved.ImprovedEncoding` (overlap-aware,
Section 4.4).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..petri.marking import Marking
from ..petri.net import PetriNet
from ..petri.smc import StateMachineComponent

Code = Tuple[bool, ...]


class EncodingError(Exception):
    """Raised for invalid encoding constructions or inputs."""


@dataclass(frozen=True)
class EncodedComponent:
    """An SMC together with its variables and place codes.

    ``owned`` places are the ones this component *encodes*; other covered
    places carry codes here only so the transition functions (Eq. 6) and
    the ambiguity resolution (Eq. 4) can refer to them.
    """

    component: StateMachineComponent
    variables: Tuple[str, ...]
    codes: Dict[str, Code] = field(hash=False)
    owned: FrozenSet[str]

    @property
    def name(self) -> str:
        """Name of the underlying SMC."""
        return self.component.name

    def code_of(self, place: str) -> Code:
        """The code of ``place`` inside this component."""
        return self.codes[place]


@dataclass(frozen=True)
class TransitionSpec:
    """How firing one transition acts on the encoding variables.

    ``quantify`` lists the variables whose pre-firing value must be
    forgotten, ``force`` the post-firing values they take (Eq. 2/6 —
    always constants for safe nets), and ``toggle`` the variables whose
    value flips on the enabled set (the Section 5.2 fast path, valid for
    safe nets).
    """

    transition: str
    quantify: Tuple[str, ...]
    force: Tuple[Tuple[str, bool], ...]
    toggle: Tuple[str, ...]


class Encoding(ABC):
    """Base class for marking encodings of a safe Petri net."""

    def __init__(self, net: PetriNet) -> None:
        self.net = net

    # -- abstract interface ------------------------------------------------

    @property
    @abstractmethod
    def variables(self) -> Tuple[str, ...]:
        """The boolean variables, in the suggested BDD order."""

    @abstractmethod
    def owner_code(self, place: str) -> Tuple[Tuple[str, bool], ...]:
        """``(variable, value)`` pairs identifying ``place`` in its owner
        component (the first factor of Eq. 4)."""

    @abstractmethod
    def partners(self, place: str) -> Tuple[str, ...]:
        """Places sharing ``place``'s code inside its owner component.

        Every partner is owned by an earlier component, so the recursive
        form of Eq. 4 — ``[p] = (X = E(p)) and AND(not [p'])`` — is well
        founded.  (The paper states the non-recursive form, which is the
        special case where partner codes are unshared.)
        """

    @abstractmethod
    def transition_spec(self, transition: str) -> TransitionSpec:
        """The variable-level effect of firing ``transition``."""

    @abstractmethod
    def marking_to_assignment(self, marking: Marking) -> Dict[str, bool]:
        """Encode a marking as a total variable assignment."""

    # -- shared behaviour ---------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Number of boolean variables used."""
        return len(self.variables)

    def transition_specs(self) -> List[TransitionSpec]:
        """Specs for all transitions, in net order."""
        return [self.transition_spec(t) for t in self.net.transitions]

    def _validate_assignment(self, marking: Marking,
                             assignment: Dict[str, bool]) -> Dict[str, bool]:
        """Check that an encoded assignment decodes back to ``marking``."""
        decoded = self.assignment_to_marking(assignment)
        if decoded.support != marking.support:
            raise EncodingError(
                f"marking {marking!r} is not representable: decodes to "
                f"{decoded!r}")
        return assignment

    def assignment_to_marking(self, assignment: Dict[str, bool]) -> Marking:
        """Decode a total assignment into the marking it represents."""
        memo: Dict[str, bool] = {}

        def marked(place: str) -> bool:
            cached = memo.get(place)
            if cached is not None:
                return cached
            result = all(assignment[var] == value
                         for var, value in self.owner_code(place))
            if result:
                result = not any(marked(q) for q in self.partners(place))
            memo[place] = result
            return result

        return Marking([p for p in self.net.places if marked(p)])

    def density(self, marking_count: int) -> float:
        """The Section 3 density: optimal bits over used variables."""
        if marking_count <= 0:
            raise EncodingError("marking count must be positive")
        optimal = max(1, math.ceil(math.log2(marking_count)))
        return optimal / self.num_variables

    def describe(self) -> str:
        """A human-readable summary of the encoding."""
        lines = [f"{type(self).__name__} of {self.net.name!r}: "
                 f"{self.num_variables} variables for "
                 f"{len(self.net.places)} places"]
        for place in self.net.places:
            code = " ".join(f"{var}={int(val)}"
                            for var, val in self.owner_code(place))
            partners = self.partners(place)
            suffix = f"  (shared with {', '.join(partners)})" \
                if partners else ""
            lines.append(f"  [{place}] <-> {code}{suffix}")
        return "\n".join(lines)


def component_transition_effects(
        net: PetriNet,
        encoded: Sequence[EncodedComponent],
        transition: str) -> Tuple[List[str], List[Tuple[str, bool]],
                                  List[str], FrozenSet[str]]:
    """Shared Eq. 6 logic for SMC-based encodings.

    Returns ``(quantify, force, toggle, handled_places)`` contributed by
    the encoded components that contain ``transition``; ``handled_places``
    are the adjacent places already accounted for by those components.
    """
    quantify: List[str] = []
    force: List[Tuple[str, bool]] = []
    toggle: List[str] = []
    handled: set = set()
    pre = net.preset(transition)
    post = net.postset(transition)
    for comp in encoded:
        covered = comp.component.place_set
        if transition not in comp.component.transitions:
            continue
        sources = pre & covered
        targets = post & covered
        if len(sources) != 1 or len(targets) != 1:
            raise EncodingError(
                f"{transition!r} is not a state-machine transition in "
                f"{comp.name}")
        handled.update(sources | targets)
        if not comp.variables:
            continue
        source_code = comp.codes[next(iter(sources))]
        target_code = comp.codes[next(iter(targets))]
        if source_code == target_code:
            # Token stays on the same code (read arc or shared code):
            # the variables cannot change.
            continue
        quantify.extend(comp.variables)
        force.extend(zip(comp.variables, target_code))
        toggle.extend(var for var, a, b in
                      zip(comp.variables, source_code, target_code)
                      if a != b)
    return quantify, force, toggle, frozenset(handled)


def sparse_place_effects(pre: FrozenSet[str], post: FrozenSet[str],
                         skip: FrozenSet[str]
                         ) -> Tuple[List[str], List[Tuple[str, bool]],
                                    List[str]]:
    """One-variable-per-place effect (Eq. 2) for places not in ``skip``."""
    quantify: List[str] = []
    force: List[Tuple[str, bool]] = []
    toggle: List[str] = []
    for place in sorted(pre - post):
        if place in skip:
            continue
        quantify.append(place)
        force.append((place, False))
        toggle.append(place)
    for place in sorted(post - pre):
        if place in skip:
            continue
        quantify.append(place)
        force.append((place, True))
        toggle.append(place)
    return quantify, force, toggle
