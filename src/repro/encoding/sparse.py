"""The conventional one-variable-per-place encoding (Section 2.3).

Each place is a boolean variable asserted when the place is marked; a
marking is the characteristic vector of its marked places.  This is the
baseline the paper improves on: the state space is very sparse (a safe
net marks few of its places), so the scheme wastes variables.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..petri.marking import Marking
from ..petri.net import PetriNet
from .scheme import Encoding, TransitionSpec, sparse_place_effects


class SparseEncoding(Encoding):
    """One boolean variable per place, named after the place."""

    def __init__(self, net: PetriNet) -> None:
        super().__init__(net)
        self._variables = tuple(net.places)
        self._specs: Dict[str, TransitionSpec] = {}

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._variables

    def owner_code(self, place: str) -> Tuple[Tuple[str, bool], ...]:
        if place not in self.net.places:
            raise KeyError(place)
        return ((place, True),)

    def partners(self, place: str) -> Tuple[str, ...]:
        return ()

    def transition_spec(self, transition: str) -> TransitionSpec:
        spec = self._specs.get(transition)
        if spec is None:
            quantify, force, toggle = sparse_place_effects(
                self.net.preset(transition), self.net.postset(transition),
                frozenset())
            spec = TransitionSpec(transition=transition,
                                  quantify=tuple(quantify),
                                  force=tuple(force),
                                  toggle=tuple(toggle))
            self._specs[transition] = spec
        return spec

    def marking_to_assignment(self, marking: Marking) -> Dict[str, bool]:
        marking = Marking(marking)
        assignment = {place: marking[place] > 0 for place in self.net.places}
        return self._validate_assignment(marking, assignment)
