"""Experiment harnesses reproducing the paper's evaluation (Section 6).

* :mod:`repro.experiments.table3` — sparse vs. dense BDD encodings.
* :mod:`repro.experiments.table4` — sparse ZDD vs. dense BDD.
* :mod:`repro.experiments.figure2` — encoding schemes on the example.
* :mod:`repro.experiments.ablation` — design-choice ablations.

Each module has a ``main()`` entry point (``python -m ...``) and pure
``run()`` functions used by the pytest benchmarks.
"""

from .runner import (ExperimentRow, compare_engines, engine_label,
                     format_table, full_scale, run, run_dense,
                     run_relational, run_sparse, run_zdd)

__all__ = [
    "ExperimentRow", "run", "engine_label",
    "run_sparse", "run_dense", "run_relational", "run_zdd",
    "format_table", "compare_engines", "full_scale",
]
