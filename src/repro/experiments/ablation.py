"""Ablation studies for the design choices DESIGN.md calls out.

Four questions, answered on the same mid-size instances:

1. **Improved vs. covering-based vs. zero-var encoding** — how many
   variables does each refinement save (Sections 4.2 / 4.4 / extension)?
2. **Gray vs. arbitrary codes** — toggle activity per fired transition
   (Section 5.2).
3. **Quantify-force vs. toggle firing vs. relational image** — traversal
   time of the image implementations, including the partitioned and
   chained relational-product engines.
4. **Dynamic reordering on/off** — final BDD size and time.

Run with ``python -m repro.experiments.ablation``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from ..petri.generators import figure4_net, muller, slotted_ring
from ..petri.smc import find_smcs
from ..symbolic import (RelationalNet, SymbolicNet, traverse,
                        traverse_relational)

INSTANCES: List[Tuple[str, Callable[[], object]]] = [
    ("figure4", figure4_net),
    ("muller-6", lambda: muller(6)),
    ("slot-3", lambda: slotted_ring(3)),
]


@dataclass
class AblationRow:
    """One measurement: instance x configuration."""

    instance: str
    configuration: str
    value: float
    unit: str


def encoding_variable_ablation() -> List[AblationRow]:
    """Variables used by each encoding refinement."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)
        for label, encoding in [
                ("sparse", SparseEncoding(net)),
                ("dense/covering", DenseEncoding(net,
                                                 components=components)),
                ("dense/improved", ImprovedEncoding(
                    net, components=components)),
                ("dense/zero-var", ImprovedEncoding(
                    net, components=components,
                    allow_zero_variable_components=True))]:
            rows.append(AblationRow(name, label,
                                    encoding.num_variables, "variables"))
    return rows


def gray_code_ablation() -> List[AblationRow]:
    """Average toggled variables per fired transition, Gray vs. binary."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)
        for label, gray in (("gray", True), ("binary", False)):
            encoding = ImprovedEncoding(net, components=components,
                                        gray=gray)
            toggles = [len(encoding.transition_spec(t).toggle)
                       for t in net.transitions]
            rows.append(AblationRow(
                name, f"codes={label}",
                sum(toggles) / len(toggles), "toggles/transition"))
    return rows


def image_implementation_ablation() -> List[AblationRow]:
    """Traversal seconds: quantify-force vs. toggle vs. relational."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)

        def timed(run: Callable[[], object]) -> float:
            start = time.perf_counter()
            run()
            return time.perf_counter() - start

        rows.append(AblationRow(name, "image=quantify-force", timed(
            lambda: traverse(SymbolicNet(
                ImprovedEncoding(net, components=components)))), "s"))
        rows.append(AblationRow(name, "image=toggle", timed(
            lambda: traverse(SymbolicNet(
                ImprovedEncoding(net, components=components)),
                use_toggle=True)), "s"))
        rows.append(AblationRow(name, "image=relational", timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components)))), "s"))
        rows.append(AblationRow(name, "image=rel-monolithic", timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components)),
                monolithic=True)), "s"))
        rows.append(AblationRow(name, "image=rel-clustered(4)", timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components)),
                engine="partitioned", cluster_size=4)), "s"))
        rows.append(AblationRow(name, "image=rel-chained(4)", timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components)),
                engine="chained", cluster_size=4)), "s"))
        rows.append(AblationRow(name, "image=rel-chained(auto)", timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components)),
                engine="chained", cluster_size="auto")), "s"))
        rows.append(AblationRow(name, "image=rel-chained(auto)+restrict",
                                timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components)),
                engine="chained", cluster_size="auto",
                simplify_frontier=True)), "s"))
        rows.append(AblationRow(name, "image=rel-chained(auto)+reorder",
                                timed(
            lambda: traverse_relational(RelationalNet(
                ImprovedEncoding(net, components=components),
                auto_reorder=True, reorder_threshold=1_000),
                engine="chained", cluster_size="auto")), "s"))
    return rows


def reordering_ablation() -> List[AblationRow]:
    """Final dense-BDD size with and without dynamic reordering."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)
        for label, reorder in (("reorder=on", True), ("reorder=off", False)):
            symnet = SymbolicNet(
                ImprovedEncoding(net, components=components),
                auto_reorder=reorder, reorder_threshold=1_000)
            result = traverse(symnet, use_toggle=True)
            rows.append(AblationRow(name, label,
                                    result.final_bdd_nodes, "BDD nodes"))
    return rows


def main() -> None:
    sections: Dict[str, Callable[[], List[AblationRow]]] = {
        "1. encoding refinements (variables)": encoding_variable_ablation,
        "2. code assignment (toggle activity)": gray_code_ablation,
        "3. image implementation (seconds)": image_implementation_ablation,
        "4. dynamic reordering (final BDD nodes)": reordering_ablation,
    }
    for title, runner in sections.items():
        print(title)
        print("-" * len(title))
        for row in runner():
            print(f"  {row.instance:<10} {row.configuration:<24} "
                  f"{row.value:>10.2f} {row.unit}")
        print()


if __name__ == "__main__":
    main()
