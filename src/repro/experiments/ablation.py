"""Ablation studies for the design choices DESIGN.md calls out.

Four questions, answered on the same mid-size instances:

1. **Improved vs. covering-based vs. zero-var encoding** — how many
   variables does each refinement save (Sections 4.2 / 4.4 / extension)?
2. **Gray vs. arbitrary codes** — toggle activity per fired transition
   (Section 5.2).
3. **Quantify-force vs. toggle firing vs. relational image** — traversal
   time of the image implementations, including the partitioned and
   chained relational-product engines.
4. **Dynamic reordering on/off** — final BDD size and time.

Run with ``python -m repro.experiments.ablation``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..analysis import AnalysisSpec, analyze
from ..encoding import DenseEncoding, ImprovedEncoding, SparseEncoding
from ..petri.generators import figure4_net, muller, slotted_ring
from ..petri.smc import find_smcs

INSTANCES: List[Tuple[str, Callable[[], object]]] = [
    ("figure4", figure4_net),
    ("muller-6", lambda: muller(6)),
    ("slot-3", lambda: slotted_ring(3)),
]


@dataclass
class AblationRow:
    """One measurement: instance x configuration."""

    instance: str
    configuration: str
    value: float
    unit: str


def encoding_variable_ablation() -> List[AblationRow]:
    """Variables used by each encoding refinement."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)
        for label, encoding in [
                ("sparse", SparseEncoding(net)),
                ("dense/covering", DenseEncoding(net,
                                                 components=components)),
                ("dense/improved", ImprovedEncoding(
                    net, components=components)),
                ("dense/zero-var", ImprovedEncoding(
                    net, components=components,
                    allow_zero_variable_components=True))]:
            rows.append(AblationRow(name, label,
                                    encoding.num_variables, "variables"))
    return rows


def gray_code_ablation() -> List[AblationRow]:
    """Average toggled variables per fired transition, Gray vs. binary."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)
        for label, gray in (("gray", True), ("binary", False)):
            encoding = ImprovedEncoding(net, components=components,
                                        gray=gray)
            toggles = [len(encoding.transition_spec(t).toggle)
                       for t in net.transitions]
            rows.append(AblationRow(
                name, f"codes={label}",
                sum(toggles) / len(toggles), "toggles/transition"))
    return rows


# Each configuration of ablation question 3 as a declarative spec — the
# whole grid routes through ``analyze()`` with one builder per row.
IMAGE_CONFIGURATIONS: List[Tuple[str, AnalysisSpec]] = [
    ("image=quantify-force",
     AnalysisSpec(strategy="bfs", use_toggle=False, reorder=False)),
    ("image=toggle",
     AnalysisSpec(strategy="bfs", use_toggle=True, reorder=False)),
    ("image=relational",
     AnalysisSpec(form="relational", engine="partitioned",
                  cluster_size=1, reorder=False)),
    ("image=rel-monolithic",
     AnalysisSpec(form="relational", engine="monolithic",
                  reorder=False)),
    ("image=rel-clustered(4)",
     AnalysisSpec(form="relational", engine="partitioned",
                  cluster_size=4, reorder=False)),
    ("image=rel-chained(4)",
     AnalysisSpec(form="relational", engine="chained", cluster_size=4,
                  reorder=False)),
    ("image=rel-chained(auto)",
     AnalysisSpec(form="relational", engine="chained",
                  cluster_size="auto", reorder=False)),
    ("image=rel-chained(auto)+restrict",
     AnalysisSpec(form="relational", engine="chained",
                  cluster_size="auto", simplify_frontier=True,
                  reorder=False)),
    ("image=rel-chained(auto)+reorder",
     AnalysisSpec(form="relational", engine="chained",
                  cluster_size="auto", reorder=True,
                  reorder_threshold=1_000)),
]


def image_implementation_ablation() -> List[AblationRow]:
    """Traversal seconds: quantify-force vs. toggle vs. relational."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)

        def build(n, components=components):
            return ImprovedEncoding(n, components=components)

        for label, spec in IMAGE_CONFIGURATIONS:
            result = analyze(net, spec, encoding_factory=build)
            rows.append(AblationRow(name, label, result.seconds, "s"))
    return rows


def reordering_ablation() -> List[AblationRow]:
    """Final dense-BDD size with and without dynamic reordering."""
    rows = []
    for name, factory in INSTANCES:
        net = factory()
        components = find_smcs(net)
        for label, reorder in (("reorder=on", True), ("reorder=off", False)):
            result = analyze(
                net,
                AnalysisSpec(strategy="bfs", reorder=reorder,
                             reorder_threshold=1_000),
                encoding_factory=lambda n, c=components: ImprovedEncoding(
                    n, components=c))
            rows.append(AblationRow(name, label,
                                    result.final_nodes, "BDD nodes"))
    return rows


def main() -> None:
    sections: Dict[str, Callable[[], List[AblationRow]]] = {
        "1. encoding refinements (variables)": encoding_variable_ablation,
        "2. code assignment (toggle activity)": gray_code_ablation,
        "3. image implementation (seconds)": image_implementation_ablation,
        "4. dynamic reordering (final BDD nodes)": reordering_ablation,
    }
    for title, runner in sections.items():
        print(title)
        print("-" * len(title))
        for row in runner():
            print(f"  {row.instance:<10} {row.configuration:<24} "
                  f"{row.value:>10.2f} {row.unit}")
        print()


if __name__ == "__main__":
    main()
