"""Figure 2 reproduction: encoding schemes on the running example.

Figure 2 compares, on the Figure 1 net (8 reachable markings):

  (a) one variable per place — 7 variables;
  (b) SMC-based encoding — 4 variables (two 2-variable components);
  (c,d) marking-level encodings with the optimal 3 variables, where a
      toggle-aware assignment needs 15/11 toggled bits per fired
      transition and an arbitrary one 19/11.

Run with ``python -m repro.experiments.figure2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import AnalysisSpec, analyze
from ..encoding import DenseEncoding, SparseEncoding
from ..encoding.optimal import (greedy_gray_marking_encoding,
                                optimal_variable_count,
                                random_marking_encoding)
from ..petri.generators import figure1_net
from ..petri.reachability import ReachabilityGraph


@dataclass
class SchemeSummary:
    """One Figure 2 scheme: variables used and toggle activity."""

    label: str
    variables: int
    toggle_cost: float  # average toggled bits per fired transition


def run() -> List[SchemeSummary]:
    """Summaries for the four encoding schemes of Figure 2."""
    net = figure1_net()
    graph = ReachabilityGraph(net)
    edges = len(graph.edges)

    # Cross-check the explicit enumeration against the symbolic facade:
    # the 8-marking count every density below divides by.
    symbolic = analyze(net, AnalysisSpec())
    if symbolic.markings != len(graph):
        raise RuntimeError(
            f"symbolic facade disagrees with explicit enumeration: "
            f"{symbolic.markings} != {len(graph)}")

    sparse = SparseEncoding(net)
    sparse_toggles = sum(
        len(sparse.transition_spec(t).toggle) for _, t, _ in graph.edges)

    dense = DenseEncoding(net)
    dense_toggles = sum(
        len(dense.transition_spec(t).toggle) for _, t, _ in graph.edges)

    greedy = greedy_gray_marking_encoding(graph)
    worst = max((random_marking_encoding(graph, seed=s) for s in range(10)),
                key=lambda enc: enc.toggle_cost())

    return [
        SchemeSummary("(a) one variable per place",
                      sparse.num_variables, sparse_toggles / edges),
        SchemeSummary("(b) SMC-based",
                      dense.num_variables, dense_toggles / edges),
        SchemeSummary("(c) optimal count, toggle-aware codes",
                      optimal_variable_count(len(graph.markings)),
                      greedy.average_toggles()),
        SchemeSummary("(d) optimal count, arbitrary codes",
                      optimal_variable_count(len(graph.markings)),
                      worst.average_toggles()),
    ]


def main() -> None:
    print("Figure 2: encoding schemes for the running example "
          "(8 markings, 11 RG edges)")
    print(f"{'scheme':<42}{'variables':>10}{'avg toggles':>13}")
    print("-" * 65)
    for summary in run():
        print(f"{summary.label:<42}{summary.variables:>10}"
              f"{summary.toggle_cost:>13.2f}")
    print()
    print("Paper reference points: (a) 7 vars; (b) 4 vars; "
          "(c) 3 vars at 15/11 = 1.36; (d) 3 vars at 19/11 = 1.73.")


if __name__ == "__main__":
    main()
