"""Shared experiment machinery for the Section 6 reproductions.

Runs one benchmark instance under a declarative
:class:`~repro.analysis.spec.AnalysisSpec` and collects the columns the
paper's tables report: number of boolean variables, reachable marking
count, final decision-diagram size, peak live nodes and CPU seconds.
Everything routes through :func:`repro.analysis.analyze` — the
spec-driven :func:`run` is the one entry point; ``run_sparse`` /
``run_dense`` / ``run_relational`` / ``run_zdd`` survive as thin
spec-building wrappers for existing callers.

Both BDD schemes run with dynamic variable reordering enabled, as in
the paper ("no special initial order has been used, while dynamic
reordering has been applied at each iteration for both encoding
schemes").
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis import AnalysisSpec, analyze
from ..encoding import ImprovedEncoding
from ..petri.net import PetriNet
from ..petri.smc import find_smcs


@dataclass
class ExperimentRow:
    """One table row: an instance measured under one engine.

    ``status`` mirrors the underlying result: ``"partial"`` rows come
    from budget-aborted runs, so their marking count is a lower bound
    and must not be compared against complete rows.
    """

    instance: str
    engine: str
    markings: int
    variables: int
    nodes: int
    seconds: float
    peak_nodes: int = 0
    status: str = "complete"

    def density(self) -> float:
        """Optimal bits over used variables (Section 3)."""
        bits = max(1, math.ceil(math.log2(self.markings)))
        return bits / self.variables


def full_scale() -> bool:
    """Paper-scale sizes when ``REPRO_FULL`` is set (hours in pure
    Python); harness-scale otherwise."""
    return bool(os.environ.get("REPRO_FULL"))


def engine_label(spec: AnalysisSpec) -> str:
    """The table-column label a spec reports under.

    ``sparse`` / ``covering`` / ``dense`` for the functional BDD
    schemes (``dense`` is the improved Section 4.4 encoding, the
    paper's table name for it; ``covering`` the intermediate
    covering-based one — they must not share a label or
    :func:`format_table` would silently overwrite one row with the
    other), ``rel-<engine>`` for the relational BDD engines, ``zdd`` /
    ``zdd-<engine>`` for the sparse-ZDD baseline and its relational
    form, ``k<bound>`` for the k-bounded extension.
    """
    if spec.backend == "portfolio":
        return "portfolio"
    if spec.k_bound is not None:
        return f"k{spec.k_bound}"
    if spec.backend == "zdd":
        if spec.resolved_engine == "classic":
            return "zdd"
        return f"zdd-{spec.resolved_engine}"
    if spec.resolved_form == "relational":
        return f"rel-{spec.resolved_engine}"
    return {"sparse": "sparse", "dense": "covering",
            "improved": "dense"}[spec.scheme]


def run(name: str, net: PetriNet, spec: AnalysisSpec,
        label: Optional[str] = None,
        encoding_factory: Optional[Callable] = None,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        cache=None) -> ExperimentRow:
    """Measure one instance under one spec — the single entry point.

    Construction time (encoding, SMC discovery, relation building) is
    included in the reported seconds, as in the paper (where it is ~1 %
    of total); the breakdown lives in the underlying
    :class:`~repro.analysis.result.AnalysisResult` extras.  ``label``
    overrides the :func:`engine_label` column name;
    ``encoding_factory`` (``net -> Encoding``) the BDD backends' scheme
    lookup.  ``checkpoint_path`` / ``resume`` thread durability through
    without touching the measured spec's semantics: long paper-scale
    sweeps (``REPRO_FULL``) survive being killed and pick up where the
    last safe point left off.

    ``cache`` takes a :class:`~repro.service.cache.ResultCache`: a hit
    builds the row from the cached payload without running anything (a
    sweep re-run after an interactive session, or over a shared cache
    directory, only pays for the instances it has not seen), a miss
    runs normally and stores the result.  The cached row's seconds are
    the *original* solve's — a table built over cache hits reports
    compute cost, not lookup cost.  Incompatible with
    ``encoding_factory`` (the factory is not part of the cache key).
    """
    if checkpoint_path is not None:
        spec = spec.replace(checkpoint_path=checkpoint_path,
                            resume=resume)
    if cache is not None and encoding_factory is None:
        lookup = cache.get_for(net, spec)
        if lookup.hit:
            payload = lookup.result
            return ExperimentRow(
                instance=name,
                engine=label or engine_label(spec),
                markings=payload["markings"],
                variables=payload["variables"],
                nodes=payload["final_nodes"],
                seconds=payload["seconds"],
                peak_nodes=payload["peak_nodes"],
                status=payload.get("status", "complete"))
    result = analyze(net, spec, encoding_factory=encoding_factory)
    if cache is not None and encoding_factory is None:
        cache.put_for(net, spec, result.to_dict())
    return ExperimentRow(instance=name,
                         engine=label or engine_label(spec),
                         markings=result.markings,
                         variables=result.variables,
                         nodes=result.final_nodes,
                         seconds=result.seconds,
                         peak_nodes=result.peak_nodes,
                         status=result.status)


def run_sparse(name: str, net: PetriNet, reorder: bool = True,
               reorder_threshold: int = 2_000,
               use_toggle: bool = True) -> ExperimentRow:
    """Sparse (one-variable-per-place) BDD traversal (wrapper)."""
    spec = AnalysisSpec(scheme="sparse", reorder=reorder,
                        reorder_threshold=reorder_threshold,
                        use_toggle=use_toggle, strategy="bfs")
    return run(name, net, spec, label="sparse")


def run_dense(name: str, net: PetriNet, reorder: bool = True,
              reorder_threshold: int = 2_000,
              use_toggle: bool = True,
              smc_strategy: str = "auto",
              encoding_factory: Optional[Callable] = None) -> ExperimentRow:
    """Dense (improved SMC-based) BDD traversal (wrapper).

    ``encoding_factory``, when given, is called as
    ``factory(net, components)`` with the discovered SMCs — the legacy
    two-argument shape, adapted onto the facade's single-argument one.
    """
    if encoding_factory is None:
        def build(n):
            return ImprovedEncoding(
                n, components=find_smcs(n, strategy=smc_strategy))
    else:
        def build(n):
            return encoding_factory(
                n, find_smcs(n, strategy=smc_strategy))
    spec = AnalysisSpec(scheme="improved", reorder=reorder,
                        reorder_threshold=reorder_threshold,
                        use_toggle=use_toggle, strategy="bfs")
    return run(name, net, spec, label="dense", encoding_factory=build)


def run_relational(name: str, net: PetriNet, engine: str = "partitioned",
                   cluster_size="auto",
                   simplify_frontier: bool = False,
                   reorder: bool = False,
                   reorder_threshold: int = 2_000,
                   encoding_factory: Optional[Callable] = None,
                   workers=None) -> ExperimentRow:
    """Relation-based BDD traversal through a chosen image engine
    (wrapper); the reported engine column is ``rel-<engine>``.

    ``workers`` sizes the ``partitioned-mp`` engine's process pool
    (int or ``"auto"``; leave ``None`` for the serial engines).
    """
    spec = AnalysisSpec(form="relational", engine=engine,
                        cluster_size=cluster_size,
                        simplify_frontier=simplify_frontier,
                        reorder=reorder,
                        reorder_threshold=reorder_threshold,
                        workers=workers)
    return run(name, net, spec, encoding_factory=encoding_factory)


def run_zdd(name: str, net: PetriNet, engine: Optional[str] = None,
            cluster_size=None) -> ExperimentRow:
    """Sparse ZDD traversal (the Table 4 baseline; wrapper).

    ``engine`` selects the image computation: ``"classic"`` (the
    per-transition subset1/change rewrite, reported as ``zdd``) or one
    of ``monolithic | partitioned | chained`` (reported as
    ``zdd-<engine>``).  ``None`` takes the project-wide default from
    :class:`~repro.analysis.spec.AnalysisSpec` — the same engine the
    CLI's ``--engine zdd`` runs, so the defaults cannot skew apart.
    """
    if engine == "classic":
        spec = AnalysisSpec(backend="zdd", form="functional")
    else:
        spec = AnalysisSpec(backend="zdd", form="relational",
                            engine=engine, cluster_size=cluster_size)
    return run(name, net, spec)


def run_portfolio(name: str, net: PetriNet,
                  members: Optional[Sequence[str]] = None,
                  timeout: Optional[float] = None,
                  member_timeout: Optional[float] = None
                  ) -> ExperimentRow:
    """Race the portfolio members in worker processes (wrapper).

    The row reports the *winner's* columns under the ``portfolio``
    label; its seconds are the race's wall clock (spawn included), so
    a portfolio row is directly comparable against the single-engine
    rows of the same instance — the race costs what the user waits.
    """
    spec = AnalysisSpec(
        backend="portfolio",
        portfolio_members=tuple(members) if members is not None else None,
        timeout=timeout, member_timeout=member_timeout)
    return run(name, net, spec)


def format_table(title: str, rows: Sequence[ExperimentRow],
                 engines: Sequence[str],
                 include_peak: bool = False) -> str:
    """Render rows grouped by instance, paper-table style.

    ``include_peak`` adds a per-engine peak-live-nodes column (the
    paper's Table 4 memory column).
    """
    by_instance: Dict[str, Dict[str, ExperimentRow]] = {}
    order: List[str] = []
    for row in rows:
        if row.instance not in by_instance:
            by_instance[row.instance] = {}
            order.append(row.instance)
        by_instance[row.instance][row.engine] = row

    header = f"{'PN':<14}{'markings':>12}"
    for engine in engines:
        header += f"{engine + ' V':>10}{engine + ' nodes':>13}" \
                  f"{engine + ' CPU':>12}"
        if include_peak:
            header += f"{engine + ' peak':>13}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for instance in order:
        cells = by_instance[instance]
        any_row = next(iter(cells.values()))
        line = f"{instance:<14}{any_row.markings:>12}"
        for engine in engines:
            row = cells.get(engine)
            if row is None:
                line += f"{'-':>10}{'-':>13}{'-':>12}"
                if include_peak:
                    line += f"{'-':>13}"
            else:
                line += (f"{row.variables:>10}{row.nodes:>13}"
                         f"{row.seconds:>11.2f}s")
                if include_peak:
                    line += f"{row.peak_nodes:>13}"
        lines.append(line)
    lines.append("-" * len(header))
    return "\n".join(lines)


def compare_engines(rows: Sequence[ExperimentRow], base: str, other: str
                    ) -> Dict[str, Dict[str, float]]:
    """Per-instance ratios ``base / other`` for variables, nodes, time."""
    by_instance: Dict[str, Dict[str, ExperimentRow]] = {}
    for row in rows:
        by_instance.setdefault(row.instance, {})[row.engine] = row
    ratios: Dict[str, Dict[str, float]] = {}
    for instance, cells in by_instance.items():
        if base in cells and other in cells:
            left, right = cells[base], cells[other]
            ratios[instance] = {
                "variables": left.variables / right.variables,
                "nodes": left.nodes / right.nodes,
                "seconds": (left.seconds / right.seconds
                            if right.seconds > 0 else float("inf")),
            }
    return ratios
