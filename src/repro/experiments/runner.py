"""Shared experiment machinery for the Section 6 reproductions.

Runs one benchmark instance under a chosen engine and collects the
columns the paper's tables report: number of boolean variables, reachable
marking count, final decision-diagram size and CPU seconds.  Both BDD
schemes run with dynamic variable reordering enabled, as in the paper
("no special initial order has been used, while dynamic reordering has
been applied at each iteration for both encoding schemes").
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..encoding import ImprovedEncoding, SparseEncoding
from ..petri.net import PetriNet
from ..petri.smc import find_smcs
from ..symbolic import (RelationalNet, SymbolicNet, ZddNet,
                        ZddRelationalNet, traverse, traverse_relational,
                        traverse_zdd)


@dataclass
class ExperimentRow:
    """One table row: an instance measured under one engine."""

    instance: str
    engine: str
    markings: int
    variables: int
    nodes: int
    seconds: float

    def density(self) -> float:
        """Optimal bits over used variables (Section 3)."""
        bits = max(1, math.ceil(math.log2(self.markings)))
        return bits / self.variables


def full_scale() -> bool:
    """Paper-scale sizes when ``REPRO_FULL`` is set (hours in pure
    Python); harness-scale otherwise."""
    return bool(os.environ.get("REPRO_FULL"))


def run_sparse(name: str, net: PetriNet, reorder: bool = True,
               reorder_threshold: int = 2_000,
               use_toggle: bool = True) -> ExperimentRow:
    """Sparse (one-variable-per-place) BDD traversal."""
    symnet = SymbolicNet(SparseEncoding(net), auto_reorder=reorder,
                         reorder_threshold=reorder_threshold)
    result = traverse(symnet, use_toggle=use_toggle)
    return ExperimentRow(instance=name, engine="sparse",
                         markings=result.marking_count,
                         variables=result.variable_count,
                         nodes=result.final_bdd_nodes,
                         seconds=result.seconds)


def run_dense(name: str, net: PetriNet, reorder: bool = True,
              reorder_threshold: int = 2_000,
              use_toggle: bool = True,
              smc_strategy: str = "auto",
              encoding_factory: Optional[Callable] = None) -> ExperimentRow:
    """Dense (improved SMC-based) BDD traversal.

    The encoding time — SMC discovery plus code assignment — is included
    in the reported seconds, as in the paper (where it is ~1 % of total).
    """
    start = time.perf_counter()
    components = find_smcs(net, strategy=smc_strategy)
    if encoding_factory is None:
        encoding = ImprovedEncoding(net, components=components)
    else:
        encoding = encoding_factory(net, components)
    encode_seconds = time.perf_counter() - start
    symnet = SymbolicNet(encoding, auto_reorder=reorder,
                         reorder_threshold=reorder_threshold)
    result = traverse(symnet, use_toggle=use_toggle)
    return ExperimentRow(instance=name, engine="dense",
                         markings=result.marking_count,
                         variables=result.variable_count,
                         nodes=result.final_bdd_nodes,
                         seconds=result.seconds + encode_seconds)


def run_relational(name: str, net: PetriNet, engine: str = "partitioned",
                   cluster_size="auto",
                   simplify_frontier: bool = False,
                   reorder: bool = False,
                   reorder_threshold: int = 2_000,
                   encoding_factory: Optional[Callable] = None
                   ) -> ExperimentRow:
    """Relation-based BDD traversal through a chosen image engine.

    ``engine`` is one of ``monolithic | partitioned | chained`` (see
    :func:`repro.symbolic.traversal.make_image_engine`); the reported
    engine column is ``rel-<engine>``.  ``cluster_size`` is a positive
    integer or ``"auto"`` (adaptive support-overlap clustering, the
    default).  ``reorder`` enables pair-grouped sifting at the traversal
    safe points and ``simplify_frontier`` the Coudert-Madre frontier
    restriction.  Construction of the relational net is included in the
    reported seconds, mirroring :func:`run_dense`'s treatment of
    encoding time.
    """
    start = time.perf_counter()
    if encoding_factory is None:
        encoding = ImprovedEncoding(net)
    else:
        encoding = encoding_factory(net)
    relnet = RelationalNet(encoding, auto_reorder=reorder,
                           reorder_threshold=reorder_threshold)
    build_seconds = time.perf_counter() - start
    result = traverse_relational(relnet, engine=engine,
                                 cluster_size=cluster_size,
                                 simplify_frontier=simplify_frontier)
    return ExperimentRow(instance=name, engine=f"rel-{engine}",
                         markings=result.marking_count,
                         variables=result.variable_count,
                         nodes=result.final_bdd_nodes,
                         seconds=result.seconds + build_seconds)


def run_zdd(name: str, net: PetriNet, engine: str = "classic",
            cluster_size="auto") -> ExperimentRow:
    """Sparse ZDD traversal (the Yoneda baseline of Table 4).

    ``engine`` selects the image computation: ``"classic"`` (default,
    the per-transition subset1/change rewrite, reported as ``zdd``) or
    one of ``monolithic | partitioned | chained`` through the
    relational-product form over paired current/next elements (reported
    as ``zdd-<engine>``).  ``cluster_size`` is a positive integer or
    ``"auto"`` and only affects the relational engines.  Construction of
    the relational net is included in the reported seconds, mirroring
    :func:`run_relational`.
    """
    start = time.perf_counter()
    if engine == "classic":
        zddnet = ZddNet(net)
        label = "zdd"
    else:
        zddnet = ZddRelationalNet(net)
        label = f"zdd-{engine}"
    build_seconds = time.perf_counter() - start
    result = traverse_zdd(zddnet, engine=engine,
                          cluster_size=cluster_size)
    return ExperimentRow(instance=name, engine=label,
                         markings=result.marking_count,
                         variables=result.variable_count,
                         nodes=result.final_zdd_nodes,
                         seconds=result.seconds + build_seconds)


def format_table(title: str, rows: Sequence[ExperimentRow],
                 engines: Sequence[str]) -> str:
    """Render rows grouped by instance, paper-table style."""
    by_instance: Dict[str, Dict[str, ExperimentRow]] = {}
    order: List[str] = []
    for row in rows:
        if row.instance not in by_instance:
            by_instance[row.instance] = {}
            order.append(row.instance)
        by_instance[row.instance][row.engine] = row

    header = f"{'PN':<14}{'markings':>12}"
    for engine in engines:
        header += f"{engine + ' V':>10}{engine + ' nodes':>13}" \
                  f"{engine + ' CPU':>12}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for instance in order:
        cells = by_instance[instance]
        any_row = next(iter(cells.values()))
        line = f"{instance:<14}{any_row.markings:>12}"
        for engine in engines:
            row = cells.get(engine)
            if row is None:
                line += f"{'-':>10}{'-':>13}{'-':>12}"
            else:
                line += (f"{row.variables:>10}{row.nodes:>13}"
                         f"{row.seconds:>11.2f}s")
        lines.append(line)
    lines.append("-" * len(header))
    return "\n".join(lines)


def compare_engines(rows: Sequence[ExperimentRow], base: str, other: str
                    ) -> Dict[str, Dict[str, float]]:
    """Per-instance ratios ``base / other`` for variables, nodes, time."""
    by_instance: Dict[str, Dict[str, ExperimentRow]] = {}
    for row in rows:
        by_instance.setdefault(row.instance, {})[row.engine] = row
    ratios: Dict[str, Dict[str, float]] = {}
    for instance, cells in by_instance.items():
        if base in cells and other in cells:
            left, right = cells[base], cells[other]
            ratios[instance] = {
                "variables": left.variables / right.variables,
                "nodes": left.nodes / right.nodes,
                "seconds": (left.seconds / right.seconds
                            if right.seconds > 0 else float("inf")),
            }
    return ratios
