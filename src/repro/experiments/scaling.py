"""Variable-count and density scaling across the benchmark families.

Not a table in the paper, but the quantity its abstract leads with: the
number of encoding variables as systems grow, and the Section 3 density
(optimal bits / used variables).  For each family and size this harness
reports sparse vs. dense variables, the reduction ratio, and the density
of both schemes computed from the exact marking count.

Run with ``python -m repro.experiments.scaling``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..encoding import ImprovedEncoding, SparseEncoding
from ..petri.generators import (dme_spec, muller, muller_marking_count,
                                philosophers, slotted_ring)
from ..petri.reachability import count_reachable_markings
from ..petri.smc import find_smcs

FAMILIES: Dict[str, Callable[[int], object]] = {
    "muller": muller,
    "phil": philosophers,
    "slot": slotted_ring,
    "dmespec": dme_spec,
}
DEFAULT_SIZES: Dict[str, Sequence[int]] = {
    "muller": (2, 4, 6, 8),
    "phil": (2, 3, 4),
    "slot": (2, 3, 4),
    "dmespec": (2, 3, 4),
}


@dataclass
class ScalingRow:
    """One family instance: variable counts and densities."""

    instance: str
    places: int
    markings: int
    sparse_variables: int
    dense_variables: int

    @property
    def reduction(self) -> float:
        """Dense variables as a fraction of sparse variables."""
        return self.dense_variables / self.sparse_variables

    @property
    def optimal_bits(self) -> int:
        """``ceil(log2 markings)`` — the unattainable optimum."""
        return max(1, math.ceil(math.log2(self.markings)))

    def sparse_density(self) -> float:
        """Optimal bits over sparse variables."""
        return self.optimal_bits / self.sparse_variables

    def dense_density(self) -> float:
        """Optimal bits over dense variables."""
        return self.optimal_bits / self.dense_variables


def measure(family: str, size: int) -> ScalingRow:
    """Measure one instance (marking counts by closed form where known,
    explicit enumeration otherwise)."""
    net = FAMILIES[family](size)
    if family == "muller":
        markings = muller_marking_count(size)
    else:
        markings = count_reachable_markings(net, max_markings=2_000_000)
    components = find_smcs(net)
    dense = ImprovedEncoding(net, components=components)
    sparse = SparseEncoding(net)
    return ScalingRow(instance=f"{family}-{size}",
                      places=len(net.places), markings=markings,
                      sparse_variables=sparse.num_variables,
                      dense_variables=dense.num_variables)


def run(sizes: Dict[str, Sequence[int]] = None) -> List[ScalingRow]:
    """Measure all configured instances."""
    if sizes is None:
        sizes = DEFAULT_SIZES
    return [measure(family, size)
            for family, family_sizes in sizes.items()
            for size in family_sizes]


def main() -> None:
    rows = run()
    header = (f"{'PN':<12}{'places':>8}{'markings':>12}{'opt bits':>10}"
              f"{'sparse V':>10}{'dense V':>9}{'ratio':>8}"
              f"{'D sparse':>10}{'D dense':>9}")
    print("Encoding-variable scaling and density (Section 3 metric)")
    print("=" * len(header))
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row.instance:<12}{row.places:>8}{row.markings:>12}"
              f"{row.optimal_bits:>10}{row.sparse_variables:>10}"
              f"{row.dense_variables:>9}{row.reduction:>8.2f}"
              f"{row.sparse_density():>10.2f}{row.dense_density():>9.2f}")
    print("-" * len(header))
    print("The dense encoding roughly doubles the density at every size; "
          "the gap to the optimum\n(density 1.0) is the price of not "
          "knowing the reachability set in advance (Section 3).")


if __name__ == "__main__":
    main()
