"""Table 3 reproduction: sparse vs. dense encoding schemes.

The paper's Table 3 runs three scalable families — Muller pipelines,
dining philosophers and the slotted ring — under the conventional sparse
encoding and the SMC-based dense encoding, reporting the reachable
marking count, variable count, final reachability-BDD size and CPU time.

Default sizes are scaled to what pure-Python BDDs traverse in seconds;
``REPRO_FULL=1`` switches to the paper's sizes (muller-30/40/50,
phil-5/8/10, slot-5/7/9 — expect very long runs).

Run with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..analysis import AnalysisSpec
from . import runner
from ..petri.generators import muller, philosophers, slotted_ring
from .runner import ExperimentRow, format_table, full_scale

HARNESS_SIZES: Dict[str, Sequence[int]] = {
    "muller": (4, 6, 8),
    "phil": (2, 3, 4),
    "slot": (2, 3, 4),
}
PAPER_SIZES: Dict[str, Sequence[int]] = {
    "muller": (30, 40, 50),
    "phil": (5, 8, 10),
    "slot": (5, 7, 9),
}
FACTORIES: Dict[str, Callable[[int], object]] = {
    "muller": muller,
    "phil": philosophers,
    "slot": slotted_ring,
}

# The published Table 3 (for EXPERIMENTS.md comparisons): markings,
# sparse (V, BDD, CPU-s), dense (V, BDD, CPU-s); None = timeout.
PAPER_TABLE3 = {
    "muller-30": (6.0e7, (120, 4475, 585), (60, 1315, 32)),
    "muller-40": (4.6e10, (150, 4897, 7046), (80, 2339, 131)),
    "muller-50": (3.6e13, (200, None, None), (100, 3651, 449)),
    "phil-5": (8.5e4, (65, 640, 2), (35, 155, 3)),
    "phil-8": (7.8e7, (104, 2933, 12), (56, 373, 19)),
    "phil-10": (7.4e9, (130, 1689, 90), (70, 425, 285)),
    "slot-5": (1.7e6, (50, 492, 14), (25, 131, 5)),
    "slot-7": (7.9e8, (70, 807, 109), (35, 239, 9)),
    "slot-9": (3.8e11, (90, None, None), (45, 400, 110)),
}


def instances(sizes: Dict[str, Sequence[int]] = None
              ) -> List[Tuple[str, object]]:
    """The benchmark instances as ``(name, net)`` pairs."""
    if sizes is None:
        sizes = PAPER_SIZES if full_scale() else HARNESS_SIZES
    result = []
    for family, family_sizes in sizes.items():
        for size in family_sizes:
            result.append((f"{family}-{size}", FACTORIES[family](size)))
    return result


def run(sizes: Dict[str, Sequence[int]] = None,
        reorder: bool = True) -> List[ExperimentRow]:
    """Measure every instance under both encodings via ``analyze()``."""
    rows: List[ExperimentRow] = []
    for name, net in instances(sizes):
        for scheme, label in (("sparse", "sparse"),
                              ("improved", "dense")):
            spec = AnalysisSpec(scheme=scheme, strategy="bfs",
                                reorder=reorder)
            rows.append(runner.run(name, net, spec, label=label))
    return rows


def main() -> None:
    rows = run()
    print(format_table(
        "Table 3: sparse vs. dense encoding (this reproduction)",
        rows, engines=("sparse", "dense")))
    print()
    print("Expected shape (paper): dense uses ~50% of the variables, "
          "BDD nodes shrink 2-4x.")


if __name__ == "__main__":
    main()
