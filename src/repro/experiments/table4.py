"""Table 4 reproduction: sparse ZDDs (Yoneda et al.) vs. dense BDDs.

The paper's Table 4 compares the ZDD representation of the sparse
encoding against the dense BDD encoding on DME specification nets, DME
circuit nets and two register-control (JJreg) nets.  The original
benchmark files are not distributed; the generators rebuild the same
regimes (see DESIGN.md, substitutions).

Default sizes are harness-scale; ``REPRO_FULL=1`` switches to
paper-scale cell counts.

Run with ``python -m repro.experiments.table4``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis import AnalysisSpec
from . import runner
from ..petri.generators import dme_circuit, dme_spec, jj_register
from .runner import ExperimentRow, format_table, full_scale

# The published Table 4: markings, ZDD (V, nodes, CPU-s on HP-9000),
# dense BDD (V, nodes, CPU-s on SPARC-20).
PAPER_TABLE4 = {
    "DMEspec8": (7.8e5, (137, 32178, 14), (85, 1748, 12)),
    "DMEspec9": (3.5e6, (154, 71602, 39), (94, 2544, 20)),
    "DMEcir5": (8.5e5, (491, 92214, 622), (249, 47952, 418)),
    "DMEcir7": (9.0e7, (687, 504324, 10205), (347, 394334, 7584)),
    "JJreg-a": (1.8e6, (251, 952246, 2326), (122, 17874, 836)),
    "JJreg-b": (1.1e5, (248, 181701, 42), (120, 24355, 397)),
}


def instances() -> List[Tuple[str, object]]:
    """Benchmark instances: DME spec/circuit rings and JJreg variants."""
    if full_scale():
        return [
            ("DMEspec-8", dme_spec(8)),
            ("DMEspec-9", dme_spec(9)),
            ("DMEcir-5", dme_circuit(5)),
            ("DMEcir-7", dme_circuit(7)),
            ("JJreg-a", jj_register("a", bits=40)),
            ("JJreg-b", jj_register("b", bits=40)),
        ]
    return [
        ("DMEspec-3", dme_spec(3)),
        ("DMEspec-4", dme_spec(4)),
        ("DMEcir-2", dme_circuit(2, wire_depth=2)),
        ("DMEcir-3", dme_circuit(3, wire_depth=1)),
        ("JJreg-a", jj_register("a", bits=5)),
        ("JJreg-b", jj_register("b", bits=5)),
    ]


def run(reorder: bool = True,
        zdd_engines: Tuple[str, ...] = ("classic", "chained")
        ) -> List[ExperimentRow]:
    """Measure every instance under the ZDD baseline(s) and the dense BDD.

    ``zdd_engines`` selects which sparse-ZDD image engines to run —
    ``"classic"`` is the per-transition Yoneda baseline, the relational
    names (``chained`` by default) add the partitioned-relation form so
    the sparse baseline rides the same fused-image machinery as the
    BDD engines.  Everything routes through ``analyze()``; the ZDD rows
    carry peak-live-node counts, so the table can finally print the
    paper's memory column.
    """
    rows: List[ExperimentRow] = []
    for name, net in instances():
        for engine in zdd_engines:
            if engine == "classic":
                spec = AnalysisSpec(backend="zdd", form="functional")
            else:
                spec = AnalysisSpec(backend="zdd", form="relational",
                                    engine=engine, cluster_size="auto")
            rows.append(runner.run(name, net, spec))
        dense = AnalysisSpec(scheme="improved", strategy="bfs",
                             reorder=reorder)
        rows.append(runner.run(name, net, dense, label="dense"))
    return rows


def main() -> None:
    rows = run()
    print(format_table(
        "Table 4: sparse-ZDD (Yoneda) vs. dense BDD (this reproduction)",
        rows, engines=("zdd", "zdd-chained", "dense"),
        include_peak=True))
    print()
    print("Expected shape (paper): dense uses ~40-50% fewer variables and "
          "fewer nodes than the sparse ZDD; zdd-chained reaches the same "
          "fixpoint as zdd with fewer, cheaper iterations.  Peak columns "
          "are live manager nodes (the paper's memory metric; the ZDD "
          "manager never frees, so its peak is every node ever built).")


if __name__ == "__main__":
    main()
