"""Petri-net substrate: nets, markings, structure theory, reachability.

* :class:`PetriNet`, :class:`Marking` — the basic formalism (Section 2).
* :mod:`repro.petri.incidence` — incidence matrix and state equation.
* :mod:`repro.petri.invariants` — minimal semi-positive P-invariants
  (Farkas elimination, exact arithmetic).
* :mod:`repro.petri.smc` — State Machine Components (Theorem 2.1).
* :class:`ReachabilityGraph` — explicit enumeration for cross-validation.
* :mod:`repro.petri.generators` — the benchmark families of Section 6.
"""

from .marking import Marking
from .net import PetriNet, PetriNetError
from .reachability import (ReachabilityGraph, StateExplosion, UnsafeNet,
                           assert_safe, count_reachable_markings,
                           find_deadlock)
from .smc import (StateMachineComponent, coverage, find_smcs,
                  is_smc_decomposable, single_token_smcs, smc_from_places,
                  smcs_from_invariants)

__all__ = [
    "PetriNet", "PetriNetError", "Marking",
    "ReachabilityGraph", "StateExplosion", "UnsafeNet",
    "count_reachable_markings", "assert_safe", "find_deadlock",
    "StateMachineComponent", "smc_from_places", "smcs_from_invariants",
    "single_token_smcs", "find_smcs", "coverage", "is_smc_decomposable",
]
