"""Structural net classes (Section 2.2 context).

The paper notes that "some classes of PNs are decomposable into SMCs
[Hack 1972]" — the classic result being that live and safe *free-choice*
nets are covered by strongly connected state-machine components.  This
module provides the standard class tests used to predict whether the
dense encoding will cover a net well:

* state machines (every transition has one input and one output place),
* marked graphs (every place has one input and one output transition),
* free-choice and extended free-choice nets,
* conflict clusters (the equal-conflict sets behind the definitions).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from .net import PetriNet


def is_state_machine(net: PetriNet) -> bool:
    """Every transition has exactly one input and one output place."""
    return net.is_state_machine()


def is_marked_graph(net: PetriNet) -> bool:
    """Every place has exactly one input and one output transition.

    Marked graphs are the dual of state machines: no choice, only
    concurrency.  Each place of a safe marked graph still forms trivial
    SMC material only through its circuits.
    """
    return all(len(net.preset(p)) == 1 and len(net.postset(p)) == 1
               for p in net.places)


def is_free_choice(net: PetriNet) -> bool:
    """Free choice: any two transitions sharing an input place have that
    place as their *only* input.

    Equivalent formulation: for every arc ``(p, t)``, either ``p`` is the
    unique input of ``t`` or ``t`` is the unique output of ``p``.
    """
    for place in net.places:
        outputs = net.postset(place)
        if len(outputs) > 1:
            for trans in outputs:
                if net.preset(trans) != frozenset({place}):
                    return False
    return True


def is_extended_free_choice(net: PetriNet) -> bool:
    """Extended free choice: transitions sharing any input place have
    identical presets."""
    for place in net.places:
        presets = [net.preset(t) for t in net.postset(place)]
        if any(pre != presets[0] for pre in presets[1:]):
            return False
    return True


def conflict_clusters(net: PetriNet) -> List[FrozenSet[str]]:
    """Partition places and transitions into conflict clusters.

    The cluster of a node is the smallest set closed under "place ->
    its output transitions" and "transition -> its input places".
    Clusters are where choices are resolved; free-choice nets have
    particularly simple ones.
    """
    parent: Dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(node, node) != node:
            parent[node], node = root, parent[node]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for place in net.places:
        for trans in net.postset(place):
            union(place, trans)
    clusters: Dict[str, Set[str]] = {}
    for node in list(net.places) + list(net.transitions):
        clusters.setdefault(find(node), set()).add(node)
    return sorted((frozenset(group) for group in clusters.values()),
                  key=lambda g: sorted(g)[0])


def classify(net: PetriNet) -> Dict[str, bool]:
    """All class predicates at once (for reports and tooling)."""
    return {
        "state_machine": is_state_machine(net),
        "marked_graph": is_marked_graph(net),
        "free_choice": is_free_choice(net),
        "extended_free_choice": is_extended_free_choice(net),
    }
