"""Benchmark Petri-net families (Section 6 of the paper).

* :func:`figure1_net` — the running example (Figure 1).
* :func:`philosophers` / :func:`figure4_net` — dining philosophers
  (``phil-n``, Figure 4).
* :func:`muller` — Muller C-element pipelines (``muller-n``).
* :func:`slotted_ring` — slotted-ring protocol (``slot-n``).
* :func:`dme_spec` / :func:`dme_circuit` — DME ring substitutes
  (``DMEspec-n`` / ``DMEcir-n``).
* :func:`jj_register` — register-control substitutes (``JJreg-a/b``).
"""

from .dme import dme_circuit, dme_spec
from .figure1 import FIGURE1_MARKINGS, FIGURE1_SMC_PLACES, figure1_net
from .jjreg import jj_register
from .muller import muller, muller_marking_count, muller_ring
from .philosophers import FIGURE3_SMC_PLACES, figure4_net, philosophers
from .slotted_ring import slotted_ring

__all__ = [
    "figure1_net", "FIGURE1_MARKINGS", "FIGURE1_SMC_PLACES",
    "philosophers", "figure4_net", "FIGURE3_SMC_PLACES",
    "muller", "muller_ring", "muller_marking_count",
    "slotted_ring",
    "dme_spec", "dme_circuit",
    "jj_register",
]
