"""Distributed mutual-exclusion (DME) ring nets.

The paper's Table 4 uses Yoneda's DME benchmarks: ``DMEspec-n`` is the
specification-level model of an n-cell DME ring, ``DMEcir-n`` the much
larger circuit-level model.  The original ``.net`` files are not
distributed with the paper, so this module rebuilds both levels from the
published structure of Martin's DME ring (see DESIGN.md, substitutions):

* :func:`dme_spec` — each cell has a user cycle, request/acknowledge wire
  pairs, a cell-controller cycle and a slot in the ring-wide privilege
  token SMC.
* :func:`dme_circuit` — the same protocol with every wire expanded into a
  chain of buffer stages (the standard gate-level STG-to-PN expansion:
  one complementary place pair per gate output).  This is what makes the
  circuit model an order of magnitude larger, as in Table 4.

Both nets are safe and deadlock-free; each complementary pair, each
controller cycle and the ring token set are single-token SMCs, so the
dense encoding roughly halves the variable count.
"""

from __future__ import annotations

from typing import List

from ..net import PetriNet


def _add_pair(net: PetriNet, name: str, start_high: bool = False) -> None:
    net.add_place(f"{name}_0", tokens=0 if start_high else 1)
    net.add_place(f"{name}_1", tokens=1 if start_high else 0)


def _add_wire_chain(net: PetriNet, name: str, depth: int) -> List[str]:
    """A chain of ``depth + 1`` complementary pairs: stage 0 is the driver
    end, stage ``depth`` the receiver end.  Returns the stage names."""
    stages = [f"{name}_s{j}" for j in range(depth + 1)]
    for stage in stages:
        _add_pair(net, stage)
    for j in range(1, depth + 1):
        prev, cur = stages[j - 1], stages[j]
        # Buffer stage follows its predecessor (read arcs on the input).
        net.add_transition(f"{cur}_up",
                           pre=[f"{cur}_0", f"{prev}_1"],
                           post=[f"{cur}_1", f"{prev}_1"])
        net.add_transition(f"{cur}_down",
                           pre=[f"{cur}_1", f"{prev}_0"],
                           post=[f"{cur}_0", f"{prev}_0"])
    return stages


def _build_dme(cells: int, wire_depth: int, name: str) -> PetriNet:
    if cells < 2:
        raise ValueError("need at least two cells")
    if wire_depth < 0:
        raise ValueError("wire depth must be non-negative")
    net = PetriNet(name)

    req_in: List[str] = []
    req_out: List[str] = []
    ack_in: List[str] = []
    ack_out: List[str] = []
    for i in range(cells):
        cell = f"c{i}"
        # User cycle: idle -> requesting -> critical -> idle.
        net.add_place(f"{cell}_ui", tokens=1)
        net.add_place(f"{cell}_ur")
        net.add_place(f"{cell}_uc")
        # Cell controller cycle: idle -> wants token -> granted -> waiting
        # for the user to release.
        net.add_place(f"{cell}_ci", tokens=1)
        net.add_place(f"{cell}_cw")
        net.add_place(f"{cell}_cg")
        net.add_place(f"{cell}_cr")
        # Privilege token slot.
        net.add_place(f"{cell}_tk", tokens=1 if i == 0 else 0)
        # Request and acknowledge wires (chains of buffer pairs).
        r_stages = _add_wire_chain(net, f"{cell}_r", wire_depth)
        a_stages = _add_wire_chain(net, f"{cell}_a", wire_depth)
        req_in.append(r_stages[0])     # driven by the user
        req_out.append(r_stages[-1])   # observed by the cell
        ack_in.append(a_stages[0])     # driven by the cell
        ack_out.append(a_stages[-1])   # observed by the user

    for i in range(cells):
        cell = f"c{i}"
        nxt = f"c{(i + 1) % cells}"
        r_drv, r_rcv = req_in[i], req_out[i]
        a_drv, a_rcv = ack_in[i], ack_out[i]
        # User raises its request wire.
        net.add_transition(f"{cell}_u_req",
                           pre=[f"{cell}_ui", f"{r_drv}_0"],
                           post=[f"{cell}_ur", f"{r_drv}_1"])
        # Cell notices the request (read arc) and competes for the token.
        net.add_transition(f"{cell}_c_see",
                           pre=[f"{cell}_ci", f"{r_rcv}_1"],
                           post=[f"{cell}_cw", f"{r_rcv}_1"])
        # Cell grabs the privilege token.
        net.add_transition(f"{cell}_c_grab",
                           pre=[f"{cell}_cw", f"{cell}_tk"],
                           post=[f"{cell}_cg"])
        # Cell raises the acknowledge wire.
        net.add_transition(f"{cell}_c_grant",
                           pre=[f"{cell}_cg", f"{a_drv}_0"],
                           post=[f"{cell}_cr", f"{a_drv}_1"])
        # User enters its critical section once acknowledged (read arc).
        net.add_transition(f"{cell}_u_enter",
                           pre=[f"{cell}_ur", f"{a_rcv}_1"],
                           post=[f"{cell}_uc", f"{a_rcv}_1"])
        # User leaves, lowering the request wire.
        net.add_transition(f"{cell}_u_exit",
                           pre=[f"{cell}_uc", f"{r_drv}_1"],
                           post=[f"{cell}_ui", f"{r_drv}_0"])
        # Cell sees the release, lowers the acknowledge and frees the token.
        net.add_transition(f"{cell}_c_release",
                           pre=[f"{cell}_cr", f"{a_drv}_1", f"{r_rcv}_0"],
                           post=[f"{cell}_ci", f"{a_drv}_0", f"{r_rcv}_0",
                                 f"{cell}_tk"])
        # An idle cell passes the token to its ring successor (read arc on
        # the idle place).
        net.add_transition(f"{cell}_t_pass",
                           pre=[f"{cell}_ci", f"{cell}_tk"],
                           post=[f"{cell}_ci", f"{nxt}_tk"])
    return net


def dme_spec(cells: int) -> PetriNet:
    """Specification-level DME ring: 12 places per cell, plus nothing
    shared beyond the ring token slots (``DMEspec-n`` substitute)."""
    return _build_dme(cells, wire_depth=0, name=f"dmespec-{cells}")


def dme_circuit(cells: int, wire_depth: int = 21) -> PetriNet:
    """Circuit-level DME ring (``DMEcir-n`` substitute).

    Every request/acknowledge wire runs through ``wire_depth`` buffer
    stages (one complementary pair per gate output), giving
    ``12 + 4 * wire_depth`` places per cell — about 96 with the default
    depth, the regime of the paper's DMEcir nets (98 places per cell).
    """
    return _build_dme(cells, wire_depth=wire_depth,
                      name=f"dmecir-{cells}")
