"""The paper's running example (Figure 1).

Seven places, seven transitions, eight reachable markings.  The incidence
matrix is printed explicitly in Section 2.1, which pins the flow relation
down exactly:

* ``t1: p1 -> p2, p3``     * ``t5: p4 -> p6``
* ``t2: p1 -> p4, p5``     * ``t6: p5 -> p7``
* ``t3: p2 -> p6``         * ``t7: p6, p7 -> p1``
* ``t4: p3 -> p7``

The two minimal semi-positive P-invariants are ``I1 = {p1, p2, p4, p6}``
and ``I2 = {p1, p3, p5, p7}``, each generating a single-token SMC
(Figure 2.e).
"""

from __future__ import annotations

from ..net import PetriNet

# The eight reachable markings of Figure 1.b, as place supports.
FIGURE1_MARKINGS = [
    frozenset({"p1"}),
    frozenset({"p2", "p3"}),
    frozenset({"p4", "p5"}),
    frozenset({"p6", "p3"}),
    frozenset({"p2", "p7"}),
    frozenset({"p6", "p5"}),
    frozenset({"p4", "p7"}),
    frozenset({"p6", "p7"}),
]

# The two SMCs of Figure 2.e.
FIGURE1_SMC_PLACES = [
    ("p1", "p2", "p4", "p6"),
    ("p1", "p3", "p5", "p7"),
]


def figure1_net() -> PetriNet:
    """Build the Figure 1 net with its initial marking ``{p1}``."""
    net = PetriNet("figure1")
    net.add_place("p1", tokens=1)
    for name in ("p2", "p3", "p4", "p5", "p6", "p7"):
        net.add_place(name)
    net.add_transition("t1", pre=["p1"], post=["p2", "p3"])
    net.add_transition("t2", pre=["p1"], post=["p4", "p5"])
    net.add_transition("t3", pre=["p2"], post=["p6"])
    net.add_transition("t4", pre=["p3"], post=["p7"])
    net.add_transition("t5", pre=["p4"], post=["p6"])
    net.add_transition("t6", pre=["p5"], post=["p7"])
    net.add_transition("t7", pre=["p6", "p7"], post=["p1"])
    return net
