"""Register-control nets (the ``JJreg`` substitutes for Table 4).

Yoneda's JJreg benchmarks are register control circuits (~250 places).
This module rebuilds the same regime: a master-slave register whose
control runs a four-phase handshake with the environment and whose data
path has one master and one slave latch pair per bit, plus an input wire
pair per bit.

* ``variant="a"`` — input bits toggle freely and independently (a
  parallel-load register): the input wires interleave with the whole
  handshake and the reachability set is large (the paper's JJreg-a has
  16x more markings than JJreg-b at nearly the same size).
* ``variant="b"`` — input bits are driven by a Muller C-element ring (a
  ring-counter-style source: bit ``j`` rises when bit ``j-1`` is high
  and bit ``j+1`` low): the same net size, but only the ring's wavefront
  patterns are reachable, cutting the marking count by orders of
  magnitude.

Every complementary pair is a single-token two-place SMC and the control
cycle a four-place SMC, so the dense encoding halves the variable count
(Table 4 reports 122/251 and 120/248).
"""

from __future__ import annotations

from ..net import PetriNet


def jj_register(variant: str = "a", bits: int = 40) -> PetriNet:
    """Build a JJreg-style register control net.

    Parameters
    ----------
    variant:
        ``"a"`` (free-running parallel inputs) or ``"b"`` (chained serial
        inputs: bit ``j`` follows bit ``j-1``).
    bits:
        Data-path width; the net has ``8 + 6 * bits`` places (the default
        40 bits gives 248 places, the paper's JJreg regime).
    """
    if variant not in ("a", "b"):
        raise ValueError(f"unknown variant {variant!r}")
    if bits < 1:
        raise ValueError("need at least one data bit")
    net = PetriNet(f"jjreg-{variant}-{bits}")

    # Controller cycle: idle -> capture -> pass -> done -> idle.
    net.add_place("ctl_idle", tokens=1)
    net.add_place("ctl_cap")
    net.add_place("ctl_pass")
    net.add_place("ctl_done")
    # Four-phase request/acknowledge wires to the environment.
    net.add_place("req_0", tokens=1)
    net.add_place("req_1")
    net.add_place("ack_0", tokens=1)
    net.add_place("ack_1")

    # Variant b drives the inputs from a C-element ring, which needs at
    # least one high signal to oscillate and at least three signals to be
    # non-degenerate (with two, a bit's left and right neighbour coincide
    # and the ring freezes); smaller widths fall back to free inputs.
    ring_inputs = variant == "b" and bits >= 3
    high_inputs = {0} if ring_inputs else set()
    for j in range(bits):
        high = j in high_inputs
        net.add_place(f"d{j}_0", tokens=0 if high else 1)  # input wire
        net.add_place(f"d{j}_1", tokens=1 if high else 0)
        net.add_place(f"m{j}_0", tokens=1)   # master latch
        net.add_place(f"m{j}_1")
        net.add_place(f"s{j}_0", tokens=1)   # slave latch
        net.add_place(f"s{j}_1")

    # Environment: four-phase handshake on req (observing ack).
    net.add_transition("env_req_up", pre=["req_0", "ack_0"],
                       post=["req_1", "ack_0"])
    net.add_transition("env_req_down", pre=["req_1", "ack_1"],
                       post=["req_0", "ack_1"])
    # Controller.
    net.add_transition("ctl_start", pre=["ctl_idle", "req_1"],
                       post=["ctl_cap", "req_1"])
    net.add_transition("ctl_captured", pre=["ctl_cap"], post=["ctl_pass"])
    net.add_transition("ctl_ack_up", pre=["ctl_pass", "ack_0"],
                       post=["ctl_done", "ack_1"])
    net.add_transition("ctl_finish", pre=["ctl_done", "req_0", "ack_1"],
                       post=["ctl_idle", "req_0", "ack_0"])

    for j in range(bits):
        # Input toggling: independent in variant a; a C-element ring in
        # variant b (read arcs on the ring neighbours).
        if ring_inputs:
            prev, nxt = (j - 1) % bits, (j + 1) % bits
            gate_up = [f"d{prev}_1", f"d{nxt}_0"]
            gate_down = [f"d{prev}_0", f"d{nxt}_1"]
        else:
            gate_up = []
            gate_down = []
        net.add_transition(f"d{j}_up", pre=[f"d{j}_0"] + gate_up,
                           post=[f"d{j}_1"] + gate_up)
        net.add_transition(f"d{j}_down", pre=[f"d{j}_1"] + gate_down,
                           post=[f"d{j}_0"] + gate_down)
        # Master follows the input during the capture phase.
        net.add_transition(f"m{j}_up",
                           pre=[f"m{j}_0", f"d{j}_1", "ctl_cap"],
                           post=[f"m{j}_1", f"d{j}_1", "ctl_cap"])
        net.add_transition(f"m{j}_down",
                           pre=[f"m{j}_1", f"d{j}_0", "ctl_cap"],
                           post=[f"m{j}_0", f"d{j}_0", "ctl_cap"])
        # Slave follows the master during the pass phase.
        net.add_transition(f"s{j}_up",
                           pre=[f"s{j}_0", f"m{j}_1", "ctl_pass"],
                           post=[f"s{j}_1", f"m{j}_1", "ctl_pass"])
        net.add_transition(f"s{j}_down",
                           pre=[f"s{j}_1", f"m{j}_0", "ctl_pass"],
                           post=[f"s{j}_0", f"m{j}_0", "ctl_pass"])
    return net
