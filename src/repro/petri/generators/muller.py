"""Muller C-element pipeline nets (the ``muller-n`` family of Table 3).

The model is a closed Muller pipeline — a ring of C-elements where signal
``y[i]`` rises when its left neighbour is high and its right neighbour is
low (``y[i] = C(y[i-1], not y[i+1])``), the canonical asynchronous FIFO
control structure.  Every signal is a complementary place pair
``(yi_0, yi_1)`` — the standard STG-to-PN expansion — and neighbour
observation uses read (self-loop) arcs.

A ring of ``n`` signals initialized with ``t`` high signals (evenly
spread) conserves its wavefront count and has exactly ``2 * C(n, 2t)``
reachable markings: an exponentially growing *proper* subset of the
``2^n`` signal combinations, so the reachability set is a non-trivial
BDD — the regime the paper benchmarks.  With ``t = n // 3`` the ring is
deadlock-free and safe.

``muller(k)`` builds a ring with ``2k`` signals, i.e. ``4k`` places,
matching the paper's accounting (``muller-30`` has 120 sparse variables,
60 dense ones: each complementary pair is a two-place single-token SMC).
The absolute marking counts differ from the paper's (their exact 1994
pipeline model is not distributed); see DESIGN.md, substitutions.
"""

from __future__ import annotations

from math import comb

from ..net import PetriNet


def muller_ring(num_signals: int, high_signals: int = 0) -> PetriNet:
    """A closed Muller pipeline (C-element ring) with ``num_signals``
    signals, ``high_signals`` of them initially high (default
    ``num_signals // 3``, evenly spread)."""
    if num_signals < 3:
        raise ValueError("need at least three signals")
    if not high_signals:
        high_signals = max(1, num_signals // 3)
    if not 0 < high_signals < num_signals:
        raise ValueError("high signal count must be in (0, num_signals)")
    net = PetriNet(f"muller-ring-{num_signals}")
    initial = [0] * num_signals
    step = num_signals / high_signals
    for k in range(high_signals):
        initial[int(k * step)] = 1

    for i in range(num_signals):
        net.add_place(f"y{i}_0", tokens=0 if initial[i] else 1)
        net.add_place(f"y{i}_1", tokens=1 if initial[i] else 0)

    def low(i: int) -> str:
        return f"y{i % num_signals}_0"

    def high(i: int) -> str:
        return f"y{i % num_signals}_1"

    for i in range(num_signals):
        # C-element: rise when left high and right low; fall in the dual
        # situation.  Neighbour places appear as read (self-loop) arcs.
        net.add_transition(f"t_y{i}_up",
                           pre=[low(i), high(i - 1), low(i + 1)],
                           post=[high(i), high(i - 1), low(i + 1)])
        net.add_transition(f"t_y{i}_down",
                           pre=[high(i), low(i - 1), high(i + 1)],
                           post=[low(i), low(i - 1), high(i + 1)])
    return net


def muller(stages: int) -> PetriNet:
    """The ``muller-<stages>`` benchmark: ``4 * stages`` places.

    Table 3 counts four boolean variables per pipeline stage under sparse
    encoding; this corresponds to two signals (two complementary place
    pairs) per stage.
    """
    if stages < 2:
        raise ValueError("need at least two stages")
    net = muller_ring(2 * stages)
    net.name = f"muller-{stages}"
    return net


def muller_marking_count(stages: int) -> int:
    """Closed-form reachable-marking count of :func:`muller`.

    A C-element ring with ``n`` signals and ``t`` initially-high signals
    reaches exactly ``2 * C(n, 2t)`` markings (verified against explicit
    enumeration in the tests).
    """
    num_signals = 2 * stages
    high_signals = max(1, num_signals // 3)
    return 2 * comb(num_signals, 2 * high_signals)
