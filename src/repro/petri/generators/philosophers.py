"""Dining philosophers nets (Figure 4 and the scalable ``phil-n`` family).

Each philosopher cycles through: go to the table (splitting into "needs
right fork" and "needs left fork" conditions), take the right fork, take
the left fork, start eating, and finally leave the forks and the table.
Forks are shared places between ring neighbours.

``philosophers(2)`` is exactly the paper's Figure 4 net (14 places, 10
transitions, 22 reachable markings); :func:`figure4_net` additionally uses
the paper's ``p1..p14`` / ``t1..t10`` names so the encodings of Tables 1
and 2 can be checked literally.
"""

from __future__ import annotations

from ..net import PetriNet

# Paper numbering for two philosophers (Figure 4):
#   philosopher 1: p1 idle, p2 needs-right, p3 needs-left, p6 has-right,
#                  p7 has-left, p8 eating
#   philosopher 2: p9 idle, p10 needs-right, p11 needs-left, p12 has-right,
#                  p13 has-left, p14 eating
#   forks: p4 (right of phil 1 = left of phil 2), p5 (left of phil 1 =
#          right of phil 2)
_FIG4_PLACES = {
    (0, "idle"): "p1", (0, "need_r"): "p2", (0, "need_l"): "p3",
    (0, "has_r"): "p6", (0, "has_l"): "p7", (0, "eating"): "p8",
    (1, "idle"): "p9", (1, "need_r"): "p10", (1, "need_l"): "p11",
    (1, "has_r"): "p12", (1, "has_l"): "p13", (1, "eating"): "p14",
    ("fork", 0): "p4", ("fork", 1): "p5",
}
_FIG4_TRANSITIONS = {
    (0, "go"): "t1", (0, "take_r"): "t2", (0, "take_l"): "t3",
    (0, "eat"): "t4", (0, "leave"): "t5",
    (1, "go"): "t6", (1, "take_r"): "t7", (1, "take_l"): "t8",
    (1, "eat"): "t9", (1, "leave"): "t10",
}


def philosophers(count: int, paper_names: bool = False) -> PetriNet:
    """The ``phil-count`` net: ``7 * count`` places, ``5 * count``
    transitions.

    Philosopher ``k`` uses fork ``k`` as its right fork and fork
    ``(k + 1) % count`` as its left fork.

    Parameters
    ----------
    count:
        Number of philosophers (>= 2).
    paper_names:
        Use the paper's ``p1..p14``/``t1..t10`` names (requires
        ``count == 2``).
    """
    if count < 2:
        raise ValueError("need at least two philosophers")
    if paper_names and count != 2:
        raise ValueError("paper names only defined for two philosophers")

    def place(key) -> str:
        if paper_names:
            return _FIG4_PLACES[key]
        if key[0] == "fork":
            return f"fork{key[1]}"
        return f"ph{key[0]}_{key[1]}"

    def trans(key) -> str:
        if paper_names:
            return _FIG4_TRANSITIONS[key]
        return f"ph{key[0]}_{key[1]}"

    net = PetriNet("figure4" if paper_names else f"phil-{count}")
    for k in range(count):
        net.add_place(place((k, "idle")), tokens=1)
        for state in ("need_r", "need_l", "has_r", "has_l", "eating"):
            net.add_place(place((k, state)))
    for k in range(count):
        net.add_place(place(("fork", k)), tokens=1)

    for k in range(count):
        right = place(("fork", k))
        left = place(("fork", (k + 1) % count))
        net.add_transition(trans((k, "go")),
                           pre=[place((k, "idle"))],
                           post=[place((k, "need_r")), place((k, "need_l"))])
        net.add_transition(trans((k, "take_r")),
                           pre=[place((k, "need_r")), right],
                           post=[place((k, "has_r"))])
        net.add_transition(trans((k, "take_l")),
                           pre=[place((k, "need_l")), left],
                           post=[place((k, "has_l"))])
        net.add_transition(trans((k, "eat")),
                           pre=[place((k, "has_r")), place((k, "has_l"))],
                           post=[place((k, "eating"))])
        net.add_transition(trans((k, "leave")),
                           pre=[place((k, "eating"))],
                           post=[place((k, "idle")), right, left])
    return net


def figure4_net() -> PetriNet:
    """The paper's Figure 4 net with its exact place/transition names."""
    net = philosophers(2, paper_names=True)
    # Reorder place declarations to p1..p14 for tidy incidence matrices.
    ordered = PetriNet("figure4")
    initial = net.initial_marking
    for i in range(1, 15):
        name = f"p{i}"
        ordered.add_place(name, tokens=initial[name])
    for i in range(1, 11):
        name = f"t{i}"
        ordered.add_transition(name, pre=net.preset(name),
                               post=net.postset(name))
    return ordered


# The SMC decomposition of Figure 3 (all six SMCs of the 2-philosopher
# net), in the paper's place names.
FIGURE3_SMC_PLACES = [
    ("p1", "p2", "p6", "p8"),            # SM1
    ("p1", "p3", "p7", "p8"),            # SM2
    ("p9", "p10", "p12", "p14"),         # SM3
    ("p9", "p11", "p13", "p14"),         # SM4
    ("p4", "p6", "p8", "p13", "p14"),    # SM5 (fork p4)
    ("p5", "p7", "p8", "p12", "p14"),    # SM6 (fork p5)
]
