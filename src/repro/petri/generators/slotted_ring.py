"""Slotted-ring protocol nets (the ``slot-n`` family of Table 3).

A ring of ``n`` stations passes message slots around.  Every station has
ten places, matching the paper's accounting (``slot-5`` has 50 sparse
variables):

* a four-place controller cycle ``C0 -> C1 -> C2 -> C3 -> C0``
  (claim slot, process, offer slot onward, resynchronize),
* a two-place *offer* wire pair to the next station (``P``),
* a two-place *acknowledge* wire pair back (``A``),
* a two-place local buffer (``B``) toggled while processing.

Every station initially offers a slot to its successor, so ``n`` slots
circulate concurrently — the source of the family's exponential state
count.  All four groups are single-token SMCs: the controller cycle needs
two encoding variables and each pair one, so the dense encoding uses five
variables per station against ten sparse ones (the 50 % reduction shown
in Table 3).
"""

from __future__ import annotations

from ..net import PetriNet


def slotted_ring(stations: int) -> PetriNet:
    """The ``slot-<stations>`` net: ``10 * stations`` places."""
    if stations < 2:
        raise ValueError("need at least two stations")
    net = PetriNet(f"slot-{stations}")

    def ctrl(i: int, phase: int) -> str:
        return f"s{i}_c{phase}"

    def offer(i: int, value: int) -> str:
        return f"s{i}_p{value}"

    def ack(i: int, value: int) -> str:
        return f"s{i}_a{value}"

    def buf(i: int, value: int) -> str:
        return f"s{i}_b{value}"

    for i in range(stations):
        net.add_place(ctrl(i, 0), tokens=1)
        for phase in (1, 2, 3):
            net.add_place(ctrl(i, phase))
        # Every station starts by offering a slot to its successor.
        net.add_place(offer(i, 0))
        net.add_place(offer(i, 1), tokens=1)
        net.add_place(ack(i, 0), tokens=1)
        net.add_place(ack(i, 1))
        net.add_place(buf(i, 0), tokens=1)
        net.add_place(buf(i, 1))

    for i in range(stations):
        prev = (i - 1) % stations
        # Claim the slot offered by the predecessor, acknowledging it.
        net.add_transition(f"s{i}_take",
                           pre=[ctrl(i, 0), offer(prev, 1), ack(prev, 0)],
                           post=[ctrl(i, 1), offer(prev, 0), ack(prev, 1)])
        # Process the slot: fill or drain the local buffer.
        net.add_transition(f"s{i}_fill",
                           pre=[ctrl(i, 1), buf(i, 0)],
                           post=[ctrl(i, 2), buf(i, 1)])
        net.add_transition(f"s{i}_drain",
                           pre=[ctrl(i, 1), buf(i, 1)],
                           post=[ctrl(i, 2), buf(i, 0)])
        # Offer the slot to the successor.
        net.add_transition(f"s{i}_offer",
                           pre=[ctrl(i, 2), offer(i, 0)],
                           post=[ctrl(i, 3), offer(i, 1)])
        # Resynchronize once the successor acknowledged the offer.
        net.add_transition(f"s{i}_reset",
                           pre=[ctrl(i, 3), ack(i, 1)],
                           post=[ctrl(i, 0), ack(i, 0)])
    return net
