"""Incidence matrix and the state equation (Section 2.1).

The incidence matrix ``C : P x T -> {-1, 0, 1}`` has ``C[p, t] = [t.post](p)
- [t.pre](p)``: input transitions of a place contribute ``+1``, output
transitions ``-1`` (a self-loop contributes ``0``).  The state equation
``M' = M + C @ sigma`` relates a firing-count vector to the marking it
produces.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .marking import Marking
from .net import PetriNet


def incidence_matrix(net: PetriNet) -> np.ndarray:
    """The |P| x |T| incidence matrix of ``net`` (dtype ``int64``)."""
    places = net.places
    transitions = net.transitions
    place_index = {place: i for i, place in enumerate(places)}
    matrix = np.zeros((len(places), len(transitions)), dtype=np.int64)
    for j, trans in enumerate(transitions):
        for place in net.preset(trans):
            matrix[place_index[place], j] -= 1
        for place in net.postset(trans):
            matrix[place_index[place], j] += 1
    return matrix


def marking_vector(net: PetriNet, marking: Marking) -> np.ndarray:
    """Column vector of token counts over the net's place order."""
    return np.array(marking.vector(net.places), dtype=np.int64)


def firing_count_vector(net: PetriNet,
                        sequence: Iterable[str]) -> np.ndarray:
    """The firing-count vector (Parikh vector) of a transition sequence."""
    index = {trans: j for j, trans in enumerate(net.transitions)}
    counts = np.zeros(len(net.transitions), dtype=np.int64)
    for trans in sequence:
        counts[index[trans]] += 1
    return counts


def state_equation(net: PetriNet, marking: Marking,
                   sequence: Sequence[str]) -> np.ndarray:
    """Apply the state equation ``M' = M + C @ sigma`` (Equation 1)."""
    return (marking_vector(net, marking)
            + incidence_matrix(net) @ firing_count_vector(net, sequence))


def check_invariant(net: PetriNet, weights: Sequence[int]) -> bool:
    """True iff ``weights`` (over the place order) is a P-invariant,
    i.e. ``weights @ C == 0``."""
    vector = np.asarray(weights, dtype=np.int64)
    if vector.shape != (len(net.places),):
        raise ValueError("weight vector length must equal |P|")
    return bool(np.all(vector @ incidence_matrix(net) == 0))


def invariant_token_count(net: PetriNet, weights: Sequence[int],
                          marking: Marking) -> int:
    """The weighted token count ``I . M`` preserved by a P-invariant."""
    return int(np.dot(np.asarray(weights, dtype=np.int64),
                      marking_vector(net, marking)))
