"""P-invariant computation (Section 2.2).

A P-invariant is a rational solution of ``X^T C = 0``; semi-positive
invariants (``X >= 0``, ``X != 0``) with minimal support generate all
others, and by Theorem 2.1 the characteristic vector of a State Machine
Component is such a minimal invariant.  This module enumerates minimal
semi-positive invariants with the Farkas / Martinez-Silva elimination,
using exact integer arithmetic so no invariant is ever lost or corrupted
by floating point.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .incidence import incidence_matrix
from .net import PetriNet, PetriNetError


class InvariantExplosion(PetriNetError):
    """Raised when the Farkas elimination exceeds its row budget."""


def _normalize(row: Tuple[int, ...]) -> Tuple[int, ...]:
    """Divide a row by the gcd of its entries."""
    divisor = 0
    for value in row:
        divisor = gcd(divisor, abs(value))
        if divisor == 1:
            return row
    if divisor <= 1:
        return row
    return tuple(value // divisor for value in row)


def _support(row: Sequence[int], offset: int) -> FrozenSet[int]:
    return frozenset(i for i, value in enumerate(row[offset:]) if value != 0)


def _prune_supersets(rows: List[Tuple[int, ...]], offset: int
                     ) -> List[Tuple[int, ...]]:
    """Drop rows whose place-support strictly contains another row's.

    Keeping only support-minimal rows between elimination steps is the
    standard Martinez-Silva refinement: every *minimal* semi-positive
    invariant survives, and the intermediate row sets stay small.
    """
    supports = [_support(row, offset) for row in rows]
    keep = []
    for i, row in enumerate(rows):
        sup = supports[i]
        dominated = False
        for j, other in enumerate(supports):
            if i == j:
                continue
            if other < sup:
                dominated = True
                break
            if other == sup and j < i:
                # Equal supports: keep the first representative only if the
                # rows are proportional; otherwise keep both.
                if _proportional(rows[i], rows[j]):
                    dominated = True
                    break
        if not dominated:
            keep.append(row)
    return keep


def _proportional(row_a: Sequence[int], row_b: Sequence[int]) -> bool:
    ratio = None
    for a, b in zip(row_a, row_b):
        if a == 0 and b == 0:
            continue
        if a == 0 or b == 0:
            return False
        if ratio is None:
            ratio = (a, b)
        elif a * ratio[1] != b * ratio[0]:
            return False
    return True


def minimal_semipositive_invariants(net: PetriNet,
                                    max_rows: int = 50_000
                                    ) -> List[Tuple[int, ...]]:
    """All minimal semi-positive P-invariants of ``net``.

    Returns integer weight vectors over ``net.places`` (gcd-normalized).
    Raises :class:`InvariantExplosion` if the elimination working set
    exceeds ``max_rows`` rows.
    """
    matrix = incidence_matrix(net)
    num_places, num_transitions = matrix.shape
    # Working rows are [C-part | identity-part], all exact Python ints.
    rows: List[Tuple[int, ...]] = []
    for i in range(num_places):
        identity = [0] * num_places
        identity[i] = 1
        rows.append(tuple(int(x) for x in matrix[i]) + tuple(identity))

    for col in range(num_transitions):
        zeros = [row for row in rows if row[col] == 0]
        pos = [row for row in rows if row[col] > 0]
        neg = [row for row in rows if row[col] < 0]
        combined: Dict[Tuple[int, ...], None] = {}
        for row_p in pos:
            for row_n in neg:
                scale_p = -row_n[col]
                scale_n = row_p[col]
                new_row = _normalize(tuple(
                    scale_p * a + scale_n * b
                    for a, b in zip(row_p, row_n)))
                combined[new_row] = None
        rows = zeros + list(combined)
        if len(rows) > max_rows:
            raise InvariantExplosion(
                f"Farkas elimination exceeded {max_rows} rows at "
                f"transition column {col}")
        rows = _prune_supersets(rows, num_transitions)

    # All C-columns are now zero; extract the place weights.
    invariants: Dict[Tuple[int, ...], None] = {}
    for row in rows:
        weights = _normalize(row[num_transitions:])
        if any(w < 0 for w in weights):
            continue
        if all(w == 0 for w in weights):
            continue
        invariants[weights] = None

    # Final support-minimality filter.
    result = []
    items = list(invariants)
    supports = [_support(inv, 0) for inv in items]
    for i, inv in enumerate(items):
        if any(supports[j] < supports[i] for j in range(len(items)) if j != i):
            continue
        result.append(inv)
    return result


def is_semipositive_invariant(net: PetriNet,
                              weights: Sequence[int]) -> bool:
    """True iff ``weights >= 0``, nonzero, and ``weights @ C == 0``."""
    if len(weights) != len(net.places):
        raise ValueError("weight vector length must equal |P|")
    if any(w < 0 for w in weights) or all(w == 0 for w in weights):
        return False
    matrix = incidence_matrix(net)
    for col in range(matrix.shape[1]):
        if sum(int(weights[i]) * int(matrix[i, col])
               for i in range(matrix.shape[0])) != 0:
            return False
    return True


def invariant_support(net: PetriNet,
                      weights: Sequence[int]) -> Tuple[str, ...]:
    """The places with positive weight, in net place order."""
    return tuple(place for place, weight in zip(net.places, weights)
                 if weight > 0)


def invariant_token_sum(net: PetriNet, weights: Sequence[int]) -> int:
    """Weighted token count of the initial marking (invariant over time)."""
    initial = net.initial_marking
    return sum(int(weight) * initial[place]
               for place, weight in zip(net.places, weights))


def structural_bound(net: PetriNet, place: str,
                     invariants: Optional[List[Tuple[int, ...]]] = None
                     ) -> Optional[int]:
    """Structural token bound of ``place`` from P-invariants.

    Any semi-positive invariant ``I`` with ``I(p) > 0`` bounds the count
    of ``p`` by ``(I . M0) / I(p)`` in every reachable marking.  Returns
    the tightest such bound, or None if no invariant covers the place
    (the place is structurally unbounded as far as invariants can tell).
    """
    if place not in net.places:
        raise PetriNetError(f"unknown place: {place!r}")
    if invariants is None:
        invariants = minimal_semipositive_invariants(net)
    index = net.places.index(place)
    best: Optional[int] = None
    for weights in invariants:
        if weights[index] <= 0:
            continue
        bound = invariant_token_sum(net, weights) // weights[index]
        if best is None or bound < best:
            best = bound
    return best


def is_structurally_safe(net: PetriNet,
                         invariants: Optional[List[Tuple[int, ...]]] = None
                         ) -> bool:
    """True if P-invariants bound every place by one token.

    A sufficient (not necessary) condition for safeness — exactly the
    property the paper's encodings rely on when every place is covered
    by a single-token SMC.
    """
    if invariants is None:
        invariants = minimal_semipositive_invariants(net)
    return all(structural_bound(net, place, invariants) == 1
               for place in net.places)


def minimal_semipositive_t_invariants(net: PetriNet,
                                      max_rows: int = 50_000
                                      ) -> List[Tuple[int, ...]]:
    """All minimal semi-positive T-invariants of ``net``.

    A T-invariant is a firing-count vector ``X >= 0`` with ``C X = 0``:
    firing each transition ``X(t)`` times reproduces the starting
    marking.  Computed by running the Farkas elimination on the
    transposed incidence matrix (the exact dual of the P-invariant
    case).  Returns integer weight vectors over ``net.transitions``.
    """
    transposed = _TransposedNet(net)
    return minimal_semipositive_invariants(transposed, max_rows=max_rows)


class _TransposedNet:
    """Duck-typed view swapping the roles of places and transitions, so
    the P-invariant elimination computes T-invariants."""

    def __init__(self, net: PetriNet) -> None:
        self._net = net
        self.places = net.transitions
        self.transitions = net.places

    def preset(self, node: str):
        return self._net.preset(node)

    def postset(self, node: str):
        return self._net.postset(node)


def is_t_invariant(net: PetriNet, weights: Sequence[int]) -> bool:
    """True iff firing transitions per ``weights`` has zero net effect."""
    if len(weights) != len(net.transitions):
        raise ValueError("weight vector length must equal |T|")
    matrix = incidence_matrix(net)
    for row in range(matrix.shape[0]):
        if sum(int(weights[j]) * int(matrix[row, j])
               for j in range(matrix.shape[1])) != 0:
            return False
    return True
