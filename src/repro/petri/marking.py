"""Markings of a Petri net.

A marking assigns a non-negative token count to every place.  For the safe
nets this package analyzes, a marking is equivalently the set of marked
places; :class:`Marking` supports both views.  Markings are immutable and
hashable so they can key reachability sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple, Union

MarkingLike = Union["Marking", Mapping[str, int], Iterable[str]]


class Marking:
    """An immutable place -> token-count assignment (zero counts dropped)."""

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: MarkingLike = ()) -> None:
        if isinstance(tokens, Marking):
            counts: Dict[str, int] = dict(tokens._tokens)
        elif isinstance(tokens, Mapping):
            counts = {place: int(count) for place, count in tokens.items()
                      if int(count) != 0}
        else:
            counts = {}
            for place in tokens:
                counts[place] = counts.get(place, 0) + 1
        for place, count in counts.items():
            if count < 0:
                raise ValueError(
                    f"negative token count for place {place!r}: {count}")
        self._tokens: Tuple[Tuple[str, int], ...] = tuple(
            sorted(counts.items()))
        self._hash = hash(self._tokens)

    # -- mapping interface -------------------------------------------------

    def __getitem__(self, place: str) -> int:
        for name, count in self._tokens:
            if name == place:
                return count
        return 0

    def get(self, place: str, default: int = 0) -> int:
        """Token count of ``place`` (``default`` if unmarked)."""
        count = self[place]
        return count if count else default

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(place, count)`` pairs of marked places."""
        return iter(self._tokens)

    def __contains__(self, place: str) -> bool:
        return self[place] > 0

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    # -- identity ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Marking) and self._tokens == other._tokens

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return self._hash

    # -- views ---------------------------------------------------------------

    @property
    def support(self) -> FrozenSet[str]:
        """The set of marked places."""
        return frozenset(name for name, _ in self._tokens)

    def total_tokens(self) -> int:
        """Total number of tokens in the marking."""
        return sum(count for _, count in self._tokens)

    def is_safe(self) -> bool:
        """True iff no place holds more than one token."""
        return all(count <= 1 for _, count in self._tokens)

    def as_dict(self) -> Dict[str, int]:
        """A mutable dict copy of the marking."""
        return dict(self._tokens)

    def vector(self, place_order: Iterable[str]) -> Tuple[int, ...]:
        """Token counts as a vector over the given place order."""
        return tuple(self[place] for place in place_order)

    # -- token game ----------------------------------------------------------

    def add(self, places: Iterable[str]) -> "Marking":
        """A new marking with one extra token on each listed place."""
        counts = self.as_dict()
        for place in places:
            counts[place] = counts.get(place, 0) + 1
        return Marking(counts)

    def remove(self, places: Iterable[str]) -> "Marking":
        """A new marking with one token removed from each listed place."""
        counts = self.as_dict()
        for place in places:
            if counts.get(place, 0) <= 0:
                raise ValueError(f"cannot remove token from empty {place!r}")
            counts[place] -= 1
        return Marking(counts)

    def __repr__(self) -> str:
        if not self._tokens:
            return "Marking({})"
        inner = ", ".join(
            name if count == 1 else f"{name}*{count}"
            for name, count in self._tokens)
        return f"Marking({{{inner}}})"
