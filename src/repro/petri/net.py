"""Ordinary Petri nets.

A Petri net is a 4-tuple ``N = (P, T, F, M0)`` of places, transitions, flow
relation and initial marking (Section 2 of the paper).  This class models
*ordinary* nets (all arc weights are one), which is the class the paper's
symbolic analysis covers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .marking import Marking, MarkingLike


class PetriNetError(Exception):
    """Raised for structurally invalid Petri-net operations."""


class PetriNet:
    """An ordinary Petri net with named places and transitions.

    Places and transitions share no names.  Arcs connect places to
    transitions and transitions to places (the flow relation ``F``).
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: List[str] = []
        self._transitions: List[str] = []
        self._place_set: Set[str] = set()
        self._transition_set: Set[str] = set()
        # Pre/post sets, place -> transitions and transition -> places.
        self._place_pre: Dict[str, Set[str]] = {}
        self._place_post: Dict[str, Set[str]] = {}
        self._trans_pre: Dict[str, Set[str]] = {}
        self._trans_post: Dict[str, Set[str]] = {}
        self._initial: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> str:
        """Add a place with an optional initial token count."""
        if name in self._place_set or name in self._transition_set:
            raise PetriNetError(f"duplicate node name: {name!r}")
        if tokens < 0:
            raise PetriNetError(f"negative initial tokens on {name!r}")
        self._places.append(name)
        self._place_set.add(name)
        self._place_pre[name] = set()
        self._place_post[name] = set()
        if tokens:
            self._initial[name] = tokens
        return name

    def add_places(self, names: Iterable[str]) -> List[str]:
        """Add several unmarked places."""
        return [self.add_place(name) for name in names]

    def add_transition(self, name: str,
                       pre: Iterable[str] = (),
                       post: Iterable[str] = ()) -> str:
        """Add a transition, optionally with its input and output places."""
        if name in self._place_set or name in self._transition_set:
            raise PetriNetError(f"duplicate node name: {name!r}")
        self._transitions.append(name)
        self._transition_set.add(name)
        self._trans_pre[name] = set()
        self._trans_post[name] = set()
        for place in pre:
            self.add_arc(place, name)
        for place in post:
            self.add_arc(name, place)
        return name

    def add_arc(self, source: str, target: str) -> None:
        """Add a flow arc (place -> transition or transition -> place)."""
        if source in self._place_set and target in self._transition_set:
            self._place_post[source].add(target)
            self._trans_pre[target].add(source)
        elif source in self._transition_set and target in self._place_set:
            self._trans_post[source].add(target)
            self._place_pre[target].add(source)
        else:
            raise PetriNetError(
                f"arc must connect a place and a transition: "
                f"{source!r} -> {target!r}")

    def set_initial(self, marking: MarkingLike) -> None:
        """Replace the initial marking."""
        marking = Marking(marking)
        for place in marking:
            if place not in self._place_set:
                raise PetriNetError(f"unknown place in marking: {place!r}")
        self._initial = marking.as_dict()

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def places(self) -> Tuple[str, ...]:
        """Places in declaration order."""
        return tuple(self._places)

    @property
    def transitions(self) -> Tuple[str, ...]:
        """Transitions in declaration order."""
        return tuple(self._transitions)

    @property
    def initial_marking(self) -> Marking:
        """The initial marking ``M0``."""
        return Marking(self._initial)

    def is_place(self, name: str) -> bool:
        """True iff ``name`` is a place of this net."""
        return name in self._place_set

    def is_transition(self, name: str) -> bool:
        """True iff ``name`` is a transition of this net."""
        return name in self._transition_set

    def preset(self, node: str) -> FrozenSet[str]:
        """Pre-set of a node (input transitions of a place, or input
        places of a transition)."""
        if node in self._place_set:
            return frozenset(self._place_pre[node])
        if node in self._transition_set:
            return frozenset(self._trans_pre[node])
        raise PetriNetError(f"unknown node: {node!r}")

    def postset(self, node: str) -> FrozenSet[str]:
        """Post-set of a node."""
        if node in self._place_set:
            return frozenset(self._place_post[node])
        if node in self._transition_set:
            return frozenset(self._trans_post[node])
        raise PetriNetError(f"unknown node: {node!r}")

    def arcs(self) -> Iterator[Tuple[str, str]]:
        """Iterate all flow arcs as ``(source, target)`` pairs."""
        for place in self._places:
            for trans in sorted(self._place_post[place]):
                yield (place, trans)
        for trans in self._transitions:
            for place in sorted(self._trans_post[trans]):
                yield (trans, place)

    def validate(self) -> None:
        """Check basic well-formedness; raises :class:`PetriNetError`."""
        for trans in self._transitions:
            if not self._trans_pre[trans] and not self._trans_post[trans]:
                raise PetriNetError(f"isolated transition: {trans!r}")
        for place in self._initial:
            if place not in self._place_set:
                raise PetriNetError(f"marked place does not exist: {place!r}")

    # ------------------------------------------------------------------
    # Token game
    # ------------------------------------------------------------------

    def is_enabled(self, marking: Marking, transition: str) -> bool:
        """True iff every input place of ``transition`` is marked."""
        return all(marking[place] >= 1
                   for place in self._trans_pre[transition])

    def enabled_transitions(self, marking: Marking) -> List[str]:
        """Transitions enabled in ``marking``, in declaration order."""
        return [t for t in self._transitions if self.is_enabled(marking, t)]

    def fire(self, marking: Marking, transition: str) -> Marking:
        """Fire ``transition`` from ``marking`` and return the successor.

        Raises :class:`PetriNetError` if the transition is not enabled.
        """
        if transition not in self._transition_set:
            raise PetriNetError(f"unknown transition: {transition!r}")
        if not self.is_enabled(marking, transition):
            raise PetriNetError(
                f"transition {transition!r} is not enabled in {marking!r}")
        return (marking
                .remove(self._trans_pre[transition])
                .add(self._trans_post[transition]))

    def fire_sequence(self, marking: Marking,
                      sequence: Iterable[str]) -> Marking:
        """Fire a sequence of transitions, returning the final marking."""
        for transition in sequence:
            marking = self.fire(marking, transition)
        return marking

    # ------------------------------------------------------------------
    # Subnets and structural classes (Section 2.2)
    # ------------------------------------------------------------------

    def subnet_generated_by_places(self, place_subset: Iterable[str],
                                   name: Optional[str] = None) -> "PetriNet":
        """The subnet generated by a subset of places.

        Per Section 2.2: ``T' = {t in pre(p) U post(p) | p in P'}``, the flow
        relation is restricted to ``(P' x T') U (T' x P')`` and the initial
        marking is restricted to ``P'``.
        """
        place_subset = list(dict.fromkeys(place_subset))
        for place in place_subset:
            if place not in self._place_set:
                raise PetriNetError(f"unknown place: {place!r}")
        sub = PetriNet(name or f"{self.name}_sub")
        chosen = set(place_subset)
        for place in self._places:
            if place in chosen:
                sub.add_place(place, self._initial.get(place, 0))
        trans_subset = [
            t for t in self._transitions
            if (self._trans_pre[t] & chosen) or (self._trans_post[t] & chosen)]
        for trans in trans_subset:
            sub.add_transition(trans,
                               pre=self._trans_pre[trans] & chosen,
                               post=self._trans_post[trans] & chosen)
        return sub

    def is_state_machine(self) -> bool:
        """True iff every transition has exactly one input and one output
        place (a State Machine in the sense of Section 2.2)."""
        return all(len(self._trans_pre[t]) == 1 and
                   len(self._trans_post[t]) == 1
                   for t in self._transitions)

    def is_strongly_connected(self) -> bool:
        """True iff the net graph (places and transitions) is strongly
        connected."""
        import networkx as nx

        graph = self.to_networkx()
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_strongly_connected(graph)

    def to_networkx(self):
        """The net as a networkx DiGraph with a ``kind`` node attribute."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for place in self._places:
            graph.add_node(place, kind="place",
                           tokens=self._initial.get(place, 0))
        for trans in self._transitions:
            graph.add_node(trans, kind="transition")
        for source, target in self.arcs():
            graph.add_edge(source, target)
        return graph

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """A deep copy of the net."""
        dup = PetriNet(name or self.name)
        for place in self._places:
            dup.add_place(place, self._initial.get(place, 0))
        for trans in self._transitions:
            dup.add_transition(trans, pre=self._trans_pre[trans],
                               post=self._trans_post[trans])
        return dup

    def __repr__(self) -> str:
        return (f"<PetriNet {self.name!r} |P|={len(self._places)} "
                f"|T|={len(self._transitions)} "
                f"M0={self.initial_marking!r}>")
