"""A small text exchange format for Petri nets (``.pnet``).

Grammar (one directive per line, ``#`` starts a comment)::

    net <name>
    place <name> [<tokens>]
    transition <name>
    arc <source> <target>

Declaration order of places and transitions is preserved, which matters
because encodings and incidence matrices index nodes by that order.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from .net import PetriNet, PetriNetError


class ParseError(PetriNetError):
    """Raised on malformed ``.pnet`` input."""


def dumps(net: PetriNet) -> str:
    """Serialize a net to the ``.pnet`` text format."""
    initial = net.initial_marking
    out = io.StringIO()
    out.write(f"net {net.name}\n")
    for place in net.places:
        tokens = initial[place]
        if tokens:
            out.write(f"place {place} {tokens}\n")
        else:
            out.write(f"place {place}\n")
    for trans in net.transitions:
        out.write(f"transition {trans}\n")
    for source, target in net.arcs():
        out.write(f"arc {source} {target}\n")
    return out.getvalue()


def loads(text: str) -> PetriNet:
    """Parse a net from the ``.pnet`` text format."""
    net = PetriNet()
    seen_net_line = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        directive, args = fields[0], fields[1:]
        try:
            if directive == "net":
                if len(args) != 1:
                    raise ParseError("net takes exactly one name")
                if seen_net_line:
                    raise ParseError("duplicate net directive")
                net.name = args[0]
                seen_net_line = True
            elif directive == "place":
                if len(args) == 1:
                    net.add_place(args[0])
                elif len(args) == 2:
                    net.add_place(args[0], int(args[1]))
                else:
                    raise ParseError("place takes a name and optional tokens")
            elif directive == "transition":
                if len(args) != 1:
                    raise ParseError("transition takes exactly one name")
                net.add_transition(args[0])
            elif directive == "arc":
                if len(args) != 2:
                    raise ParseError("arc takes a source and a target")
                net.add_arc(args[0], args[1])
            else:
                raise ParseError(f"unknown directive {directive!r}")
        except (PetriNetError, ValueError) as exc:
            raise ParseError(f"line {lineno}: {exc}") from exc
    return net


def save(net: PetriNet, path: Union[str, Path]) -> None:
    """Write a net to a ``.pnet`` file."""
    Path(path).write_text(dumps(net))


def load(source: Union[str, Path, TextIO]) -> PetriNet:
    """Read a net from a path or an open text stream."""
    if hasattr(source, "read"):
        return loads(source.read())
    return loads(Path(source).read_text())
