"""Explicit reachability analysis.

Used for cross-validating the symbolic engines on small nets and for the
didactic examples (the paper's Figure 1.b reachability graph).  The
explicit graph enumerates markings one by one and therefore hits the state
explosion problem the paper's symbolic techniques avoid; ``max_markings``
bounds the damage.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .marking import Marking
from .net import PetriNet, PetriNetError


class StateExplosion(PetriNetError):
    """Raised when explicit enumeration exceeds its marking budget."""


class UnsafeNet(PetriNetError):
    """Raised when a reachable marking puts two tokens on one place."""


class ReachabilityGraph:
    """The explicit reachability graph of a bounded Petri net.

    Parameters
    ----------
    net:
        The net to analyze.
    max_markings:
        Enumeration budget; :class:`StateExplosion` is raised beyond it.
    require_safe:
        If true (default), raise :class:`UnsafeNet` as soon as a reachable
        marking assigns more than one token to a place — the paper's
        techniques assume safe nets, so surfacing a violation early beats
        silently producing nonsense.
    """

    def __init__(self, net: PetriNet, max_markings: int = 1_000_000,
                 require_safe: bool = True) -> None:
        self.net = net
        self.markings: List[Marking] = []
        self.index: Dict[Marking, int] = {}
        self.edges: List[Tuple[int, str, int]] = []
        self._build(max_markings, require_safe)

    def _build(self, max_markings: int, require_safe: bool) -> None:
        initial = self.net.initial_marking
        if require_safe and not initial.is_safe():
            raise UnsafeNet(f"initial marking is unsafe: {initial!r}")
        self.markings.append(initial)
        self.index[initial] = 0
        queue = deque([0])
        while queue:
            current = queue.popleft()
            marking = self.markings[current]
            for trans in self.net.enabled_transitions(marking):
                successor = self.net.fire(marking, trans)
                if require_safe and not successor.is_safe():
                    raise UnsafeNet(
                        f"firing {trans!r} from {marking!r} yields unsafe "
                        f"{successor!r}")
                position = self.index.get(successor)
                if position is None:
                    if len(self.markings) >= max_markings:
                        raise StateExplosion(
                            f"more than {max_markings} reachable markings")
                    position = len(self.markings)
                    self.markings.append(successor)
                    self.index[successor] = position
                    queue.append(position)
                self.edges.append((current, trans, position))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.markings)

    def __contains__(self, marking: Marking) -> bool:
        return Marking(marking) in self.index

    @property
    def initial(self) -> Marking:
        """The initial marking."""
        return self.markings[0]

    def successors(self, marking: Marking) -> List[Tuple[str, Marking]]:
        """``(transition, successor)`` pairs from ``marking``."""
        position = self.index[Marking(marking)]
        return [(trans, self.markings[dst])
                for src, trans, dst in self.edges if src == position]

    def deadlocks(self) -> List[Marking]:
        """Reachable markings enabling no transition."""
        has_out: Set[int] = {src for src, _, _ in self.edges}
        return [marking for i, marking in enumerate(self.markings)
                if i not in has_out]

    def marking_supports(self) -> Set[frozenset]:
        """The reachable markings as frozensets of marked places
        (valid for safe nets)."""
        return {marking.support for marking in self.markings}

    def place_bound(self, place: str) -> int:
        """Maximum token count of ``place`` over all reachable markings."""
        return max(marking[place] for marking in self.markings)

    def is_safe(self) -> bool:
        """True iff every reachable marking is safe."""
        return all(marking.is_safe() for marking in self.markings)

    def firing_sequences(self, length: int) -> Iterable[Tuple[str, ...]]:
        """All feasible firing sequences up to ``length`` (for tests)."""
        def extend(marking: Marking, prefix: Tuple[str, ...]):
            yield prefix
            if len(prefix) == length:
                return
            for trans in self.net.enabled_transitions(marking):
                yield from extend(self.net.fire(marking, trans),
                                  prefix + (trans,))

        yield from extend(self.initial, ())

    def to_networkx(self):
        """The reachability graph as a networkx MultiDiGraph."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=f"RG({self.net.name})")
        for i, marking in enumerate(self.markings):
            graph.add_node(i, marking=marking)
        for src, trans, dst in self.edges:
            graph.add_edge(src, dst, transition=trans)
        return graph


def count_reachable_markings(net: PetriNet,
                             max_markings: int = 1_000_000) -> int:
    """Number of reachable markings by explicit enumeration."""
    return len(ReachabilityGraph(net, max_markings=max_markings))


def assert_safe(net: PetriNet, max_markings: int = 1_000_000) -> None:
    """Raise :class:`UnsafeNet` unless the whole reachable set is safe."""
    ReachabilityGraph(net, max_markings=max_markings, require_safe=True)


def find_deadlock(net: PetriNet,
                  max_markings: int = 1_000_000) -> Optional[Marking]:
    """A reachable deadlock marking, or None."""
    graph = ReachabilityGraph(net, max_markings=max_markings)
    dead = graph.deadlocks()
    return dead[0] if dead else None
