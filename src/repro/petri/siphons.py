"""Siphons and traps: structural deadlock analysis.

A *siphon* is a place set ``S`` with ``pre(S) \\subseteq post(S)``: once
empty it stays empty, disabling every transition consuming from it.  A
*trap* ``Q`` satisfies ``post(Q) \\subseteq pre(Q)``: once marked it stays
marked.  The classic Commoner condition — every minimal siphon contains
an initially marked trap — is sufficient for deadlock freedom of
free-choice nets, and complements the paper's symbolic deadlock check
with a purely structural one.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from .net import PetriNet, PetriNetError


def _preset_of_set(net: PetriNet, places: Iterable[str]) -> Set[str]:
    result: Set[str] = set()
    for place in places:
        result |= net.preset(place)
    return result


def _postset_of_set(net: PetriNet, places: Iterable[str]) -> Set[str]:
    result: Set[str] = set()
    for place in places:
        result |= net.postset(place)
    return result


def is_siphon(net: PetriNet, places: Iterable[str]) -> bool:
    """True iff the nonempty place set is a siphon."""
    subset = set(places)
    if not subset:
        return False
    return _preset_of_set(net, subset) <= _postset_of_set(net, subset)


def is_trap(net: PetriNet, places: Iterable[str]) -> bool:
    """True iff the nonempty place set is a trap."""
    subset = set(places)
    if not subset:
        return False
    return _postset_of_set(net, subset) <= _preset_of_set(net, subset)


def largest_siphon_within(net: PetriNet,
                          places: Iterable[str]) -> FrozenSet[str]:
    """The maximal siphon contained in ``places`` (possibly empty).

    Standard pruning fixpoint: repeatedly drop any place with an input
    transition that takes no input from the current set.
    """
    current = set(places)
    changed = True
    while changed:
        changed = False
        for place in list(current):
            for trans in net.preset(place):
                if not (net.preset(trans) & current):
                    current.discard(place)
                    changed = True
                    break
    return frozenset(current)


def largest_trap_within(net: PetriNet,
                        places: Iterable[str]) -> FrozenSet[str]:
    """The maximal trap contained in ``places`` (possibly empty)."""
    current = set(places)
    changed = True
    while changed:
        changed = False
        for place in list(current):
            for trans in net.postset(place):
                if not (net.postset(trans) & current):
                    current.discard(place)
                    changed = True
                    break
    return frozenset(current)


def minimal_siphons(net: PetriNet, limit: int = 10_000
                    ) -> List[FrozenSet[str]]:
    """All minimal (inclusion-wise) nonempty siphons.

    Branch-and-prune search: grow candidate sets by resolving, for each
    unsupplied input transition, which place of its preset joins the
    siphon.  ``limit`` bounds the explored candidates; exceeding it
    raises :class:`PetriNetError` (siphon enumeration is exponential in
    general).
    """
    found: List[FrozenSet[str]] = []
    seen: Set[FrozenSet[str]] = set()
    explored = 0

    def violating_transition(subset: FrozenSet[str]) -> Optional[str]:
        for place in subset:
            for trans in net.preset(place):
                if not (net.preset(trans) & subset):
                    return trans
        return None

    def search(subset: FrozenSet[str]) -> None:
        nonlocal explored
        explored += 1
        if explored > limit:
            raise PetriNetError(
                f"minimal-siphon search exceeded {limit} candidates")
        if subset in seen:
            return
        seen.add(subset)
        if any(known <= subset for known in found):
            return
        trans = violating_transition(subset)
        if trans is None:
            found[:] = [known for known in found if not subset < known]
            if not any(known <= subset for known in found):
                found.append(subset)
            return
        preset = net.preset(trans)
        if not preset:
            return  # source transition: no siphon can contain this place
        for place in sorted(preset):
            search(subset | {place})

    for place in net.places:
        search(frozenset({place}))
    return sorted(found, key=lambda s: (len(s), sorted(s)))


def commoner_condition(net: PetriNet, limit: int = 10_000) -> bool:
    """Every minimal siphon contains an initially marked trap.

    Sufficient for deadlock freedom of free-choice nets (Commoner's
    theorem); returns False when some siphon lacks a marked trap.
    """
    initial = net.initial_marking
    for siphon in minimal_siphons(net, limit=limit):
        trap = largest_trap_within(net, siphon)
        if not trap or all(initial[p] == 0 for p in trap):
            return False
    return True


def empty_siphon_in_deadlock(net: PetriNet, marking) -> Optional[FrozenSet[str]]:
    """For a dead marking, the token-free siphon that explains it.

    In a deadlocked marking the unmarked places contain a siphon whose
    emptiness disables every transition; returns it (or None if the
    marking is not actually dead).
    """
    if net.enabled_transitions(marking):
        return None
    unmarked = [p for p in net.places if marking[p] == 0]
    siphon = largest_siphon_within(net, unmarked)
    return siphon if siphon else None
