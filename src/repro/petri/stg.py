"""Signal Transition Graphs (STGs) — the paper's application domain.

The paper's motivation is synthesis and verification of asynchronous
circuits, whose specifications are STGs: Petri nets whose transitions are
labeled with rising (``s+``) and falling (``s-``) edges of circuit
signals.  This module provides the standard *state-holding expansion*
used throughout the benchmark generators: every signal becomes a
complementary place pair ``(s_0, s_1)`` — a two-place single-token SMC,
which is precisely why STG-derived nets respond so well to the paper's
dense encoding.

An :class:`STG` is specified by signals, transitions (signal, polarity)
with an explicit causality structure (a Petri net over abstract
"condition" places), or more conveniently by guard-style rules:
``signal rises when <these signals have these values>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .net import PetriNet, PetriNetError


@dataclass(frozen=True)
class SignalEdge:
    """One transition of an STG: a signal changing to a new value."""

    signal: str
    rising: bool
    guard: Tuple[Tuple[str, bool], ...] = field(default=())
    name: Optional[str] = None

    @property
    def label(self) -> str:
        """Conventional STG label, e.g. ``req+`` or ``ack-``."""
        return f"{self.signal}{'+' if self.rising else '-'}"


class STG:
    """A guard-style signal transition graph.

    Each edge fires when its signal is at the old value and every guard
    signal holds its required value; firing moves the signal's token
    between the complementary places.  Guards become read (self-loop)
    arcs in the expansion — the construction behind the Muller, DME and
    JJreg generators.
    """

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self._signals: Dict[str, bool] = {}
        self._edges: List[SignalEdge] = []

    @property
    def signals(self) -> Tuple[str, ...]:
        """Declared signals, in declaration order."""
        return tuple(self._signals)

    @property
    def edges(self) -> Tuple[SignalEdge, ...]:
        """Declared signal edges."""
        return tuple(self._edges)

    def add_signal(self, name: str, initial: bool = False) -> str:
        """Declare a signal with its reset value."""
        if name in self._signals:
            raise PetriNetError(f"duplicate signal: {name!r}")
        self._signals[name] = bool(initial)
        return name

    def add_edge(self, signal: str, rising: bool,
                 guard: Iterable[Tuple[str, bool]] = (),
                 name: Optional[str] = None) -> SignalEdge:
        """Declare ``signal+``/``signal-`` guarded by signal values."""
        if signal not in self._signals:
            raise PetriNetError(f"unknown signal: {signal!r}")
        guard = tuple(guard)
        for other, _ in guard:
            if other not in self._signals:
                raise PetriNetError(f"unknown guard signal: {other!r}")
            if other == signal:
                raise PetriNetError("a signal cannot guard its own edge")
        edge = SignalEdge(signal=signal, rising=rising, guard=guard,
                          name=name)
        self._edges.append(edge)
        return edge

    def rise(self, signal: str, when: Dict[str, bool] = None,
             name: Optional[str] = None) -> SignalEdge:
        """Shorthand for ``add_edge(signal, True, when.items())``."""
        return self.add_edge(signal, True, (when or {}).items(), name)

    def fall(self, signal: str, when: Dict[str, bool] = None,
             name: Optional[str] = None) -> SignalEdge:
        """Shorthand for ``add_edge(signal, False, when.items())``."""
        return self.add_edge(signal, False, (when or {}).items(), name)

    # ------------------------------------------------------------------

    def place_of(self, signal: str, value: bool) -> str:
        """Name of the expansion place holding ``signal == value``."""
        return f"{signal}_{1 if value else 0}"

    def to_petri_net(self) -> PetriNet:
        """The state-holding expansion: one complementary pair per
        signal, one transition per edge, guards as read arcs."""
        net = PetriNet(self.name)
        for signal, initial in self._signals.items():
            net.add_place(self.place_of(signal, False),
                          tokens=0 if initial else 1)
            net.add_place(self.place_of(signal, True),
                          tokens=1 if initial else 0)
        used_names = set()
        for index, edge in enumerate(self._edges):
            label = edge.name or f"t_{edge.signal}" \
                f"{'_up' if edge.rising else '_down'}"
            if label in used_names:
                label = f"{label}_{index}"
            used_names.add(label)
            source = self.place_of(edge.signal, not edge.rising)
            target = self.place_of(edge.signal, edge.rising)
            reads = [self.place_of(sig, val) for sig, val in edge.guard]
            net.add_transition(label, pre=[source] + reads,
                               post=[target] + reads)
        return net

    def initial_state(self) -> Dict[str, bool]:
        """The reset values of all signals."""
        return dict(self._signals)

    def __repr__(self) -> str:
        return (f"<STG {self.name!r} signals={len(self._signals)} "
                f"edges={len(self._edges)}>")


def c_element(name: str = "c-element") -> STG:
    """The STG of a Muller C-element with inputs a, b and output c.

    The output rises when both inputs are high and falls when both are
    low; the (eager) environment toggles each input after the output has
    acknowledged the previous value.
    """
    stg = STG(name)
    for signal in ("a", "b", "c"):
        stg.add_signal(signal)
    stg.rise("c", {"a": True, "b": True})
    stg.fall("c", {"a": False, "b": False})
    # Environment: inputs follow the inverted output (one transition per
    # input edge, as in the canonical specification).
    stg.rise("a", {"c": False})
    stg.fall("a", {"c": True})
    stg.rise("b", {"c": False})
    stg.fall("b", {"c": True})
    return stg


def pipeline_stage(name: str = "stage") -> STG:
    """A four-phase pipeline latch-controller STG with its environment.

    Signals: input handshake (``r_in``, ``a_in``) and output handshake
    (``r_out``, ``a_out``).  The stage forwards requests when the output
    channel is idle and acknowledges its input once the output request
    has been raised; both environments are eager.
    """
    stg = STG(name)
    for signal in ("r_in", "a_in", "r_out", "a_out"):
        stg.add_signal(signal)
    # The stage: a C-element from (r_in, not a_out) to r_out.
    stg.rise("r_out", {"r_in": True, "a_out": False})
    stg.fall("r_out", {"r_in": False, "a_out": True})
    # Input acknowledge mirrors the forwarded request.
    stg.rise("a_in", {"r_out": True})
    stg.fall("a_in", {"r_out": False})
    # Left environment: four-phase requester.
    stg.rise("r_in", {"a_in": False})
    stg.fall("r_in", {"a_in": True})
    # Right environment: eager acknowledger.
    stg.rise("a_out", {"r_out": True})
    stg.fall("a_out", {"r_out": False})
    return stg
