"""Analysis-as-a-service: result cache, warm worker pool, batch API.

The serving layer over :mod:`repro.analysis` — the ROADMAP's
"long-lived queryable tool" item (after Garavel, arXiv 2101.05024)::

    from repro.service import AnalysisService

    with AnalysisService(cache_dir="cache/") as service:
        handle = service.submit(net, AnalysisSpec(scheme="improved"))
        print(handle.result().markings, handle.info)

* :class:`ResultCache` — two-tier (memory LRU + disk JSON) result
  cache keyed by ``(net_fingerprint, semantic spec fingerprint)``,
  content-hash sealed, torn-write safe, size-bounded.
* :class:`AnalysisWorkerPool` — persistent ``analyze()`` worker
  processes with PR 8's crash/respawn/retire discipline and serial
  degradation.
* :class:`AnalysisService` / :class:`AnalysisHandle` — async
  submit/result API with in-flight dedupe, cache consultation,
  checkpoint-resume injection and per-request service telemetry.

The CLI front ends are ``python -m repro.cli batch`` (JSONL request
file in, JSON results out) and ``serve`` (the same loop over
stdin/stdout).
"""

from .cache import (CACHE_FORMAT, MISS_REASONS, CacheLookup, ResultCache,
                    cache_key)
from .pool import AnalysisWorkerPool
from .server import AnalysisHandle, AnalysisService, ServiceError

__all__ = [
    "ResultCache", "CacheLookup", "cache_key", "CACHE_FORMAT",
    "MISS_REASONS",
    "AnalysisWorkerPool",
    "AnalysisService", "AnalysisHandle", "ServiceError",
]
