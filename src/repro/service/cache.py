"""Fingerprint-keyed result cache: disk tier + in-memory LRU tier.

The serving layer's whole premise is that the same analysis asked twice
should be solved once.  :class:`ResultCache` makes that concrete: the
key is ``(net_fingerprint(net), spec.semantic_fingerprint())`` — the
same two digests :class:`~repro.analysis.checkpoint.CheckpointStore`
stamps into checkpoint headers — so a cache entry and a checkpoint can
never disagree about what "the same analysis" means, and the
non-semantic spec fields (``workers``, checkpoint paths, budgets,
``max_iterations``) cannot fracture the key.

Storage is two-tier:

* an in-memory LRU (``memory_entries`` results) answering repeat
  lookups within one service lifetime without touching disk, and
* a disk tier (one JSON file per key under ``directory``) surviving
  process restarts, shared between concurrent services.

Disk entries are written with PR 7's torn-write discipline — unique
tmp name (pid + serial), ``fsync``, ``os.replace`` — and sealed with a
content hash::

    {"format": "repro-result-cache 1",
     "key": [<net_hash>, <spec_hash>],
     "sha256": "<digest of the canonical result JSON>",
     "result": {<AnalysisResult.to_dict() payload>}}

so every load re-derives the digest and rejects bit rot, truncation or
a hand-edited payload with a structured miss reason instead of serving
corrupt statistics.  Two processes racing a ``put`` on the same key
each rename a complete sealed file into place; the loser's entry simply
overwrites the winner's identical one — never a torn file.

Every miss is classified (``absent`` / ``corrupt`` / ``schema`` /
``mismatch`` / ``io``) and counted, and the disk tier is size-bounded:
when ``max_bytes`` or ``max_entries`` is exceeded after a write, the
oldest entries (mtime) are evicted until the bound holds.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..analysis.checkpoint import net_fingerprint
from ..analysis.spec import AnalysisSpec
from ..petri.net import PetriNet

__all__ = ["ResultCache", "CacheLookup", "cache_key",
           "CACHE_FORMAT", "MISS_REASONS"]

log = logging.getLogger(__name__)

CACHE_FORMAT = "repro-result-cache 1"

#: Stable machine-readable miss classifications.
MISS_REASONS = ("absent", "corrupt", "schema", "mismatch", "io")

#: Default in-memory LRU capacity (results, not bytes — a result dict
#: is a few KB of statistics).
DEFAULT_MEMORY_ENTRIES = 128

#: Age past which a tmp file is collected even when a process with its
#: embedded pid is alive — pid reuse can make a long-dead writer's pid
#: look live, and no healthy ``put`` holds a tmp file for an hour.
STALE_TMP_SECONDS = 3600.0


def _tmp_writer_pid(name: str) -> Optional[int]:
    """The pid embedded in a ``<key>.json.tmp.<pid>.<serial>`` name."""
    _, _, suffix = name.rpartition(".json.tmp.")
    pid_text = suffix.split(".", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: the process exists but isn't ours
    return True


def cache_key(net: PetriNet, spec: AnalysisSpec) -> Tuple[str, str]:
    """The cache identity of one analysis: (net hash, semantic spec hash).

    Shared digests with the checkpoint layer; see module docstring.
    """
    return (net_fingerprint(net), spec.semantic_fingerprint())


def _canonical(result: Dict[str, Any]) -> str:
    """The canonical JSON text a cache entry's seal digests."""
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def result_digest(result: Dict[str, Any]) -> str:
    """Content hash sealing one cached result payload."""
    return hashlib.sha256(_canonical(result).encode("utf-8")).hexdigest()


@dataclass
class CacheLookup:
    """Outcome of one :meth:`ResultCache.get`.

    ``hit`` with ``tier`` ``"memory"`` or ``"disk"`` and the result
    payload; or a miss with ``reason`` one of :data:`MISS_REASONS` and
    ``detail`` a human-readable explanation.
    """

    hit: bool
    tier: Optional[str] = None
    reason: Optional[str] = None
    detail: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"hit": self.hit}
        if self.hit:
            data["tier"] = self.tier
        else:
            data["reason"] = self.reason
        return data


class ResultCache:
    """Two-tier ``AnalysisResult`` cache keyed by semantic fingerprints.

    Parameters
    ----------
    directory:
        Disk tier location; created on demand.  ``None`` keeps the
        cache memory-only (no persistence, no eviction by bytes).
    memory_entries:
        In-memory LRU capacity in results; 0 disables the memory tier.
    max_bytes / max_entries:
        Disk-tier bounds; after every write the oldest entries are
        evicted until both hold.  ``None`` means unbounded.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 max_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None) -> None:
        if memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {memory_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries}")
        self.directory = Path(directory) if directory is not None else None
        self.memory_entries = memory_entries
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._memory: "OrderedDict[Tuple[str, str], Dict[str, Any]]" = \
            OrderedDict()
        self._tmp_serial = 0
        # Telemetry.
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses: Dict[str, int] = {reason: 0 for reason in MISS_REASONS}
        self.writes = 0
        self.evictions = 0

    # -- paths ---------------------------------------------------------

    def entry_path(self, key: Tuple[str, str]) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key[0]}-{key[1]}.json"

    def _sweep_stale_tmp(self) -> None:
        """Collect tmp files stranded by writers killed mid-``put``.

        The disk tier is shared between concurrent services, so a tmp
        file may belong to a *live* writer about to ``os.replace`` it
        into place — unlinking those would silently drop that writer's
        entry.  A tmp file is only stale (and collected) when the pid
        embedded in its name is no longer alive, or when it is older
        than :data:`STALE_TMP_SECONDS` (pid-reuse backstop).
        """
        if self.directory is None:
            return
        try:
            entries = list(self.directory.iterdir())
        except OSError:
            return
        now = time.time()
        for entry in entries:
            if ".json.tmp." not in entry.name:
                continue
            pid = _tmp_writer_pid(entry.name)
            stale = pid is not None and pid != os.getpid() \
                and not _pid_alive(pid)
            if not stale:
                try:
                    age = now - entry.stat().st_mtime
                except OSError:
                    continue
                stale = age > STALE_TMP_SECONDS
            if stale:
                try:
                    entry.unlink()
                except OSError:
                    pass

    # -- memory tier ---------------------------------------------------

    def _memory_put(self, key: Tuple[str, str],
                    result: Dict[str, Any]) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- lookup --------------------------------------------------------

    def get(self, key: Tuple[str, str]) -> CacheLookup:
        """Look the key up, memory tier first, and classify any miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits_memory += 1
            return CacheLookup(hit=True, tier="memory",
                               result=self._memory[key])
        lookup = self._disk_get(key)
        if lookup.hit:
            self.hits_disk += 1
            self._memory_put(key, lookup.result)  # promotion
        else:
            self.misses[lookup.reason] += 1
        return lookup

    def get_for(self, net: PetriNet, spec: AnalysisSpec) -> CacheLookup:
        return self.get(cache_key(net, spec))

    def _disk_get(self, key: Tuple[str, str]) -> CacheLookup:
        path = self.entry_path(key)
        if path is None or not path.exists():
            return CacheLookup(hit=False, reason="absent",
                               detail="no cache entry on disk")
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            return CacheLookup(hit=False, reason="io",
                               detail=f"cannot read {path}: {exc}")
        try:
            entry = json.loads(text)
        except ValueError as exc:
            return CacheLookup(
                hit=False, reason="corrupt",
                detail=f"entry is not valid JSON (truncated write?): "
                       f"{exc}")
        if not isinstance(entry, dict) \
                or entry.get("format") != CACHE_FORMAT:
            return CacheLookup(
                hit=False, reason="schema",
                detail=f"entry is not a {CACHE_FORMAT!r} file")
        if list(entry.get("key", [])) != list(key):
            return CacheLookup(
                hit=False, reason="mismatch",
                detail=f"entry key {entry.get('key')} does not match "
                       f"lookup key {list(key)} (renamed file?)")
        result = entry.get("result")
        if not isinstance(result, dict):
            return CacheLookup(hit=False, reason="schema",
                               detail="entry has no result payload")
        if entry.get("sha256") != result_digest(result):
            return CacheLookup(
                hit=False, reason="corrupt",
                detail="content hash mismatch (bit rot or a partial "
                       "overwrite)")
        return CacheLookup(hit=True, tier="disk", result=result)

    # -- store ---------------------------------------------------------

    def put(self, key: Tuple[str, str], result: Dict[str, Any]) -> None:
        """Store one result payload under the key, both tiers.

        The disk write is atomic (unique tmp + fsync + rename), so a
        concurrent reader sees either the previous sealed entry or the
        new one — never a torn file — and a crash mid-write strands
        only a tmp file, swept on the next put.  Disk errors are logged
        and swallowed: a cache that cannot persist still serves from
        memory.
        """
        self._memory_put(key, result)
        path = self.entry_path(key)
        if path is None:
            return
        entry = {
            "format": CACHE_FORMAT,
            "key": list(key),
            "sha256": result_digest(result),
            "result": result,
        }
        self._sweep_stale_tmp()
        self._tmp_serial += 1
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{self._tmp_serial}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            log.warning("cannot persist cache entry %s: %s", path, exc)
            return
        self.writes += 1
        self._evict()

    def put_for(self, net: PetriNet, spec: AnalysisSpec,
                result: Dict[str, Any]) -> None:
        self.put(cache_key(net, spec), result)

    # -- eviction ------------------------------------------------------

    def _entries_by_age(self):
        try:
            candidates = [entry for entry in self.directory.iterdir()
                          if entry.name.endswith(".json")]
            return sorted(candidates,
                          key=lambda entry: entry.stat().st_mtime)
        except OSError:
            return []

    def _evict(self) -> None:
        """Drop oldest disk entries until the size bounds hold."""
        if self.directory is None:
            return
        if self.max_bytes is None and self.max_entries is None:
            return
        entries = self._entries_by_age()
        sizes = {}
        for entry in entries:
            try:
                sizes[entry] = entry.stat().st_size
            except OSError:
                sizes[entry] = 0
        total = sum(sizes.values())
        count = len(entries)
        for entry in entries:
            over_bytes = (self.max_bytes is not None
                          and total > self.max_bytes)
            over_count = (self.max_entries is not None
                          and count > self.max_entries)
            if not over_bytes and not over_count:
                break
            try:
                entry.unlink()
            except OSError:
                continue
            total -= sizes[entry]
            count -= 1
            self.evictions += 1

    # -- telemetry -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for service telemetry / CLI summaries."""
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": dict(self.misses),
            "writes": self.writes,
            "evictions": self.evictions,
            "memory_entries": len(self._memory),
        }
