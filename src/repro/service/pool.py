"""Warm worker pool running whole analyses in persistent processes.

The DD kernel is single-threaded by design (ROADMAP: the process pool
*is* the concurrency model), so the serving layer's unit of parallelism
is one whole ``analyze()`` call per worker process.  Each worker is
persistent — spawned once, kept warm across requests, holding a small
parsed-net cache so repeat requests against the same net skip the
parse — and speaks the same wire idiom as the portfolio workers: nets
cross the process boundary as canonical ``.pnet`` text, specs as
``AnalysisSpec.to_dict()`` payloads, results as
``AnalysisResult.to_dict()`` dicts.

The failure discipline is PR 8's, verbatim:

* a worker that raises *inside* a request reports a structured
  ``("error", ...)`` reply and stays alive for the next request;
* a worker that dies (SIGKILL, BDD kernel abort) is detected by the
  poll loop after :data:`~repro.symbolic.parallel.
  DEAD_WORKER_GRACE_POLLS` empty polls — its queued reply may still be
  buffered — and is respawned with a **fresh task queue** (a dead
  worker's undrained tasks must not leak into its replacement), its
  pending requests resubmitted;
* after :data:`~repro.symbolic.parallel.MAX_RESPAWNS` respawns the slot
  is retired and its pending requests are redistributed over the
  surviving workers;
* when no workers survive (or none could ever spawn — daemonic parent,
  sandbox without semaphores) the pool reports
  ``mode="serial-fallback"`` and hands every pending request back to
  the caller as an ``("orphan", ...)`` event — the
  :class:`~repro.service.server.AnalysisService` then solves those
  in-process.

Shutdown is polite-then-forceful via
:func:`~repro.symbolic.parallel.reap_processes`, with a
``weakref.finalize`` safety net so a leaked pool cannot strand
processes.
"""

from __future__ import annotations

import hashlib
import queue
import weakref
from typing import Any, Dict, List, Optional, Tuple

from ..symbolic.parallel import (DEAD_WORKER_GRACE_POLLS, MAX_QUEUE_POISON,
                                 MAX_RESPAWNS, SweepHarness, reap_processes,
                                 resolve_workers)

__all__ = ["AnalysisWorkerPool", "PoolEvent"]

#: Parsed nets one worker keeps warm before recycling the cache.
WORKER_NET_CACHE = 8

#: One pool event: ``("result", request_id, result_dict)``,
#: ``("error", request_id, {"kind", "detail"})`` or
#: ``("orphan", request_id)`` (the pool can no longer run it; the
#: caller should solve it in-process).
PoolEvent = Tuple


def _service_worker_main(worker_id: int, task_queue, result_queue) -> None:
    """One service worker: a warm analysis loop.

    Top level so it pickles under every start method.  Protocol:

    * ``("run", request_id, net_text, spec_dict)`` — parse (or reuse a
      warm parse of) the net, run ``analyze``, reply ``("result",
      worker_id, request_id, result_dict)``; a per-request exception
      replies ``("error", worker_id, request_id, info)`` and the worker
      lives on,
    * ``("stop",)`` — exit.

    Anything fatal outside a request dies silently — the parent's crash
    detection treats it exactly like a SIGKILL.
    """
    try:
        import warnings

        from ..analysis.facade import analyze
        from ..analysis.spec import AnalysisSpec
        from ..petri.parser import loads

        nets: Dict[str, Any] = {}
        while True:
            task = task_queue.get()
            if not isinstance(task, tuple) or not task:
                continue
            if task[0] == "stop":
                break
            if task[0] != "run" or len(task) != 4:
                continue
            _tag, request_id, net_text, spec_dict = task
            try:
                digest = hashlib.sha256(
                    net_text.encode("utf-8")).hexdigest()
                net = nets.get(digest)
                if net is None:
                    net = loads(net_text)
                    if len(nets) >= WORKER_NET_CACHE:
                        nets.clear()
                    nets[digest] = net
                spec = AnalysisSpec.from_dict(spec_dict)
                with warnings.catch_warnings():
                    # Inapplicable-option warnings already fired when
                    # the submitting process validated the spec.
                    warnings.simplefilter("ignore")
                    result = analyze(net, spec)
                result_queue.put(
                    ("result", worker_id, request_id, result.to_dict()))
            except Exception as exc:
                result_queue.put(("error", worker_id, request_id,
                                  {"kind": type(exc).__name__,
                                   "detail": str(exc)}))
    except BaseException:
        pass


class _ServiceSlot:
    """One pool slot: its process, queue and pending-request ledger."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.task_queue = None
        self.pending: Dict[Any, Tuple[str, Dict[str, Any]]] = {}
        self.respawns = 0
        self.completed = 0
        self.retired = False

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class AnalysisWorkerPool:
    """Persistent ``analyze()`` workers multiplexing service requests.

    Parameters
    ----------
    workers:
        Pool size: a positive integer, ``"auto"`` (CPU count) or ``0``
        to skip processes entirely (every submit is refused and the
        caller solves serially — the deterministic mode the benchmarks
        use).
    harness:
        Process-primitive seam (:class:`~repro.symbolic.parallel.
        SweepHarness`); tests inject fakes or force the serial
        degradation here.

    The pool is lazy: processes spawn on the first :meth:`submit`.
    """

    def __init__(self, workers: "int | str" = "auto",
                 harness: Optional[SweepHarness] = None) -> None:
        self.requested_workers = workers
        self.harness = harness if harness is not None else SweepHarness()
        self.mode: Optional[str] = None
        self.slots: List[_ServiceSlot] = []
        self.crashes: List[Dict[str, Any]] = []
        self.poison = 0
        self._result_queue = None
        self._grace: Dict[int, int] = {}
        self._inflight: Dict[Any, int] = {}  # request_id -> worker_id
        self._processes: List = []           # every process ever spawned
        self._finalizer = weakref.finalize(self, reap_processes,
                                           self._processes)
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def _activate(self) -> None:
        count = resolve_workers(self.requested_workers) \
            if self.requested_workers != 0 else 0
        if count < 1 or not self.harness.available():
            self.mode = "serial-fallback"
            return
        try:
            self._result_queue = self.harness.create_queue()
            for worker_id in range(count):
                slot = _ServiceSlot(worker_id)
                self._spawn(slot)
                self.slots.append(slot)
        except Exception:
            reap_processes([s.process for s in self.slots
                            if s.process is not None])
            self.slots = []
            self.mode = "serial-fallback"
            return
        self.mode = "process"

    def _spawn(self, slot: _ServiceSlot) -> None:
        # Fresh task queue per (re)spawn — see module docstring.
        slot.task_queue = self.harness.create_queue()
        slot.process = self.harness.spawn(
            slot.worker_id, _service_worker_main,
            (slot.worker_id, slot.task_queue, self._result_queue))
        self._processes.append(slot.process)

    def close(self) -> None:
        """Stop the pool: polite stop, then terminate → join → kill."""
        if self._closed:
            return
        self._closed = True
        for slot in self.slots:
            if slot.alive():
                try:
                    slot.task_queue.put(("stop",))
                except Exception:
                    pass
        reap_processes([s.process for s in self.slots
                        if s.process is not None])

    def __enter__(self) -> "AnalysisWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------

    def _live_slots(self) -> List[_ServiceSlot]:
        return [slot for slot in self.slots
                if not slot.retired and slot.alive()]

    def submit(self, request_id, net_text: str,
               spec_dict: Dict[str, Any]) -> bool:
        """Dispatch one request to the least-loaded live worker.

        Returns ``False`` when the pool cannot take it (serial-fallback
        mode, or every worker gone) — the caller then solves
        in-process.  Never raises for a dead pool.
        """
        if self.mode is None:
            self._activate()
        if self.mode == "serial-fallback":
            return False
        live = self._live_slots()
        if not live:
            self.mode = "serial-fallback"
            return False
        slot = min(live, key=lambda s: len(s.pending))
        try:
            slot.task_queue.put(("run", request_id, net_text, spec_dict))
        except Exception:
            return False
        slot.pending[request_id] = (net_text, spec_dict)
        self._inflight[request_id] = slot.worker_id
        return True

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # -- collection ----------------------------------------------------

    def poll(self) -> List[PoolEvent]:
        """One poll round: drain ready replies, detect dead workers.

        Blocks at most one
        :meth:`~repro.symbolic.parallel.SweepHarness.poll_interval`;
        returns the events that became available (possibly none).
        Callers loop while they have unresolved requests.
        """
        events: List[PoolEvent] = []
        if not self._inflight:
            # Still sweep for crashes: a worker that dies while idle
            # must be respawned (or retired), not silently shrink the
            # pool.
            self._check_crashes(events)
            return events
        try:
            message = self._result_queue.get(
                timeout=self.harness.poll_interval())
        except queue.Empty:
            self._check_crashes(events)
            return events
        except Exception:
            self.poison += 1
            if self.poison >= MAX_QUEUE_POISON:
                # The queue itself is broken: orphan everything.
                for slot in self.slots:
                    self._orphan_slot(slot, events)
                self.mode = "serial-fallback"
            return events
        if (isinstance(message, tuple) and len(message) == 4
                and message[0] in ("result", "error")):
            tag, worker_id, request_id, payload = message
            # The request's ledger entry lives with its current owner
            # (possibly not the replying worker, after a
            # redistribution); a reply for an unknown id is a stale
            # duplicate from before a crash recovery and is dropped.
            owner = self._inflight.pop(request_id, None)
            if owner is not None:
                self.slots[owner].pending.pop(request_id, None)
                self.slots[worker_id].completed += 1
                events.append((tag, request_id, payload))
        return events

    def _check_crashes(self, events: List[PoolEvent]) -> None:
        # Idle slots (empty pending) are checked too: a worker that
        # crashes between requests still needs its respawn-or-retire.
        for slot in list(self.slots):
            if slot.retired or slot.alive():
                continue
            count = self._grace.get(slot.worker_id, 0) + 1
            self._grace[slot.worker_id] = count
            if count < DEAD_WORKER_GRACE_POLLS:
                continue  # its final reply may still be buffered
            del self._grace[slot.worker_id]
            self._recover(slot, events)

    def _recover(self, slot: _ServiceSlot,
                 events: List[PoolEvent]) -> None:
        """Respawn a crashed slot (bounded) or retire it."""
        action = "respawn" if slot.respawns < MAX_RESPAWNS else "retire"
        self.crashes.append({
            "worker": slot.worker_id,
            "pending": len(slot.pending),
            "action": action,
        })
        if action == "respawn":
            slot.respawns += 1
            try:
                self._spawn(slot)
                for request_id, (net_text, spec_dict) in \
                        list(slot.pending.items()):
                    slot.task_queue.put(
                        ("run", request_id, net_text, spec_dict))
                return
            except Exception:
                slot.process = None
        self._retire(slot, events)

    def _retire(self, slot: _ServiceSlot,
                events: List[PoolEvent]) -> None:
        """Drop a slot for good; move its pending requests elsewhere."""
        slot.retired = True
        pending = list(slot.pending.items())
        slot.pending.clear()
        for request_id, (net_text, spec_dict) in pending:
            self._inflight.pop(request_id, None)
            live = self._live_slots()
            if live:
                target = min(live, key=lambda s: len(s.pending))
                try:
                    target.task_queue.put(
                        ("run", request_id, net_text, spec_dict))
                    target.pending[request_id] = (net_text, spec_dict)
                    self._inflight[request_id] = target.worker_id
                    continue
                except Exception:
                    pass
            events.append(("orphan", request_id))
        if not self._live_slots():
            self.mode = "serial-fallback"

    def _orphan_slot(self, slot: _ServiceSlot,
                     events: List[PoolEvent]) -> None:
        slot.retired = True
        for request_id in list(slot.pending):
            self._inflight.pop(request_id, None)
            events.append(("orphan", request_id))
        slot.pending.clear()

    # -- introspection -------------------------------------------------

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (the CLI's kill-a-worker hook)."""
        return [slot.process.pid for slot in self.slots
                if slot.alive() and slot.process.pid is not None]

    def stats(self) -> Dict[str, Any]:
        return {
            "mode": self.mode or "idle",
            "workers": len(self.slots),
            "live": len(self._live_slots()),
            "completed": sum(slot.completed for slot in self.slots),
            "respawns": sum(slot.respawns for slot in self.slots),
            "retired": sum(1 for slot in self.slots if slot.retired),
            "crashes": list(self.crashes),
            "inflight": len(self._inflight),
        }
