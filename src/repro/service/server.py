"""The analysis service: async submit/handle API over cache + pool.

:class:`AnalysisService` is the layer Garavel's "useful features"
proposal asks model checkers for (arXiv 2101.05024): a long-lived
queryable tool rather than a one-shot batch run.  ``submit(net, spec)``
returns an :class:`AnalysisHandle` immediately; the service resolves it
from — in priority order —

1. **in-flight dedupe**: a submit whose ``(net, spec)`` cache key
   matches a request already being solved attaches to that solve
   instead of starting another (``dedup`` in the handle's service
   info) — but only when the running solve's budgets
   (``node_budget``, ``deadline``, ``timeout``, ``member_timeout``,
   ``max_iterations``) are at least as permissive as the new
   request's, so a tightly-budgeted solve can never answer an
   unbudgeted request with a truncated partial result;
2. **the result cache**: a :class:`~repro.service.cache.ResultCache`
   hit resolves the handle instantly, without spawning or contacting
   any solver;
3. **the warm worker pool**: the request is dispatched to a persistent
   :class:`~repro.service.pool.AnalysisWorkerPool` worker;
4. **serial in-process solve**: when the pool is unavailable (or a
   request is orphaned by worker crashes past the respawn budget), the
   service runs ``analyze()`` inline — degraded but never wrong.

When the service is given a ``checkpoint_dir``, each cache-missing
request is executed with an injected per-key checkpoint path and
``resume=True`` (PR 7): the first solve of a key leaves a final sealed
checkpoint behind, so a later solve of the same key — after the cache
entry was evicted, or from a fresh service over the same directory —
resumes the finished fixpoint instead of cold-starting.  All injected
fields are non-semantic, so they change neither the cache key nor the
checkpoint's own spec-hash header.

Only ``status="complete"`` results are cached: budgets are excluded
from the cache key (they don't change the trajectory), so a partial
result truncated by a budget must never be stored under the key a full
solve of the same spec would hit — a budget-limited run is answered
and forgotten, and the next unbudgeted submit solves for real.

Telemetry never touches result payloads: cache hits must stay
bit-identical to the originally computed ``AnalysisResult.to_dict()``,
so per-request service info (cache hit/miss + tier, solve mode, dedupe)
lives on the handle and in the batch CLI's response envelope, not in
the result's ``extras``.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.facade import analyze
from ..analysis.result import AnalysisResult
from ..analysis.spec import AnalysisSpec
from ..petri.net import PetriNet
from ..petri.parser import dumps
from ..symbolic.parallel import SweepHarness
from .cache import CacheLookup, ResultCache, cache_key
from .pool import AnalysisWorkerPool

__all__ = ["AnalysisService", "AnalysisHandle", "ServiceError"]

#: Injected checkpoint cadence: effectively "final checkpoint only"
#: (every session writes one unconditionally on completion).
CHECKPOINT_CADENCE_SECONDS = 3600.0

#: Default wait bound for ``AnalysisHandle.result()`` (seconds).
DEFAULT_TIMEOUT = 600.0

#: Spec fields that bound how far a solve gets before it is cut off.
#: All non-semantic (excluded from the cache key), but a solve limited
#: by one can end with a truncated ``status="partial"`` result — so
#: dedupe must only attach to a running solve whose budgets cover the
#: new request's (:func:`_budgets_cover`).
BUDGET_FIELDS = ("node_budget", "deadline", "timeout",
                 "member_timeout", "max_iterations")


def _budgets_cover(running: AnalysisSpec, wanted: AnalysisSpec) -> bool:
    """Can a solve running under ``running``'s budgets stand in for a
    request asking for ``wanted``'s?

    True when every budget on the running spec is at least as
    permissive as the corresponding one on the wanted spec (``None``
    means unbounded): the attached handle then receives a result no
    more truncated than its own solve would have produced.
    """
    for field in BUDGET_FIELDS:
        have = getattr(running, field)
        want = getattr(wanted, field)
        if have is None:
            continue
        if want is None or have < want:
            return False
    return True


class ServiceError(Exception):
    """A submitted analysis failed (or its handle timed out).

    ``kind`` carries the original exception class name when the solve
    itself raised (``SpecError``, ``TraversalLimitError``, ...).
    """

    def __init__(self, message: str, kind: str = "ServiceError") -> None:
        super().__init__(message)
        self.kind = kind


class AnalysisHandle:
    """Future-style handle for one submitted analysis.

    ``result()`` blocks (driving the service's event pump) until the
    request resolves, then returns the
    :class:`~repro.analysis.result.AnalysisResult`; ``result_dict()``
    returns the raw JSON payload — for a cache hit, byte-identical to
    what the original solve produced.  ``info`` describes how the
    request was served::

        {"cache": "hit"|"miss", "tier": "memory"|"disk"|None,
         "mode": "cache"|"pool"|"serial"|None, "dedup": bool,
         "key": [net_hash, spec_hash]}
    """

    def __init__(self, service: "AnalysisService", request_id: int,
                 key: Tuple[str, str]) -> None:
        self._service = service
        self.request_id = request_id
        self.key = key
        self.info: Dict[str, Any] = {
            "cache": "miss", "tier": None, "mode": None,
            "dedup": False, "key": list(key),
        }
        self._payload: Optional[Dict[str, Any]] = None
        self._error: Optional[ServiceError] = None
        self._done = False

    def done(self) -> bool:
        return self._done

    def _resolve(self, payload: Dict[str, Any]) -> None:
        self._payload = payload
        self._done = True

    def _fail(self, error: ServiceError) -> None:
        self._error = error
        self._done = True

    def result_dict(self, timeout: Optional[float] = None) \
            -> Dict[str, Any]:
        """The result's JSON payload (blocks until resolved)."""
        if not self._done:
            self._service._pump(self, timeout=timeout)
        if self._error is not None:
            raise self._error
        return self._payload

    def result(self, timeout: Optional[float] = None) -> AnalysisResult:
        """The result (blocks until resolved)."""
        return AnalysisResult.from_dict(self.result_dict(timeout=timeout))

    @property
    def error(self) -> Optional[ServiceError]:
        return self._error


class _Request:
    """One in-flight solve and every handle attached to it."""

    def __init__(self, request_id: int, key: Tuple[str, str],
                 net_text: str, exec_spec: AnalysisSpec) -> None:
        self.request_id = request_id
        self.key = key
        self.net_text = net_text
        self.exec_spec = exec_spec
        self.handles: List[AnalysisHandle] = []


class AnalysisService:
    """Long-lived analysis server: cache, dedupe, pool, degradation.

    Parameters
    ----------
    cache:
        A :class:`~repro.service.cache.ResultCache` to use; or
    cache_dir:
        build one over this directory (``None`` → memory-only cache).
    workers:
        Pool size (``"auto"`` | int); ``0`` skips worker processes —
        every miss is solved serially in-process (deterministic, the
        benchmark mode).
    checkpoint_dir:
        When set, cache misses run with an injected per-key checkpoint
        path + ``resume=True`` (see module docstring).
    harness:
        Process seam forwarded to the pool (tests).

    Use as a context manager or call :meth:`close` to stop the pool.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 cache_dir: Optional[str] = None,
                 workers: "int | str" = "auto",
                 checkpoint_dir: Optional[str] = None,
                 harness: Optional[SweepHarness] = None) -> None:
        self.cache = cache if cache is not None \
            else ResultCache(directory=cache_dir)
        self.checkpoint_dir = checkpoint_dir
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.pool = AnalysisWorkerPool(workers=workers, harness=harness)
        self._ids = itertools.count(1)
        self._requests: Dict[int, _Request] = {}
        # Several solves of one key can be in flight at once when their
        # budgets are incompatible (a tight-budget solve cannot answer
        # an unbudgeted request), hence a list per key.
        self._by_key: Dict[Tuple[str, str], List[int]] = {}
        # Telemetry.
        self.submits = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.pool_solves = 0
        self.serial_solves = 0
        self.errors = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------

    def _exec_spec(self, spec: AnalysisSpec,
                   key: Tuple[str, str]) -> AnalysisSpec:
        """The spec a miss actually runs with (checkpoint injection).

        Only non-semantic fields are touched, and a caller-provided
        ``checkpoint_path`` is respected.
        """
        if self.checkpoint_dir is None or spec.checkpoint_path is not None:
            return spec
        return spec.replace(
            checkpoint_path=f"{self.checkpoint_dir}/"
                            f"{key[0]}-{key[1]}.ckpt",
            checkpoint_every_seconds=CHECKPOINT_CADENCE_SECONDS,
            resume=True)

    def submit(self, net: PetriNet, spec: Optional[AnalysisSpec] = None,
               **overrides) -> AnalysisHandle:
        """Submit one analysis; returns immediately with a handle."""
        if self._closed:
            raise ServiceError("service is closed")
        if spec is None:
            spec = AnalysisSpec(**overrides)
        elif overrides:
            spec = spec.replace(**overrides)
        key = cache_key(net, spec)
        self.submits += 1
        request_id = next(self._ids)
        handle = AnalysisHandle(self, request_id, key)

        # 1. In-flight dedupe: attach to a running solve of the same
        #    key — but only one whose execution budgets cover this
        #    request's, so a budget-truncated partial result can never
        #    resolve a handle that asked for more.
        for inflight_id in self._by_key.get(key, []):
            inflight = self._requests.get(inflight_id)
            if inflight is not None \
                    and _budgets_cover(inflight.exec_spec, spec):
                self.dedup_hits += 1
                handle.info["dedup"] = True
                handle.info["mode"] = "pool"
                inflight.handles.append(handle)
                return handle

        # 2. Result cache: resolve instantly, no solver involved.
        lookup: CacheLookup = self.cache.get(key)
        if lookup.hit:
            self.cache_hits += 1
            handle.info.update(cache="hit", tier=lookup.tier,
                               mode="cache")
            handle._resolve(lookup.result)
            return handle
        handle.info["miss_reason"] = lookup.reason

        # 3. Dispatch to the pool (or 4. solve serially in-process).
        exec_spec = self._exec_spec(spec, key)
        request = _Request(request_id, key, dumps(net), exec_spec)
        request.handles.append(handle)
        if self.pool.submit(request_id, request.net_text,
                            exec_spec.to_dict()):
            handle.info["mode"] = "pool"
            self._requests[request_id] = request
            self._by_key.setdefault(key, []).append(request_id)
            return handle
        self._solve_serial(request)
        return handle

    # -- resolution ----------------------------------------------------

    def _solve_serial(self, request: _Request) -> None:
        """In-process degradation: solve now, on the caller's thread."""
        self.serial_solves += 1
        for handle in request.handles:
            handle.info["mode"] = "serial"
        try:
            result = analyze_from_text(request.net_text,
                                       request.exec_spec)
        except Exception as exc:
            self._fail(request, exc)
            return
        self._finish(request, result.to_dict())

    def _forget(self, request: _Request) -> None:
        """Drop a resolved request from the in-flight indexes."""
        ids = self._by_key.get(request.key)
        if ids is not None:
            try:
                ids.remove(request.request_id)
            except ValueError:
                pass
            if not ids:
                del self._by_key[request.key]
        self._requests.pop(request.request_id, None)

    def _finish(self, request: _Request,
                payload: Dict[str, Any]) -> None:
        # Only complete fixpoints are cacheable: budgets are excluded
        # from the key, so a budget-truncated partial stored here would
        # be served to later unbudgeted requests as if it were the full
        # answer.
        if payload.get("status") == "complete":
            self.cache.put(request.key, payload)
        self._forget(request)
        for handle in request.handles:
            handle._resolve(payload)

    def _fail(self, request: _Request, exc: Exception,
              kind: Optional[str] = None) -> None:
        self.errors += 1
        self._forget(request)
        error = ServiceError(str(exc),
                             kind=kind or type(exc).__name__)
        for handle in request.handles:
            handle._fail(error)

    def _pump(self, handle: AnalysisHandle,
              timeout: Optional[float] = None) -> None:
        """Drive pool events until the handle resolves (or times out)."""
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else DEFAULT_TIMEOUT)
        while not handle.done():
            if time.monotonic() > deadline:
                handle._fail(ServiceError(
                    f"request {handle.request_id} did not resolve "
                    f"within its timeout", kind="Timeout"))
                return
            events = self.pool.poll()
            for event in events:
                self._apply(event)
            if not events and self.pool.inflight == 0 \
                    and not handle.done():
                # Nothing can resolve this handle any more — the pool
                # lost track of the request (should be unreachable; the
                # orphan path covers worker exhaustion).  Fail loudly
                # instead of spinning until the timeout.
                solve_id = next(
                    (rid for rid, req in self._requests.items()
                     if handle in req.handles), None)
                if solve_id is not None:
                    self._apply(("orphan", solve_id))
                else:
                    handle._fail(ServiceError(
                        f"request {handle.request_id} was lost by the "
                        f"worker pool", kind="Lost"))
                return

    def _apply(self, event: Tuple) -> None:
        tag, request_id = event[0], event[1]
        request = self._requests.get(request_id)
        if request is None:
            return
        if tag == "result":
            self.pool_solves += 1
            self._finish(request, event[2])
        elif tag == "error":
            info = event[2]
            self._fail(request, Exception(info.get("detail", "")),
                       kind=info.get("kind", "WorkerError"))
        elif tag == "orphan":
            # The pool gave the request back (workers exhausted):
            # degrade to a serial in-process solve.
            self._forget(request)
            self._solve_serial(request)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Resolve every outstanding request (blocking)."""
        for request in list(self._requests.values()):
            for handle in request.handles:
                if not handle.done():
                    self._pump(handle, timeout=timeout)

    # -- telemetry -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "submits": self.submits,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "pool_solves": self.pool_solves,
            "serial_solves": self.serial_solves,
            "errors": self.errors,
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
        }


def analyze_from_text(net_text: str,
                      spec: AnalysisSpec) -> AnalysisResult:
    """Run ``analyze`` on a net's canonical ``.pnet`` text.

    The serial-degradation twin of what a pool worker does, sharing the
    same wire form so both paths compute on an identical parsed net.
    """
    from ..petri.parser import loads
    return analyze(loads(net_text), spec)
