"""Symbolic analysis: traversal, model checking, ZDD baseline.

* :class:`SymbolicNet` — encoded net + BDD manager, image/preimage.
* :func:`traverse` — BFS reachability fixpoint with statistics.
* :class:`RelationalNet` / :func:`traverse_relational` — Eq. 3
  transition-relation cross-check.
* :class:`ModelChecker` — deadlock, mutual exclusion, EF/AG queries.
* :class:`ZddNet` / :func:`traverse_zdd` — the Yoneda sparse-ZDD
  baseline of Table 4.
"""

from .checker import CheckReport, ModelChecker
from .kbounded import KBoundedNet, KBoundedResult, traverse_kbounded
from .relational import RelationalNet
from .transition import SymbolicNet
from .traversal import TraversalResult, reachable_set, traverse, \
    traverse_relational
from .zdd_traversal import ZddNet, ZddTraversalResult, traverse_zdd

__all__ = [
    "SymbolicNet", "RelationalNet",
    "traverse", "traverse_relational", "reachable_set", "TraversalResult",
    "ModelChecker", "CheckReport",
    "ZddNet", "ZddTraversalResult", "traverse_zdd",
    "KBoundedNet", "KBoundedResult", "traverse_kbounded",
]
