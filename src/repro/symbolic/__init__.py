"""Symbolic analysis: traversal, model checking, ZDD baseline.

* :class:`SymbolicNet` — encoded net + BDD manager, image/preimage.
* :func:`traverse` — BFS reachability fixpoint with statistics.
* :mod:`repro.symbolic.partition` — the *generic* relational layer:
  support clustering, disjunctive partitions, reorder-aware
  reclustering, the chained sweep with diff-based narrowing and the
  pluggable image engines (monolithic | partitioned | chained |
  partitioned-mp), written once over the shared ``repro.dd`` kernel.
* :mod:`repro.symbolic.parallel` — the ``partitioned-mp`` engine's
  worker-process pool (blocks pinned to warm managers, bddio/zddio
  wire format, crash fallback to serial evaluation).
* :class:`RelationalNet` / :func:`traverse_relational` — the BDD
  encoding shim over that layer (Eq. 3 transition-relation traversal).
* :class:`ZddRelationalNet` / :func:`traverse_zdd` — the sparse-ZDD
  shim over the same layer, plus the Yoneda classic engine of Table 4.
* :class:`ModelChecker` — deadlock, mutual exclusion, EF/AG queries.

The ``traverse*`` entry points and per-engine result dataclasses are
legacy shims: :mod:`repro.analysis` (``analyze(net, AnalysisSpec())``)
is the unified facade new code should use; the engines and net classes
here remain its building blocks.
"""

from .checker import CheckReport, ModelChecker
from .kbounded import KBoundedNet, KBoundedResult, traverse_kbounded
from .parallel import (ParallelPartitionedImageEngine, ParallelSweep,
                       SweepHarness)
from .partition import PartitionedNet, RelationPartition
from .relational import RelationalNet
from .transition import SymbolicNet, cluster_by_support
from .traversal import (IMAGE_ENGINES, ChainedImageEngine, ImageEngine,
                        MonolithicImageEngine, PartitionedImageEngine,
                        TraversalLimitError, TraversalResult,
                        make_image_engine, reachable_set, traverse,
                        traverse_relational)
from .zdd_relational import (ZddRelationPartition, ZddRelationalNet,
                             ZddSparseRelation, ZddStateOps)
from .zdd_traversal import (ZDD_IMAGE_ENGINES, ChainedZddEngine,
                            ClassicZddEngine, MonolithicZddEngine,
                            ParallelZddEngine, PartitionedZddEngine,
                            ZddImageEngine, ZddNet, ZddTraversalResult,
                            make_zdd_image_engine, traverse_zdd)

__all__ = [
    "SymbolicNet", "RelationalNet", "RelationPartition", "PartitionedNet",
    "cluster_by_support",
    "traverse", "traverse_relational", "reachable_set", "TraversalResult",
    "TraversalLimitError",
    "IMAGE_ENGINES", "ImageEngine", "make_image_engine",
    "MonolithicImageEngine", "PartitionedImageEngine", "ChainedImageEngine",
    "ParallelPartitionedImageEngine", "ParallelSweep", "SweepHarness",
    "ParallelZddEngine",
    "ModelChecker", "CheckReport",
    "ZddNet", "ZddTraversalResult", "traverse_zdd",
    "ZddRelationalNet", "ZddRelationPartition", "ZddSparseRelation",
    "ZddStateOps",
    "ZDD_IMAGE_ENGINES", "ZddImageEngine", "make_zdd_image_engine",
    "ClassicZddEngine", "MonolithicZddEngine", "PartitionedZddEngine",
    "ChainedZddEngine",
    "KBoundedNet", "KBoundedResult", "traverse_kbounded",
]
