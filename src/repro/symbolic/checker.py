"""Symbolic model checking on encoded Petri nets.

The paper's motivation is verification of concurrent systems (deadlock
freedom, mutual exclusion, signal-transition-graph implementability), so
the library exposes the standard checks built on the reachability set and
the pre-image operator:

* deadlock detection with witness extraction,
* marking reachability and place-invariant style assertions,
* mutual-exclusion checks over sets of places,
* the CTL-lite fixpoints ``EF`` (backward reachability) and ``AG``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..bdd import Function, false, true
from ..petri.marking import Marking
from .transition import SymbolicNet
from .traversal import traverse


@dataclass
class CheckReport:
    """Outcome of a verification query with an optional witness."""

    holds: bool
    witness: Optional[Marking] = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


class ModelChecker:
    """Verification queries over a symbolic net's reachable set."""

    def __init__(self, symnet: SymbolicNet,
                 reachable: Optional[Function] = None,
                 use_toggle: bool = False) -> None:
        self.symnet = symnet
        if reachable is None:
            reachable = traverse(symnet, use_toggle=use_toggle).reachable
        self.reachable = reachable

    # -- helpers -----------------------------------------------------------

    def _witness(self, states: Function) -> Optional[Marking]:
        if states.is_zero():
            return None
        assignment = states.sat_one()
        full = {name: assignment.get(name, False)
                for name in self.symnet.encoding.variables}
        return self.symnet.encoding.assignment_to_marking(full)

    def marking_count(self) -> int:
        """Number of reachable markings."""
        return self.symnet.count_markings(self.reachable)

    # -- queries -----------------------------------------------------------

    def is_reachable(self, marking: Marking) -> bool:
        """Is this exact marking reachable?"""
        minterm = self.symnet.marking_function(Marking(marking))
        return not (minterm & self.reachable).is_zero()

    def find_deadlocks(self) -> CheckReport:
        """Reachable markings enabling no transition."""
        dead = self.reachable & self.symnet.deadlock_condition()
        if dead.is_zero():
            return CheckReport(holds=False, detail="no reachable deadlock")
        count = self.symnet.count_markings(dead)
        return CheckReport(holds=True, witness=self._witness(dead),
                           detail=f"{count} deadlocked marking(s)")

    def check_mutual_exclusion(self, places: Iterable[str]) -> CheckReport:
        """No reachable marking marks two of the given places at once."""
        places = list(places)
        violation = false(self.symnet.bdd)
        for i, place_a in enumerate(places):
            for place_b in places[i + 1:]:
                both = (self.symnet.places[place_a]
                        & self.symnet.places[place_b])
                violation = violation | (self.reachable & both)
        if violation.is_zero():
            return CheckReport(holds=True,
                               detail=f"places {places} mutually exclusive")
        return CheckReport(holds=False, witness=self._witness(violation),
                           detail="simultaneously marked")

    def check_invariant(self, predicate: Function) -> CheckReport:
        """AG predicate: does it hold on every reachable marking?"""
        violation = self.reachable - predicate
        if violation.is_zero():
            return CheckReport(holds=True, detail="invariant holds")
        return CheckReport(holds=False, witness=self._witness(violation),
                           detail="invariant violated")

    def ef(self, target: Function) -> Function:
        """Backward fixpoint: reachable states that can reach ``target``.

        The result is intersected with the reachable set, i.e. this is
        ``reachable AND EF(target)``.

        The fixpoint is frontier-based: ``preimage_all`` distributes
        over union (per-transition preimages are cofactor-and-constrain,
        both union homomorphisms), so each round only preimages the
        states added in the previous round instead of the whole
        accumulated set.  The frontier subtraction is an AND plus a
        complement-bit flip, and — as in the forward relational engines
        — the frontier is narrowed against ``frontier | ~current``
        (Coudert-Madre restrict) before preimaging: any states it picks
        up are already in ``current``, so their preimages are members
        of the fixpoint and at worst arrive a round early.
        """
        from .relational import SIMPLIFY_MIN_FRONTIER_NODES

        current = target & self.reachable
        frontier = current
        while not frontier.is_zero():
            if frontier.size() >= SIMPLIFY_MIN_FRONTIER_NODES:
                frontier = frontier.restrict(frontier | ~current)
            frontier = (self.symnet.preimage_all(frontier)
                        & self.reachable) - current
            current = current | frontier
            if current == self.reachable:
                # Canonicity makes the saturation test one edge compare;
                # it skips the final (largest-frontier) preimage round.
                return current
        return current

    def ag(self, predicate: Function) -> Function:
        """Reachable states all of whose reachable futures satisfy
        ``predicate``: the complement of ``EF(not predicate)``."""
        return self.reachable - self.ef(self.reachable - predicate)

    def can_always_recover(self, target: Function) -> CheckReport:
        """AG EF target — e.g. home-marking / liveness-style checks."""
        recover = self.ef(target)
        stuck = self.reachable - recover
        if stuck.is_zero():
            return CheckReport(holds=True,
                               detail="target reachable from every state")
        return CheckReport(holds=False, witness=self._witness(stuck),
                           detail="states that cannot reach target")

    def place_predicate(self, place: str) -> Function:
        """The characteristic function of one place (convenience)."""
        return self.symnet.places[place]

    def enabled_predicate(self, transition: str) -> Function:
        """The enabling function of one transition (convenience)."""
        return self.symnet.enabling[transition]

    def live_transitions(self) -> List[str]:
        """Transitions enabled in at least one reachable marking."""
        return [t for t in self.symnet.net.transitions
                if not (self.reachable
                        & self.symnet.enabling[t]).is_zero()]
