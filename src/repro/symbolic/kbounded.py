"""Symbolic analysis of k-bounded (non-safe) Petri nets.

The paper notes that "the extension to unsafe PNs is straightforward"
(Section 2, citing [16]): instead of one boolean per place, a k-bounded
place carries ``ceil(log2(k+1))`` bits holding its token count.  Firing a
transition then *increments/decrements* counters instead of setting
constants, so the quantify-and-force image of the safe case no longer
applies; this engine builds per-transition relations over interleaved
current/next count bits (the Eq. 3 machinery) with the count arithmetic
expanded enumeratively — exact for the small bounds where counting
encodings make sense.

Semantics: a transition is enabled when every input place holds a token
*and* firing would not push any output place beyond the bound (strictly
k-bounded semantics).  For nets that are in fact k-bounded the second
condition never bites, and the engine computes the same reachability set
as the explicit token game.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd import BDD, Function, cube, false, true, variable
from ..petri.marking import Marking
from ..petri.net import PetriNet


@dataclass
class KBoundedResult:
    """Statistics of a k-bounded symbolic reachability computation."""

    reachable: Function
    marking_count: int
    iterations: int
    variable_count: int
    final_bdd_nodes: int
    seconds: float

    def __repr__(self) -> str:
        return (f"<KBoundedResult markings={self.marking_count} "
                f"V={self.variable_count} BDD={self.final_bdd_nodes} "
                f"t={self.seconds:.3f}s>")


class KBoundedNet:
    """A Petri net encoded with ``ceil(log2(k+1))`` count bits per place.

    Parameters
    ----------
    net:
        An ordinary net (arc weights one; self-loops allowed).
    bound:
        The token bound ``k`` per place (k >= 1; ``k = 1`` degenerates to
        the safe sparse encoding, one bit per place).
    """

    def __init__(self, net: PetriNet, bound: int,
                 bdd: Optional[BDD] = None) -> None:
        if bound < 1:
            raise ValueError("bound must be at least one")
        if bdd is None:
            bdd = BDD()
        if bdd.num_vars:
            raise ValueError("KBoundedNet needs a fresh BDD manager")
        self.net = net
        self.bound = bound
        self.bdd = bdd
        self.bits = max(1, math.ceil(math.log2(bound + 1)))

        # Interleave current and next bits per place for monotone renames.
        self._current: Dict[str, List[str]] = {}
        self._next: Dict[str, List[str]] = {}
        for place in net.places:
            cur_bits, nxt_bits = [], []
            for bit in range(self.bits):
                cur = f"{place}#{bit}"
                nxt = f"{place}#{bit}'"
                bdd.add_var(cur)
                bdd.add_var(nxt)
                cur_bits.append(cur)
                nxt_bits.append(nxt)
            self._current[place] = cur_bits
            self._next[place] = nxt_bits
        self.current_vars = [v for p in net.places
                             for v in self._current[p]]
        self._rename_map = {nxt: cur
                            for place in net.places
                            for cur, nxt in zip(self._current[place],
                                                self._next[place])}

        self.relations: Dict[str, Function] = {
            t: self._build_relation(t) for t in net.transitions}
        initial = net.initial_marking
        for place, count in initial.items():
            if count > bound:
                raise ValueError(
                    f"initial marking exceeds the bound at {place!r}")
        assignment: Dict[str, bool] = {}
        for place in net.places:
            assignment.update(self._count_bits(place, initial[place],
                                               nxt=False))
        self.initial: Function = cube(bdd, assignment)

    # ------------------------------------------------------------------

    def _count_bits(self, place: str, value: int, nxt: bool
                    ) -> Dict[str, bool]:
        names = self._next[place] if nxt else self._current[place]
        return {names[bit]: bool((value >> bit) & 1)
                for bit in range(self.bits)}

    def count_equals(self, place: str, value: int,
                     nxt: bool = False) -> Function:
        """Predicate: ``place`` holds exactly ``value`` tokens."""
        if not 0 <= value <= (1 << self.bits) - 1:
            raise ValueError(f"count {value} out of range")
        return cube(self.bdd, self._count_bits(place, value, nxt))

    def count_at_least(self, place: str, value: int) -> Function:
        """Predicate: ``place`` holds at least ``value`` tokens."""
        result = false(self.bdd)
        for count in range(value, self.bound + 1):
            result = result | self.count_equals(place, count)
        return result

    def _delta(self, transition: str, place: str) -> int:
        delta = 0
        if place in self.net.postset(transition):
            delta += 1
        if place in self.net.preset(transition):
            delta -= 1
        return delta

    def _build_relation(self, transition: str) -> Function:
        """Enumerative count relation: for every touched place, the pairs
        ``(v, v + delta)`` with both sides within bounds; untouched
        places keep their bits equal."""
        bdd = self.bdd
        relation = true(bdd)
        touched = self.net.preset(transition) | self.net.postset(transition)
        for place in self.net.places:
            if place not in touched:
                stay = true(bdd)
                for cur, nxt in zip(self._current[place],
                                    self._next[place]):
                    stay = stay & variable(bdd, cur).iff(
                        variable(bdd, nxt))
                relation = relation & stay
                continue
            consumes = place in self.net.preset(transition)
            delta = self._delta(transition, place)
            moves = false(bdd)
            low = 1 if consumes else 0
            for value in range(low, self.bound + 1):
                target = value + delta
                if not 0 <= target <= self.bound:
                    continue
                moves = moves | (self.count_equals(place, value)
                                 & self.count_equals(place, target,
                                                     nxt=True))
            relation = relation & moves
        return relation

    def image(self, states: Function, transition: str) -> Function:
        """Successors of ``states`` under one transition."""
        shifted = states.and_exists(self.relations[transition],
                                    self.current_vars)
        return shifted.rename(self._rename_map)

    def image_all(self, states: Function) -> Function:
        """Successors under all transitions."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.image(states, transition)
        return result

    # ------------------------------------------------------------------

    def marking_function(self, marking: Marking) -> Function:
        """The minterm of one marking (over current variables)."""
        assignment: Dict[str, bool] = {}
        for place in self.net.places:
            count = marking[place]
            if count > self.bound:
                raise ValueError(f"marking exceeds bound at {place!r}")
            assignment.update(self._count_bits(place, count, nxt=False))
        return cube(self.bdd, assignment)

    def markings_of(self, states: Function) -> List[Marking]:
        """Decode a state set into explicit markings (small sets only)."""
        result = []
        variables = [self.bdd.var_index(v) for v in self.current_vars]
        for assignment in self.bdd.iter_minterms(states.node, variables):
            named = {self.bdd.var_name(v): val
                     for v, val in assignment.items()}
            counts: Dict[str, int] = {}
            for place in self.net.places:
                value = 0
                for bit, name in enumerate(self._current[place]):
                    if named[name]:
                        value |= 1 << bit
                counts[place] = value
            result.append(Marking(counts))
        return result

    def count_markings(self, states: Function) -> int:
        """Number of distinct markings in a state set."""
        return states.satcount(len(self.current_vars))


def traverse_kbounded(knet: KBoundedNet,
                      max_iterations: Optional[int] = None
                      ) -> KBoundedResult:
    """BFS frontier fixpoint over the k-bounded encoding."""
    start = time.perf_counter()
    reached = knet.initial
    frontier = knet.initial
    iterations = 0
    while not frontier.is_zero():
        if max_iterations is not None and iterations >= max_iterations:
            from .traversal import TraversalLimitError
            raise TraversalLimitError(
                f"traversal exceeded {max_iterations} iterations",
                reached=reached, frontier=frontier, iterations=iterations)
        successors = knet.image_all(frontier)
        frontier = successors - reached
        reached = reached | successors
        iterations += 1
        knet.bdd.checkpoint()
    seconds = time.perf_counter() - start
    return KBoundedResult(
        reachable=reached,
        marking_count=knet.count_markings(reached),
        iterations=iterations,
        variable_count=len(knet.current_vars),
        final_bdd_nodes=reached.size(),
        seconds=seconds)
