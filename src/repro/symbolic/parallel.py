"""Multiprocess partitioned image evaluation (the ``partitioned-mp``
engine).

The disjunctive partition of Eq. 3 makes the per-block images within one
fixpoint step independent:

    img(X) = U_b img_b(X)

so the blocks can be evaluated by a pool of worker processes and the
parent only unions the results.  :class:`ParallelSweep` implements that
pool for *both* relational nets (BDD
:class:`~repro.symbolic.relational.RelationalNet` and ZDD
:class:`~repro.symbolic.zdd_relational.ZddRelationalNet`), reusing the
:mod:`repro.bdd.io` serialization formats as the wire protocol:

* Each worker holds a *warm* manager — a fresh ``BDD``/``ZDD`` declared
  with the parent's variable order, kept alive across iterations.
* Blocks are *pinned* to workers (largest serialized payload first,
  greedily onto the least-loaded worker), so each block's relation is
  shipped and rebuilt exactly once; per step only the current state set
  travels to the workers and one image family travels back.
* The parent deserializes the per-worker images and unions them — the
  same successor set the serial partitioned engine computes, in the
  same single step, so the fixpoint trajectory (and therefore the
  checkpoint story) is identical.

Durability contract (PR 7):

* Checkpoints are written only at step barriers — this module never
  touches the checkpoint layer; one :meth:`ParallelSweep.image` call is
  one complete step, and the session checkpoints after it returns.
* A worker that dies mid-step is detected by the poll loop; its pinned
  blocks are evaluated *serially in the parent* for that step (the
  parent keeps its own partitions — serialization ships copies), the
  crash is recorded as a structured entry, and the worker is respawned
  (bounded retries) or retired with its blocks re-pinned elsewhere.
* Per-worker ``peak_live_nodes`` / ``reorder_count`` are collected with
  every reply and aggregated into the session's
  :class:`~repro.analysis.result.AnalysisResult` (detail under
  ``extras["parallel"]``).

Environments that cannot run worker processes (sandboxes without
semaphores, daemonic parents such as portfolio members) degrade to the
serial partitioned sweep, recorded as ``mode="serial-fallback"`` — the
same graceful degradation the PR 6 portfolio race has.

The chained engine stays serial by design: its sweep feeds each block
the states accumulated by the previous blocks, which is exactly the
dependency the disjunctive form does not have.
"""

from __future__ import annotations

import os
import queue
import weakref
from typing import Any, Dict, List, Optional, Tuple

from ..bdd.io import (dump_functions, dump_zdd_nodes, load_functions,
                      load_zdd_nodes)
from .partition import (ClusterSize, PartitionedImageEngine,
                        PartitionedNet)

__all__ = [
    "ParallelSweep", "SweepHarness", "ParallelPartitionedImageEngine",
    "POLL_INTERVAL", "DEAD_WORKER_GRACE_POLLS", "MAX_QUEUE_POISON",
    "MAX_RESPAWNS", "JOIN_TIMEOUT", "STALLED_QUEUE_POLLS",
    "resolve_workers", "reap_processes",
]

#: Result-queue poll granularity (seconds): crash detection latency.
POLL_INTERVAL = 0.1
#: Consecutive empty polls with a dead process before declaring a crash
#: (its final reply may still be buffered in the queue).
DEAD_WORKER_GRACE_POLLS = 2
#: Undecodable replies tolerated before the pool gives up on the queue.
MAX_QUEUE_POISON = 3
#: Times one worker slot is restarted after a crash before it is
#: retired and its blocks re-pinned onto the surviving workers.
MAX_RESPAWNS = 1
#: Consecutive empty polls — with a crash already on record and every
#: pending worker alive — before the shared result queue is declared
#: wedged and rebuilt.  A worker killed in the microseconds while its
#: queue feeder thread holds the queue's write lock leaves the lock
#: held forever, so every surviving writer blocks on its next reply;
#: only abandoning the queue recovers the pool.
STALLED_QUEUE_POLLS = 300
#: Grace given to a stopping worker before terminate/kill.
JOIN_TIMEOUT = 2.0


def resolve_workers(workers) -> int:
    """Resolve a ``workers`` setting (``"auto"`` | int) to a count.

    ``"auto"`` takes the machine's CPU count; explicit counts pass
    through.  The pool additionally caps the count at the number of
    partition blocks when it first pins them.
    """
    if workers in (None, "auto"):
        return max(1, os.cpu_count() or 1)
    return int(workers)


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------

def _decode_bdd_block(manager, payload):
    """Rebuild one pinned BDD block from its wire form."""
    _, relation_text, quantify, rename = payload
    relation = load_functions(relation_text, manager)["relation"]
    return (relation.size(), relation, tuple(quantify), dict(rename))


def _decode_zdd_block(manager, payload):
    """Rebuild one pinned ZDD block; produce families come back
    referenced (the worker holds them across steps)."""
    _, produce_text, consumes, rename_pairs = payload
    produced = load_zdd_nodes(produce_text, manager)
    members = []
    size = 0
    for index, consume_names in enumerate(consumes):
        produce = manager.ref(produced[f"m{index}"])
        consume = tuple(manager.var_index(name) for name in consume_names)
        members.append((consume, produce))
        size += manager.size(produce)
    rename = {manager.var_index(nxt): manager.var_index(cur)
              for nxt, cur in rename_pairs}
    return (size, tuple(members), rename)


def _eval_bdd_blocks(manager, blocks, states_text: str) -> str:
    from ..bdd import false
    states = load_functions(states_text, manager)["states"]
    result = false(manager)
    # Smallest blocks first: smaller intermediate union BDDs (the same
    # ordering fix the serial image_partitioned applies).
    for _, relation, quantify, rename in sorted(blocks,
                                                key=lambda b: b[0]):
        if not quantify:
            image = states & relation
        else:
            image = states.and_exists(relation, quantify).rename(rename)
        result = result | image
    return dump_functions({"image": result})


def _eval_zdd_blocks(manager, blocks, states_text: str) -> str:
    from ..bdd.zdd import EMPTY
    states = load_zdd_nodes(states_text, manager)["states"]
    result = EMPTY
    for _, members, rename in sorted(blocks, key=lambda b: b[0]):
        accumulated = EMPTY
        for consume, produce in members:
            matched = manager.supset(states, consume)
            if matched == EMPTY:
                continue
            accumulated = manager.union(
                accumulated,
                manager.and_exists(matched, produce, consume))
        if accumulated == EMPTY:
            continue
        result = manager.union(result, manager.rename(accumulated, rename))
    return dump_zdd_nodes(manager, {"image": result})


def _sweep_worker_main(worker_id: int, kind: str, order, task_queue,
                       result_queue) -> None:
    """One pool worker: a warm manager plus the pinned-block cache.

    Top level so it pickles under every start method.  Protocol (tasks):

    * ``("pin", payloads)`` — replace the pinned block set,
    * ``("step", step_id, states_text)`` — evaluate every pinned block
      on the shipped state set; reply ``("image", worker_id, step_id,
      image_text, stats)``,
    * ``("stop",)`` — exit.

    Garbage is collected at the worker's own safe points: after a pin
    replacement and after each step reply, when only the pinned
    relations are live.  A worker that hits an unexpected error dies
    silently — the parent's crash detection treats it exactly like a
    SIGKILL and falls back to serial evaluation of its blocks.
    """
    try:
        from ..bdd import BDD, ZDD
        manager = (BDD(var_names=list(order)) if kind == "bdd"
                   else ZDD(var_names=list(order)))
        decode = _decode_bdd_block if kind == "bdd" else _decode_zdd_block
        evaluate = _eval_bdd_blocks if kind == "bdd" else _eval_zdd_blocks
        blocks: List[Tuple] = []
        while True:
            task = task_queue.get()
            tag = task[0]
            if tag == "stop":
                break
            if tag == "pin":
                if kind == "zdd":
                    for _, members, _rename in blocks:
                        for _consume, produce in members:
                            manager.deref(produce)
                blocks = [decode(manager, payload) for payload in task[1]]
                manager.checkpoint()
            elif tag == "step":
                step_id, states_text = task[1], task[2]
                image_text = evaluate(manager, blocks, states_text)
                manager.live_nodes()  # fold occupancy into the peak
                stats = {"peak_live_nodes": manager.peak_live_nodes,
                         "reorder_count": manager.reorder_count,
                         "blocks": len(blocks)}
                result_queue.put(("image", worker_id, step_id,
                                  image_text, stats))
                manager.checkpoint()
    except BaseException:
        # Dying silently is the protocol: the parent's poll loop
        # detects the dead process and evaluates our blocks serially.
        pass


# ----------------------------------------------------------------------
# The harness seam
# ----------------------------------------------------------------------

class SweepHarness:
    """Process primitives the pool runs on — the injection seam.

    The default spawns real daemonic ``multiprocessing`` processes;
    tests substitute fakes (or force :meth:`available` to ``False`` to
    pin the serial degradation).  Mirrors the portfolio's
    :class:`~repro.analysis.portfolio.WorkerHarness` surface, with
    ``cpu_count`` added for ``workers="auto"`` resolution.
    """

    def __init__(self, start_method: Optional[str] = None) -> None:
        self.start_method = start_method
        self._ctx = None

    def _context(self):
        if self._ctx is None:
            import multiprocessing
            self._ctx = (multiprocessing.get_context(self.start_method)
                         if self.start_method
                         else multiprocessing.get_context())
        return self._ctx

    def available(self) -> bool:
        """Whether worker processes can run at all.

        Daemonic parents (e.g. a portfolio member process) cannot have
        children; sandboxes commonly refuse the semaphores a
        ``multiprocessing.Queue`` needs.  Probing here lets the sweep
        degrade to serial instead of crashing mid-build.
        """
        try:
            import multiprocessing
            if multiprocessing.current_process().daemon:
                return False
            probe = self._context().Queue()
        except Exception:
            return False
        try:
            probe.close()
            probe.join_thread()
        except Exception:
            pass
        return True

    def cpu_count(self) -> int:
        return os.cpu_count() or 1

    def create_queue(self):
        return self._context().Queue()

    def spawn(self, worker_id: int, target, args):
        process = self._context().Process(
            target=target, args=args, name=f"sweep-worker-{worker_id}",
            daemon=True)
        process.start()
        return process

    def poll_interval(self) -> float:
        return POLL_INTERVAL


# ----------------------------------------------------------------------
# Wire codecs (parent side)
# ----------------------------------------------------------------------

class _BddCodec:
    """Parent-side serialization for BDD relational nets."""

    kind = "bdd"

    def __init__(self, relnet) -> None:
        self.relnet = relnet

    def order(self) -> List[str]:
        return self.relnet.bdd.order()

    def dump_state(self, states) -> str:
        return dump_functions({"states": states})

    def load_image(self, text: str):
        return load_functions(text, self.relnet.bdd)["image"]

    def block_payload(self, block) -> Tuple:
        return ("bdd", dump_functions({"relation": block.relation}),
                tuple(block.quantify), dict(block.rename))

    def block_key(self, block) -> Tuple:
        # Transitions pin the membership, the relation's node id pins
        # the built relation: metadata refreshes (same node, new
        # quantify sort) must not force a re-ship, recluster rebuilds
        # (new node) must.
        return (block.transitions, block.relation.node)


class _ZddCodec:
    """Parent-side serialization for ZDD relational nets."""

    kind = "zdd"

    def __init__(self, relnet) -> None:
        self.relnet = relnet

    def order(self) -> List[str]:
        return self.relnet.zdd.order()

    def dump_state(self, states) -> str:
        return dump_zdd_nodes(self.relnet.zdd, {"states": states})

    def load_image(self, text: str):
        return load_zdd_nodes(text, self.relnet.zdd)["image"]

    def block_payload(self, block) -> Tuple:
        zdd = self.relnet.zdd
        produces = {f"m{index}": member.produce
                    for index, member in enumerate(block.members)}
        consumes = tuple(
            tuple(zdd.var_name(index) for index in member.consume)
            for member in block.members)
        rename_pairs = tuple(
            (zdd.var_name(nxt), zdd.var_name(cur))
            for nxt, cur in sorted(block.rename.items()))
        return ("zdd", dump_zdd_nodes(zdd, produces), consumes,
                rename_pairs)

    def block_key(self, block) -> Tuple:
        # ZDD sparse relations are built once at net construction;
        # block identity is its membership.
        return (block.transitions,)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class _WorkerSlot:
    """One pool slot: its process, queue and pinned-block bookkeeping."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.task_queue = None
        self.payloads: List[Tuple] = []
        self.transitions: List[Tuple[str, ...]] = []
        self.respawns = 0
        self.stats: Optional[Dict[str, Any]] = None
        self.steps = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


def reap_processes(processes) -> None:
    """Terminate → join-grace → kill every process (finalizer-safe).

    Shared by every pool in the tree (:class:`ParallelSweep`, the
    portfolio harness, ``repro.service``'s analysis pool) so shutdown
    discipline stays identical everywhere.
    """
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(JOIN_TIMEOUT)
            if process.is_alive():
                process.kill()
                process.join(JOIN_TIMEOUT)
        except Exception:
            pass


class ParallelSweep:
    """A persistent worker pool evaluating partition blocks in parallel.

    Parameters
    ----------
    relnet:
        A :class:`~repro.symbolic.relational.RelationalNet` or
        :class:`~repro.symbolic.zdd_relational.ZddRelationalNet`; the
        manager flavour selects the wire codec (``bddio`` / ``zddio``).
    workers:
        Pool size: a positive integer or ``"auto"`` (the CPU count).
        The pool never spawns more workers than there are blocks.
    harness:
        Process-primitive seam (see :class:`SweepHarness`); tests
        inject fakes or force the serial degradation here.

    The pool is lazy: processes spawn on the first :meth:`image` call,
    when the block set is known.  When worker processes are unavailable
    the sweep silently runs the serial partitioned image instead and
    reports ``mode="serial-fallback"`` in :meth:`stats`.
    """

    def __init__(self, relnet: PartitionedNet,
                 workers: "int | str" = "auto",
                 harness: Optional[SweepHarness] = None) -> None:
        self.relnet = relnet
        self.requested_workers = workers
        self.harness = harness if harness is not None else SweepHarness()
        if getattr(relnet, "bdd", None) is not None:
            self.codec = _BddCodec(relnet)
        elif getattr(relnet, "zdd", None) is not None:
            self.codec = _ZddCodec(relnet)
        else:
            raise TypeError(
                f"ParallelSweep needs a BDD or ZDD relational net, got "
                f"{type(relnet).__name__}")
        self.mode: Optional[str] = None  # decided on first image()
        self.slots: List[_WorkerSlot] = []
        self.crashes: List[Dict[str, Any]] = []
        self.steps = 0
        self.pin_ships = 0
        self.ship_bytes = 0
        self.poison = 0
        self.queue_resets = 0
        self._result_queue = None
        self._pinned_keys: Optional[Tuple] = None
        self._processes: List = []   # every process ever spawned
        self._finalizer = weakref.finalize(self, reap_processes, self._processes)
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def _activate(self, block_count: int) -> None:
        """Decide the mode and spawn the pool (first image call)."""
        count = min(resolve_workers(self.requested_workers),
                    max(1, block_count))
        if count < 1 or not self.harness.available():
            self.mode = "serial-fallback"
            return
        try:
            self._result_queue = self.harness.create_queue()
            for worker_id in range(count):
                slot = _WorkerSlot(worker_id)
                self._spawn(slot)
                self.slots.append(slot)
        except Exception:
            reap_processes([s.process for s in self.slots if s.process is not None])
            self.slots = []
            self.mode = "serial-fallback"
            return
        self.mode = "process"

    def _spawn(self, slot: _WorkerSlot) -> None:
        # A fresh task queue per (re)spawn: a dead worker's undrained
        # tasks must not leak into its replacement.
        slot.task_queue = self.harness.create_queue()
        slot.process = self.harness.spawn(
            slot.worker_id, _sweep_worker_main,
            (slot.worker_id, self.codec.kind, self.codec.order(),
             slot.task_queue, self._result_queue))
        self._processes.append(slot.process)

    def close(self) -> None:
        """Stop the pool: polite stop, then terminate → join → kill."""
        if self._closed:
            return
        self._closed = True
        for slot in self.slots:
            if slot.alive():
                try:
                    slot.task_queue.put(("stop",))
                except Exception:
                    pass
        reap_processes([s.process for s in self.slots if s.process is not None])

    # -- pinning -------------------------------------------------------

    def _ensure_pinned(self, blocks) -> None:
        keys = tuple(self.codec.block_key(block) for block in blocks)
        if keys == self._pinned_keys:
            return
        payloads = [(self.codec.block_key(block),
                     self.codec.block_payload(block),
                     block.transitions) for block in blocks]
        # Largest serialized payload first, greedily onto the least
        # loaded worker (LPT): the pool load-balances by shipped size,
        # the best static proxy for per-step image cost.
        payloads.sort(key=lambda entry: len(entry[1][1]), reverse=True)
        live = [slot for slot in self.slots if slot.alive()]
        if not live:
            self.mode = "serial-fallback"
            return
        loads = {slot.worker_id: 0 for slot in live}
        assigned = {slot.worker_id: [] for slot in live}
        for _key, payload, transitions in payloads:
            target = min(live, key=lambda slot: loads[slot.worker_id])
            assigned[target.worker_id].append((payload, transitions))
            loads[target.worker_id] += len(payload[1])
        for slot in live:
            entries = assigned[slot.worker_id]
            slot.payloads = [payload for payload, _ in entries]
            slot.transitions = [transitions for _, transitions in entries]
            self._pin(slot)
        self._pinned_keys = keys

    def _pin(self, slot: _WorkerSlot) -> None:
        slot.task_queue.put(("pin", list(slot.payloads)))
        self.pin_ships += 1
        self.ship_bytes += sum(len(p[1]) for p in slot.payloads)

    # -- the parallel image --------------------------------------------

    def image(self, states, blocks):
        """The partitioned image of one step, evaluated by the pool.

        Semantically identical to
        :meth:`~repro.symbolic.partition.PartitionedNet.
        image_partitioned`; one call is one complete step barrier —
        no checkpoint is ever written while it runs.
        """
        if self.mode is None:
            self._activate(len(blocks))
        if self.mode != "serial-fallback":
            self._ensure_pinned(blocks)
        if self.mode == "serial-fallback":
            return self.relnet.image_partitioned(states, blocks)
        self.steps += 1
        step_id = self.steps
        states_text = self.codec.dump_state(states)
        pending: Dict[int, _WorkerSlot] = {}
        crashed: List[int] = []
        for slot in self.slots:
            if not slot.payloads:
                continue
            if slot.alive():
                slot.task_queue.put(("step", step_id, states_text))
                pending[slot.worker_id] = slot
            else:
                # Died between steps: its blocks take the same fallback
                # path as a mid-step crash.
                crashed.append(slot.worker_id)
        result = self.relnet.state_empty()
        if not pending:
            # The whole pool is gone: this and every further step runs
            # serially in the parent.
            self.mode = "serial-fallback"
            return self.relnet.image_partitioned(states, blocks)
        replies, collected_crashes = self._collect(
            step_id, pending, suspect=bool(crashed))
        crashed.extend(collected_crashes)
        for worker_id, image_text in sorted(replies.items()):
            result = self.relnet.state_union(
                result, self.codec.load_image(image_text))
        for worker_id in crashed:
            result = self.relnet.state_union(
                result, self._fallback(worker_id, step_id, states, blocks))
        return result

    def _collect(self, step_id: int, pending: Dict[int, _WorkerSlot],
                 suspect: bool = False):
        """Poll replies for this step; detect dead and wedged workers.

        ``suspect`` marks a step that already lost a worker at dispatch.
        Only after a crash can the shared result queue be wedged (the
        casualty may have died holding the queue's write lock), so only
        then does a long silence from live workers trigger
        :meth:`_reset_wedged_queue` rather than waiting forever.
        """
        replies: Dict[int, str] = {}
        crashed: List[int] = []
        grace: Dict[int, int] = {}
        stalled = 0
        while pending:
            try:
                message = self._result_queue.get(
                    timeout=self.harness.poll_interval())
            except queue.Empty:
                deaths = False
                for worker_id, slot in list(pending.items()):
                    if slot.alive():
                        continue
                    deaths = True
                    grace[worker_id] = grace.get(worker_id, 0) + 1
                    if grace[worker_id] >= DEAD_WORKER_GRACE_POLLS:
                        crashed.append(worker_id)
                        del pending[worker_id]
                if deaths:
                    stalled = 0
                    continue
                stalled += 1
                if (suspect or self.crashes) \
                        and stalled >= STALLED_QUEUE_POLLS:
                    self._reset_wedged_queue()
                    stalled = 0
                continue
            except Exception:
                self.poison += 1
                if self.poison >= MAX_QUEUE_POISON:
                    crashed.extend(pending)
                    pending.clear()
                continue
            stalled = 0
            if (not isinstance(message, tuple) or len(message) != 5
                    or message[0] != "image"):
                continue
            _tag, worker_id, reply_step, image_text, stats = message
            if reply_step != step_id or worker_id not in pending:
                continue  # stale reply from before a crash recovery
            slot = pending.pop(worker_id)
            slot.stats = stats
            slot.steps += 1
            replies[worker_id] = image_text
        return replies, crashed

    def _reset_wedged_queue(self) -> None:
        """Recover from a wedged shared result queue.

        A kill can land while the victim's queue feeder thread holds
        the result queue's write lock; the lock is never released and
        every surviving worker blocks forever on its next reply.  The
        only recovery is to abandon the queue: kill every live worker
        (their feeders may already be blocked on the dead lock) and
        build a fresh queue — the normal crash path then respawns or
        retires each slot, and the respawns attach to the new queue.
        """
        self.queue_resets += 1
        for slot in self.slots:
            if slot.alive():
                try:
                    slot.process.kill()
                except Exception:
                    pass
        try:
            self._result_queue = self.harness.create_queue()
        except Exception:
            # No replacement queue: every worker is now dead, so the
            # dispatch loop degrades to the serial fallback instead.
            pass

    def _fallback(self, worker_id: int, step_id: int, states, blocks):
        """Serially evaluate a crashed worker's blocks, then recover.

        The parent owns the partitions the worker held copies of, so the
        lost images are recomputed in-process; the crash is recorded and
        the slot is respawned (bounded) or retired — retirement forces a
        re-pin of every block over the surviving workers.
        """
        slot = self.slots[worker_id]
        by_transitions = {block.transitions: block for block in blocks}
        lost = [by_transitions[transitions]
                for transitions in slot.transitions
                if transitions in by_transitions]
        result = self.relnet.state_empty()
        for block in lost:
            result = self.relnet.state_union(
                result, self.relnet.image_partition(states, block))
        self.crashes.append({
            "worker": worker_id,
            "step": step_id,
            "blocks": len(lost),
            "action": ("respawn" if slot.respawns < MAX_RESPAWNS
                       else "retire"),
        })
        if slot.respawns < MAX_RESPAWNS:
            slot.respawns += 1
            try:
                self._spawn(slot)
                self._pin(slot)
            except Exception:
                slot.process = None
                self._retire(slot)
        else:
            self._retire(slot)
        return result

    def _retire(self, slot: _WorkerSlot) -> None:
        """Drop a slot for good and force a re-pin over the survivors
        (the whole pool gone → permanent serial fallback)."""
        slot.payloads = []
        slot.transitions = []
        self._pinned_keys = None
        if not any(s.alive() for s in self.slots):
            self.mode = "serial-fallback"

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Aggregated pool telemetry for ``extras["parallel"]``."""
        per_worker = []
        for slot in self.slots:
            entry = {"worker": slot.worker_id,
                     "blocks": len(slot.payloads),
                     "steps": slot.steps,
                     "respawns": slot.respawns}
            if slot.stats is not None:
                entry.update(slot.stats)
            per_worker.append(entry)
        return {
            "mode": self.mode or "idle",
            "workers": len(self.slots),
            "requested_workers": self.requested_workers,
            "steps": self.steps,
            "pin_ships": self.pin_ships,
            "ship_bytes": self.ship_bytes,
            "crashes": list(self.crashes),
            "queue_resets": self.queue_resets,
            "per_worker": per_worker,
            "peak_live_nodes": sum(
                (slot.stats or {}).get("peak_live_nodes", 0)
                for slot in self.slots),
            "reorder_count": sum(
                (slot.stats or {}).get("reorder_count", 0)
                for slot in self.slots),
        }


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class ParallelPartitionedImageEngine(PartitionedImageEngine):
    """``partitioned-mp``: the partitioned step, blocks evaluated by a
    :class:`ParallelSweep` worker pool.

    Semantically identical to :class:`~repro.symbolic.partition.
    PartitionedImageEngine` — same partitions, same one-step union — so
    the fixpoint trajectory and every checkpoint are bit-for-bit
    comparable with the serial engine.  Call :meth:`close` when the
    traversal ends (sessions do this at every exit path); the pool also
    carries a ``weakref.finalize`` safety net and its processes are
    daemonic, so nothing outlives the parent either way.
    """

    name = "partitioned-mp"

    def __init__(self, relnet: PartitionedNet,
                 cluster_size: ClusterSize = 1,
                 simplify_frontier: bool = False,
                 workers: "int | str" = "auto",
                 harness: Optional[SweepHarness] = None) -> None:
        super().__init__(relnet, cluster_size, simplify_frontier)
        self.sweep = ParallelSweep(relnet, workers, harness)

    def advance(self, reached, frontier):
        work = self._simplify(reached, frontier)
        successors = self.sweep.image(work, self.partitions)
        return self._absorb(reached, successors)

    def close(self) -> None:
        self.sweep.close()

    def parallel_stats(self):
        """Pool telemetry (see :meth:`ParallelSweep.stats`)."""
        return self.sweep.stats()
