"""Generic relational layer: clustering, partitions and image engines.

The paper's central claim is that the encoding choice (dense BDD vs
sparse ZDD) is orthogonal to the symbolic fixpoint machinery.  This
module is that machinery, written once and parameterized by the manager:

* support-based transition clustering — fixed-size
  (:func:`cluster_by_support`) and greedy support-overlap "auto"
  clustering (:func:`cluster_greedily`) with one shared knob set,
* the disjunctive-partition layer :class:`PartitionedNet` — block
  construction, per-granularity caching, reorder-driven metadata
  refresh *and* reorder-aware reclustering of ``"auto"`` partitions,
* the partitioned/chained sweep algorithms, including the
  ``diff``-based frontier narrowing of the chained sweep,
* the pluggable image engines (monolithic | partitioned | chained)
  behind :func:`make_image_engine`.

:class:`~repro.symbolic.relational.RelationalNet` (boolean encodings on
a BDD manager) and
:class:`~repro.symbolic.zdd_relational.ZddRelationalNet` (token sets on
a ZDD manager) are thin encoding-specific shims over this layer: they
supply how a sparse relation is built and how one block's image is
computed; everything about *which* blocks exist, *when* they are
rebuilt and *how* a sweep composes them lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, FrozenSet, List,
                    Optional, Sequence, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bdd import Function
    from ..dd import DDManager
    from ..petri.net import PetriNet

__all__ = [
    "ClusterSize", "validate_cluster_size", "cluster_by_support",
    "cluster_greedily",
    "AUTO_MIN_OVERLAP", "AUTO_NODE_BUDGET", "AUTO_MAX_CLUSTER",
    "RelationPartition", "PartitionedNet",
    "IMAGE_ENGINES", "ImageEngine", "MonolithicImageEngine",
    "PartitionedImageEngine", "ChainedImageEngine", "make_image_engine",
]

ClusterSize = Union[int, str]

IMAGE_ENGINES = ("monolithic", "partitioned", "chained",
                 "partitioned-mp")


# ---------------------------------------------------------------------
# Clustering policies (shared by every manager flavour)
# ---------------------------------------------------------------------

def validate_cluster_size(cluster_size) -> "int | str":
    """Validate a clustering granularity: a positive int or ``"auto"``.

    The single source of truth for every engine factory and
    ``partitions()`` implementation (BDD and ZDD alike), so
    misconfigurations fail fast with one consistent message.  Returns
    the value unchanged on success.
    """
    if cluster_size == "auto":
        return "auto"
    if (not isinstance(cluster_size, int) or isinstance(cluster_size, bool)
            or cluster_size < 1):
        raise ValueError(
            f"invalid cluster_size {cluster_size!r}: expected a positive "
            f"integer or 'auto'")
    return cluster_size


def cluster_by_support(items: Sequence[str],
                       support_of: Callable[[str], FrozenSet[int]],
                       level_of: Callable[[int], int],
                       cluster_size: int) -> List[List[str]]:
    """Group ``items`` into support-sorted clusters of bounded size.

    Items are ordered by the top (smallest) level of their support — the
    standard heuristic for disjunctively partitioned relations: partitions
    whose support sits high in the variable order are applied first, so a
    chained sweep pushes information down the order.  Consecutive items in
    that order (which therefore have nearby support) are merged until a
    cluster holds ``cluster_size`` items.  ``cluster_size <= 1`` yields the
    per-item partition.
    """

    bottom = 1 << 60  # below every real level; supportless items sort last

    def top_level(item: str) -> int:
        support = support_of(item)
        if not support:
            return bottom
        return min(level_of(var) for var in support)

    order = sorted(items, key=lambda item: (top_level(item), item))
    if cluster_size <= 1:
        return [[item] for item in order]
    return [list(order[i:i + cluster_size])
            for i in range(0, len(order), cluster_size)]


# Greedy auto-clustering knobs (``cluster_size="auto"``): a candidate is
# merged into the open cluster while it shares at least this fraction of
# the smaller support, the merged relation estimate stays under the node
# budget, and the cluster stays below the hard member cap.  Shared by
# the BDD and ZDD relational nets.
AUTO_MIN_OVERLAP = 0.5
AUTO_NODE_BUDGET = 600
AUTO_MAX_CLUSTER = 16


def cluster_greedily(items: Sequence[str],
                     support_of: Callable[[str], FrozenSet[int]],
                     level_of: Callable[[int], int],
                     size_of: Callable[[str], int]) -> List[List[str]]:
    """Greedy support-overlap clustering over the support-sorted order.

    The adaptive alternative to a fixed ``cluster_size``: walking the
    :func:`cluster_by_support` order, an item joins the open cluster
    while it shares at least ``AUTO_MIN_OVERLAP`` of the smaller support
    set, the summed relation size estimate (``size_of``, e.g. decision-
    diagram nodes) stays under ``AUTO_NODE_BUDGET``, and the cluster
    holds fewer than ``AUTO_MAX_CLUSTER`` members — so tight families
    (philosophers rings) get wide blocks while loosely coupled ones fall
    back towards per-item blocks.
    """
    order = [item for group in
             cluster_by_support(items, support_of, level_of, 1)
             for item in group]
    groups: List[List[str]] = []
    open_group: List[str] = []
    open_support: set = set()
    open_size = 0
    for item in order:
        support = support_of(item)
        size = size_of(item)
        if open_group:
            smaller = min(len(support), len(open_support)) or 1
            overlap = len(open_support & support) / smaller
            if (overlap >= AUTO_MIN_OVERLAP
                    and open_size + size <= AUTO_NODE_BUDGET
                    and len(open_group) < AUTO_MAX_CLUSTER):
                open_group.append(item)
                open_support |= support
                open_size += size
                continue
            groups.append(open_group)
        open_group = [item]
        open_support = set(support)
        open_size = size
    if open_group:
        groups.append(open_group)
    return groups


# ---------------------------------------------------------------------
# The BDD partition block
# ---------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class RelationPartition:
    """One block of a disjunctively partitioned transition relation.

    Partition relations are *sparse*: they constrain only the variables
    their transitions actually touch — the enabling support plus the
    changed variables' next-state literals — with identity clauses added
    only for variables changed by a sibling transition in the same
    cluster.  Untouched variables pass through the relational product
    untouched, which keeps each block's support (and therefore the
    quantification depth of ``and_exists``) local instead of spanning
    the entire variable order the way the monolithic relation does.
    """

    label: str
    transitions: Tuple[str, ...]
    relation: "Function"
    quantify: Tuple[str, ...]
    rename: Dict[str, str]
    support: FrozenSet[int]
    top_level: int

    def __repr__(self) -> str:
        return (f"<RelationPartition {self.label!r} "
                f"transitions={len(self.transitions)} "
                f"quantify={len(self.quantify)} "
                f"nodes={self.relation.size()}>")


# ---------------------------------------------------------------------
# The shared partition layer
# ---------------------------------------------------------------------

class PartitionedNet:
    """Disjunctive-partition machinery parameterized by the manager.

    Subclasses bind an encoding to a concrete
    :class:`~repro.dd.manager.DDManager`, set ``self.net`` (the Petri
    net), ``self.manager`` (the diagram manager) and ``self.initial``
    (the initial state set), call :meth:`_init_partition_layer` during
    construction, and implement the encoding-specific hooks:

    * :meth:`transition_support` — variable indices a transition's
      relation touches (indices, not levels: stable across reordering),
    * :meth:`_relation_size` — node-count estimate for the greedy
      auto-clustering budget,
    * :meth:`_make_block` / :meth:`_refresh_block` — build one block
      from a transition group / refresh its order-derived metadata,
    * :meth:`image_partition` — successors of a state set through one
      block,
    * the state-set algebra ``state_empty`` / ``state_union`` /
      ``state_diff`` / ``state_is_empty`` over whatever representation
      the subclass uses for state sets (``Function`` handles on the BDD
      side, raw node ids on the ZDD side),
    * optionally :meth:`narrow_frontier` — a representation-specific
      frontier simplification used by the engines when
      ``simplify_frontier`` is set (default: identity).

    Everything else — clustering, per-granularity caching, the
    partitioned/chained sweeps with frontier narrowing, reorder-driven
    metadata refresh and reorder-aware reclustering — is shared.
    """

    net: "PetriNet"
    manager: "DDManager"

    def _init_partition_layer(self) -> None:
        self._partitions: Dict[ClusterSize, List] = {}
        # Number of reorder notifications that actually changed the
        # membership of the cached "auto" partition (read by tests and
        # benchmarks).
        self.recluster_count = 0

    # -- encoding-specific hooks ---------------------------------------

    def transition_support(self, transition: str) -> FrozenSet[int]:
        raise NotImplementedError

    def _relation_size(self, transition: str) -> int:
        raise NotImplementedError

    def _make_block(self, group: Tuple[str, ...], label: str):
        raise NotImplementedError

    def _refresh_block(self, block):
        raise NotImplementedError

    def image_partition(self, states, block):
        raise NotImplementedError

    def state_empty(self):
        raise NotImplementedError

    def state_union(self, a, b):
        raise NotImplementedError

    def state_diff(self, a, b):
        raise NotImplementedError

    def state_is_empty(self, states) -> bool:
        raise NotImplementedError

    def narrow_frontier(self, frontier, reached):
        """Simplify a frontier against the reached set (engine opt-in).

        The default keeps the frontier as-is; the BDD net overrides this
        with the (size-gated) Coudert-Madre restriction.
        """
        return frontier

    # -- partition construction and caching ----------------------------

    def partitions(self, cluster_size: ClusterSize = 1) -> List:
        """The disjunctive partition at a given clustering granularity.

        ``cluster_size = 1`` keeps one sparse relation per transition;
        larger values merge up to ``cluster_size`` support-adjacent
        relations per block (fewer image applications per sweep,
        slightly larger blocks).  ``cluster_size = "auto"`` sizes
        clusters greedily instead: walking the support-sorted order, a
        transition joins the open cluster while it shares at least
        ``AUTO_MIN_OVERLAP`` of the smaller support set, the estimated
        merged relation stays under ``AUTO_NODE_BUDGET`` nodes, and the
        cluster holds fewer than ``AUTO_MAX_CLUSTER`` members — so tight
        families (philosophers rings) get wide blocks while loosely
        coupled ones fall back towards per-transition blocks.

        Blocks are returned support-sorted (top of the variable order
        first) and cached per granularity; the manager's reorder hook
        refreshes cached metadata — and reclusters the ``"auto"``
        partition — whenever the variable order changes.
        """
        key: ClusterSize = validate_cluster_size(cluster_size)
        cached = self._partitions.get(key)
        if cached is not None:
            return cached
        if key == "auto":
            groups = self._auto_clusters()
        else:
            groups = cluster_by_support(self.net.transitions,
                                        self.transition_support,
                                        self.manager.level_of_var, key)
        blocks = [self._build_partition(group) for group in groups]
        blocks.sort(key=lambda block: block.top_level)
        self._partitions[key] = blocks
        return blocks

    def _auto_clusters(self) -> List[List[str]]:
        """Greedy support-overlap clustering over the sorted order."""
        return cluster_greedily(
            self.net.transitions, self.transition_support,
            self.manager.level_of_var, self._relation_size)

    def _build_partition(self, group: Sequence[str]):
        """Label and build one block from a transition group."""
        label = group[0] if len(group) == 1 \
            else f"{group[0]}..{group[-1]}"
        return self._make_block(tuple(group), label)

    # -- reorder subscription ------------------------------------------

    def _subscribe_reorder(self) -> None:
        """Register the shared refresh hook on ``self.manager``."""
        self.manager.add_reorder_hook(self._on_reorder)

    def _on_reorder(self, manager) -> None:
        self.refresh_partitions()

    def refresh_partitions(self) -> None:
        """Re-derive every cached partition from the new variable order.

        Relations themselves survive reordering untouched (node ids are
        stable); what goes stale is the metadata derived from variable
        *levels* — each block's ``top_level``, level-sorted quantify
        tuples and the support-sorted order of the block list.  Fixed
        granularities only have their metadata refreshed (block
        membership is defined by the requested size, and the relations
        are expensive to rebuild); the ``"auto"`` granularity is
        *reclustered*: the greedy support-overlap grouping is re-run
        against the new order and only blocks whose membership actually
        changed are rebuilt — unchanged groups keep their existing block
        (metadata-refreshed), so a sifting pass that barely moves the
        order costs nothing.

        Called from the manager's reorder hook after every sifting pass,
        ``swap_levels`` or ``set_order``.
        """
        for key, blocks in list(self._partitions.items()):
            if key == "auto":
                refreshed = self._recluster(blocks)
            else:
                refreshed = [self._refresh_block(block) for block in blocks]
            refreshed.sort(key=lambda block: block.top_level)
            self._partitions[key] = refreshed

    def _recluster(self, blocks: List) -> List:
        """Re-run auto clustering; rebuild only membership changes."""
        groups = self._auto_clusters()
        previous = {block.transitions: block for block in blocks}
        rebuilt = []
        changed = False
        for group in groups:
            old = previous.get(tuple(group))
            if old is not None:
                rebuilt.append(self._refresh_block(old))
            else:
                rebuilt.append(self._build_partition(group))
                changed = True
        if changed:
            self.recluster_count += 1
        return rebuilt

    # -- sweep algorithms ----------------------------------------------

    def block_size(self, block) -> int:
        """Node count of a block's built relation(s).

        The load-balancing / union-scheduling weight: encoding shims
        override it with their manager's size measure.
        """
        raise NotImplementedError

    def image_partitioned(self, states, blocks) -> "object":
        """Image as the union of per-block images (Eq. 3).

        Blocks are applied smallest relation first: the union is
        commutative so the result is order-independent, but accumulating
        the small images first keeps the intermediate union DDs small
        (the previous dict-insertion order made the sweep's memory
        profile depend on transition declaration order).
        """
        result = self.state_empty()
        for block in sorted(blocks, key=self.block_size):
            result = self.state_union(result,
                                      self.image_partition(states, block))
        return result

    def image_chained(self, states, blocks, reached=None):
        """One chained sweep: apply blocks in support-sorted order,
        feeding each block the states accumulated so far.

        Returns ``states`` together with every state discovered during
        the sweep — a superset of the one-step image, still contained in
        the reachable closure, which is what makes chained fixpoints
        converge in (often far) fewer iterations.

        When ``reached`` is given the sweep *narrows* each block's
        working set: states in ``reached`` that were not part of this
        sweep's input have already been fed through every block in an
        earlier complete iteration, so their successors are already in
        ``reached`` and recomputing them is pure waste.  Each block
        therefore receives ``current - (reached - states)`` — the
        sweep's own discoveries plus its input — instead of the full
        accumulated family.  The returned set may then miss successors
        of already-expanded states, which is harmless: the fixpoint
        absorbs the sweep into ``reached`` and subtracts ``reached``
        from the new frontier, and those successors are in ``reached``
        by construction.  The fixpoint trajectory is identical with or
        without narrowing; only the per-block work shrinks.
        """
        current = states
        expanded = None
        if reached is not None:
            expanded = self.state_diff(reached, states)
            if self.state_is_empty(expanded):
                expanded = None
        for block in blocks:
            work = current if expanded is None \
                else self.state_diff(current, expanded)
            if self.state_is_empty(work):
                continue
            current = self.state_union(current,
                                       self.image_partition(work, block))
        return current


# ---------------------------------------------------------------------
# Image engines
# ---------------------------------------------------------------------

class ImageEngine:
    """Strategy object advancing a reachability fixpoint by one step.

    Subclasses implement :meth:`advance`, mapping ``(reached, frontier)``
    to the next ``(reached, frontier)`` pair; the fixpoint is hit when
    the returned frontier is empty.  Engines are generic over the
    relational net: all state-set algebra goes through the net's
    ``state_*`` hooks, so the same engine classes drive the BDD and ZDD
    relational nets.

    ``simplify_frontier`` opts into the net's :meth:`PartitionedNet.
    narrow_frontier` — on the BDD side the (size-gated) Coudert-Madre
    restriction of the frontier against ``frontier | ~reached``, applied
    once per step (once per chained *sweep*, not once per block).
    """

    name = "abstract"

    def __init__(self, relnet: PartitionedNet,
                 simplify_frontier: bool = False) -> None:
        self.relnet = relnet
        self.simplify_frontier = simplify_frontier

    @property
    def initial(self):
        return self.relnet.initial

    def count_markings(self, states) -> int:
        return self.relnet.count_markings(states)

    def advance(self, reached, frontier):
        raise NotImplementedError

    def _absorb(self, reached, successors):
        net = self.relnet
        return (net.state_union(reached, successors),
                net.state_diff(successors, reached))

    def _simplify(self, reached, frontier):
        if not self.simplify_frontier:
            return frontier
        return self.relnet.narrow_frontier(frontier, reached)

    def close(self) -> None:
        """Release engine-held resources (worker pools); idempotent.

        Serial engines hold nothing — sessions call this on every exit
        path so resource-backed engines (``partitioned-mp``) can rely
        on it.
        """


class MonolithicImageEngine(ImageEngine):
    """Single image through the all-transitions relation per step."""

    name = "monolithic"

    def advance(self, reached, frontier):
        work = self._simplify(reached, frontier)
        return self._absorb(reached, self.relnet.image_monolithic(work))


class PartitionedImageEngine(ImageEngine):
    """Union of per-block relational products (Eq. 3) per step."""

    name = "partitioned"

    def __init__(self, relnet: PartitionedNet,
                 cluster_size: ClusterSize = 1,
                 simplify_frontier: bool = False) -> None:
        super().__init__(relnet, simplify_frontier)
        self.cluster_size = cluster_size

    @property
    def partitions(self):
        return self.relnet.partitions(self.cluster_size)

    def advance(self, reached, frontier):
        work = self._simplify(reached, frontier)
        successors = self.relnet.image_partitioned(work, self.partitions)
        return self._absorb(reached, successors)


class ChainedImageEngine(PartitionedImageEngine):
    """Support-sorted sweep with frontier accumulation per step.

    The sweep always narrows per-block working sets against the states
    expanded in earlier iterations (see
    :meth:`PartitionedNet.image_chained`); ``simplify_frontier``
    additionally restricts the sweep's input once per step.
    """

    name = "chained"

    def advance(self, reached, frontier):
        net = self.relnet
        work = self._simplify(reached, frontier)
        swept = net.image_chained(work, self.partitions, reached=reached)
        return (net.state_union(reached, swept),
                net.state_diff(swept, reached))


def make_image_engine(relnet: PartitionedNet, engine: str = "partitioned",
                      cluster_size: ClusterSize = 1,
                      simplify_frontier: bool = False,
                      workers: "int | str" = "auto",
                      harness=None) -> ImageEngine:
    """Factory for the relational image engines by name.

    ``cluster_size`` must be a positive integer or ``"auto"`` (adaptive
    support-overlap clustering); ``engine`` one of :data:`IMAGE_ENGINES`.
    Both are validated here so misconfigurations fail fast with a clear
    message instead of deep inside ``partitions()``.  ``workers`` and
    ``harness`` only apply to ``"partitioned-mp"`` (see
    :class:`repro.symbolic.parallel.ParallelSweep`).
    """
    validate_cluster_size(cluster_size)
    if engine == "monolithic":
        return MonolithicImageEngine(relnet, simplify_frontier)
    if engine == "partitioned":
        return PartitionedImageEngine(relnet, cluster_size,
                                      simplify_frontier)
    if engine == "chained":
        return ChainedImageEngine(relnet, cluster_size, simplify_frontier)
    if engine == "partitioned-mp":
        # Imported here: parallel.py imports this module at top level.
        from .parallel import ParallelPartitionedImageEngine
        return ParallelPartitionedImageEngine(
            relnet, cluster_size, simplify_frontier,
            workers=workers, harness=harness)
    raise ValueError(f"unknown image engine {engine!r}; "
                     f"expected one of {IMAGE_ENGINES}")
