"""Relational image computation (the Eq. 3 cross-check).

The fast path in :class:`~repro.symbolic.transition.SymbolicNet` never
renames variables.  This module implements the textbook alternative the
paper describes: a partitioned transition relation ``R_t(P, Q)`` over
interleaved current/next variables, images by relational product
(``and_exists``) and a monotone rename back to current variables.  It is
used to cross-validate the fast path and as an ablation (relation-based
traversal is measurably slower — one reason the paper's toggle approach
matters).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bdd import BDD, Function, cube, false, true, variable
from ..encoding.characteristic import initial_function
from ..encoding.scheme import Encoding


def _next_name(name: str) -> str:
    return name + "'"


class RelationalNet:
    """Partitioned transition relations over interleaved variables."""

    def __init__(self, encoding: Encoding, bdd: Optional[BDD] = None) -> None:
        if bdd is None:
            bdd = BDD()
        if bdd.num_vars:
            raise ValueError("RelationalNet needs a fresh BDD manager")
        self.encoding = encoding
        self.net = encoding.net
        self.bdd = bdd
        # Interleave current and next variables so that renaming either
        # way is order-monotone.
        for name in encoding.variables:
            bdd.add_var(name)
            bdd.add_var(_next_name(name))
        self.current = tuple(encoding.variables)
        self.next = tuple(_next_name(v) for v in self.current)
        self._to_next = dict(zip(self.current, self.next))
        self._to_current = dict(zip(self.next, self.current))

        # Rebuild place/enabling functions over this manager.
        self.places: Dict[str, Function] = {}
        memo: Dict[str, Function] = {}

        def place_fn(place: str) -> Function:
            cached = memo.get(place)
            if cached is not None:
                return cached
            func = cube(bdd, dict(encoding.owner_code(place)))
            for partner in encoding.partners(place):
                func = func & ~place_fn(partner)
            memo[place] = func
            return func

        for place in self.net.places:
            self.places[place] = place_fn(place)
        self.enabling: Dict[str, Function] = {}
        for transition in self.net.transitions:
            func = true(bdd)
            for place in sorted(self.net.preset(transition)):
                func = func & self.places[place]
            self.enabling[transition] = func

        self.relations: Dict[str, Function] = {
            t: self._build_relation(t) for t in self.net.transitions}
        self.initial: Function = initial_function(encoding, bdd)

    def _build_relation(self, transition: str) -> Function:
        """``R_t(P, Q) = E_t(P) and AND_i (q_i <-> delta_i(P, t))``."""
        spec = self.encoding.transition_spec(transition)
        forced = dict(spec.force)
        relation = self.enabling[transition]
        for name in self.current:
            next_var = variable(self.bdd, self._to_next[name])
            if name in forced:
                target = (next_var if forced[name]
                          else ~next_var)
            else:
                target = next_var.iff(variable(self.bdd, name))
            relation = relation & target
        return relation

    def image(self, states: Function, transition: str) -> Function:
        """Successors via relational product and monotone rename."""
        next_states = states.and_exists(self.relations[transition],
                                        self.current)
        return next_states.rename(self._to_current)

    def image_all(self, states: Function) -> Function:
        """Successors under the full disjunctive partition (Eq. 3)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.image(states, transition)
        return result

    def monolithic_relation(self) -> Function:
        """The single relation ``R = OR_t R_t`` (ablation baseline)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.relations[transition]
        return result

    def image_monolithic(self, states: Function,
                         relation: Optional[Function] = None) -> Function:
        """Image through the monolithic relation."""
        if relation is None:
            relation = self.monolithic_relation()
        next_states = states.and_exists(relation, self.current)
        return next_states.rename(self._to_current)

    def count_markings(self, states: Function) -> int:
        """Number of markings represented (over current variables)."""
        return states.satcount(len(self.current))
