"""Relational image computation with partitioned transition relations.

The fast path in :class:`~repro.symbolic.transition.SymbolicNet` never
renames variables.  This module implements the relation-based alternative
the paper describes: transition relations ``R_t(P, Q)`` over interleaved
current/next variables, images by fused relational product
(:meth:`~repro.bdd.manager.BDD.and_exists`) and a monotone rename back to
current variables.

Three relation granularities are provided, feeding the pluggable image
engines in :mod:`repro.symbolic.traversal`:

* **monolithic** — one relation ``R = OR_t R_t`` (the textbook baseline;
  the relation BDD itself is often huge),
* **partitioned** — the disjunctive partition of Eq. 3, kept per
  transition or clustered by support into groups of a configurable size
  (small relations, one relational product each),
* **chained** — the same partition applied in support-sorted order while
  accumulating successors, so states discovered by an early partition are
  expanded by later ones within the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..bdd import BDD, Function, cube, false, true, variable
from ..encoding.characteristic import initial_function
from ..encoding.scheme import Encoding
from .transition import (AUTO_MAX_CLUSTER, AUTO_MIN_OVERLAP,
                         AUTO_NODE_BUDGET, cluster_by_support,
                         cluster_greedily, validate_cluster_size)

__all__ = ["RelationPartition", "RelationalNet", "AUTO_MIN_OVERLAP",
           "AUTO_NODE_BUDGET", "AUTO_MAX_CLUSTER"]

ClusterSize = Union[int, str]


@dataclass(frozen=True, eq=False)
class RelationPartition:
    """One block of a disjunctively partitioned transition relation.

    Partition relations are *sparse*: they constrain only the variables
    their transitions actually touch — the enabling support plus the
    changed variables' next-state literals — with identity clauses added
    only for variables changed by a sibling transition in the same
    cluster.  Untouched variables pass through the relational product
    untouched, which keeps each block's support (and therefore the
    quantification depth of ``and_exists``) local instead of spanning
    the entire variable order the way the monolithic relation does.
    """

    label: str
    transitions: Tuple[str, ...]
    relation: Function
    quantify: Tuple[str, ...]
    rename: Dict[str, str]
    support: FrozenSet[int]
    top_level: int

    def __repr__(self) -> str:
        return (f"<RelationPartition {self.label!r} "
                f"transitions={len(self.transitions)} "
                f"quantify={len(self.quantify)} "
                f"nodes={self.relation.size()}>")


def _next_name(name: str) -> str:
    return name + "'"


class RelationalNet:
    """Partitioned transition relations over interleaved variables.

    Parameters
    ----------
    encoding:
        Any :class:`~repro.encoding.scheme.Encoding` of a safe net.
    bdd:
        An empty BDD manager to use; created fresh when omitted.
    auto_reorder:
        Enable threshold-triggered sifting at traversal safe points,
        exactly as :class:`~repro.symbolic.transition.SymbolicNet` does.
        Sifting on a relational manager is *grouped*: each current/next
        variable pair moves as one block (``BDD.sift_groups``), which
        keeps the partition rename maps order-monotone; cached partition
        metadata is refreshed through a reorder hook after every pass.
    reorder_threshold:
        Live-node threshold for the automatic sifting trigger.
    """

    def __init__(self, encoding: Encoding, bdd: Optional[BDD] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        if bdd is None:
            bdd = BDD(auto_reorder=auto_reorder,
                      reorder_threshold=reorder_threshold)
        if bdd.num_vars:
            raise ValueError("RelationalNet needs a fresh BDD manager")
        if auto_reorder:
            # Honor the request on a caller-supplied manager too; with
            # the default auto_reorder=False the manager's own settings
            # are left untouched.
            bdd.auto_reorder = True
            bdd.reorder_threshold = reorder_threshold
        self.encoding = encoding
        self.net = encoding.net
        self.bdd = bdd
        # Interleave current and next variables so that renaming either
        # way is order-monotone.
        for name in encoding.variables:
            bdd.add_var(name)
            bdd.add_var(_next_name(name))
        self.current = tuple(encoding.variables)
        self.next = tuple(_next_name(v) for v in self.current)
        self._to_next = dict(zip(self.current, self.next))
        self._to_current = dict(zip(self.next, self.current))
        # Reordering must keep each (current, next) pair adjacent so the
        # per-partition renames stay monotone; subscribe so cached
        # partition metadata follows every order change.
        bdd.sift_groups = [
            (bdd.var_index(name), bdd.var_index(self._to_next[name]))
            for name in self.current]
        bdd.add_reorder_hook(self._on_reorder)

        # Rebuild place/enabling functions over this manager.
        self.places: Dict[str, Function] = {}
        memo: Dict[str, Function] = {}

        def place_fn(place: str) -> Function:
            cached = memo.get(place)
            if cached is not None:
                return cached
            func = cube(bdd, dict(encoding.owner_code(place)))
            for partner in encoding.partners(place):
                func = func & ~place_fn(partner)
            memo[place] = func
            return func

        for place in self.net.places:
            self.places[place] = place_fn(place)
        self.enabling: Dict[str, Function] = {}
        for transition in self.net.transitions:
            func = true(bdd)
            for place in sorted(self.net.preset(transition)):
                func = func & self.places[place]
            self.enabling[transition] = func

        self.initial: Function = initial_function(encoding, bdd)
        self._relations: Optional[Dict[str, Function]] = None
        self._partitions: Dict[ClusterSize, List[RelationPartition]] = {}
        self._identities: Dict[str, Function] = {}
        # Sparse relations and their supports are order-independent
        # (supports are variable-index sets); they are built once and
        # reused by every partitions() call, so ablation sweeps that
        # construct one engine per granularity stop re-walking the
        # relation BDDs.
        self._sparse: Optional[Dict[str, Tuple[Function,
                                               Tuple[str, ...]]]] = None
        self._supports: Dict[str, FrozenSet[int]] = {}

    @property
    def relations(self) -> Dict[str, Function]:
        """The identity-complete per-transition relations ``R_t(P, Q)``.

        Built lazily: the partitioned/chained engines work from the much
        smaller sparse relations and never need these, so constructing
        them eagerly would pay exactly the cost those engines avoid.
        """
        if self._relations is None:
            self._relations = {t: self._build_relation(t)
                               for t in self.net.transitions}
        return self._relations

    def _build_relation(self, transition: str) -> Function:
        """``R_t(P, Q) = E_t(P) and AND_i (q_i <-> delta_i(P, t))``."""
        spec = self.encoding.transition_spec(transition)
        forced = dict(spec.force)
        relation = self.enabling[transition]
        for name in self.current:
            next_var = variable(self.bdd, self._to_next[name])
            if name in forced:
                target = (next_var if forced[name]
                          else ~next_var)
            else:
                target = next_var.iff(variable(self.bdd, name))
            relation = relation & target
        return relation

    def image(self, states: Function, transition: str) -> Function:
        """Successors via relational product and monotone rename."""
        next_states = states.and_exists(self.relations[transition],
                                        self.current)
        return next_states.rename(self._to_current)

    def image_all(self, states: Function) -> Function:
        """Successors under the full disjunctive partition (Eq. 3)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.image(states, transition)
        return result

    def monolithic_relation(self) -> Function:
        """The single relation ``R = OR_t R_t`` (ablation baseline)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.relations[transition]
        return result

    def image_monolithic(self, states: Function,
                         relation: Optional[Function] = None) -> Function:
        """Image through the monolithic relation."""
        if relation is None:
            relation = self.monolithic_relation()
        next_states = states.and_exists(relation, self.current)
        return next_states.rename(self._to_current)

    # ------------------------------------------------------------------
    # Disjunctive partitioning
    # ------------------------------------------------------------------

    def _sparse_relation(self, transition: str) -> Tuple[Function,
                                                         Tuple[str, ...]]:
        """``E_t AND forced-next-values`` plus the changed variables.

        Identity clauses for untouched variables are omitted — the
        relational product leaves unquantified variables alone, so the
        identity is implicit.  (Safe-net transition functions force
        constants, Eq. 2/6, hence a plain cube over next literals.)
        """
        spec = self.encoding.transition_spec(transition)
        forced = {self._to_next[name]: value for name, value in spec.force}
        relation = self.enabling[transition] & cube(self.bdd, forced)
        return relation, tuple(spec.quantify)

    def _identity_clause(self, name: str) -> Function:
        """``next(v) <-> v`` for padding clustered sparse relations."""
        cached = self._identities.get(name)
        if cached is None:
            cached = variable(self.bdd, self._to_next[name]).iff(
                variable(self.bdd, name))
            self._identities[name] = cached
        return cached

    def sparse_relations(self) -> Dict[str, Tuple[Function,
                                                  Tuple[str, ...]]]:
        """All sparse per-transition relations, built once and cached."""
        if self._sparse is None:
            self._sparse = {t: self._sparse_relation(t)
                            for t in self.net.transitions}
        return self._sparse

    def transition_support(self, transition: str) -> FrozenSet[int]:
        """Variable indices a transition's relation touches: the sparse
        relation's support plus its changed variables' indices.  Indices
        are stable across reordering, so the cache never goes stale."""
        cached = self._supports.get(transition)
        if cached is None:
            relation, changed = self.sparse_relations()[transition]
            support = set(relation.support())
            support.update(self.bdd.var_index(v) for v in changed)
            cached = frozenset(support)
            self._supports[transition] = cached
        return cached

    def partitions(self, cluster_size: ClusterSize = 1
                   ) -> List[RelationPartition]:
        """The disjunctive partition at a given clustering granularity.

        ``cluster_size = 1`` keeps one sparse relation per transition;
        larger values OR together up to ``cluster_size`` support-adjacent
        relations per block (fewer relational products per image, slightly
        larger relation BDDs).  ``cluster_size = "auto"`` sizes clusters
        greedily instead: walking the support-sorted order, a transition
        joins the open cluster while it shares at least
        ``AUTO_MIN_OVERLAP`` of the smaller support set, the estimated
        merged relation stays under ``AUTO_NODE_BUDGET`` nodes, and the
        cluster holds fewer than ``AUTO_MAX_CLUSTER`` members — so tight
        families (philosophers rings) get wide blocks while loosely
        coupled ones fall back towards per-transition blocks.

        Within a cluster every member is padded with identity clauses for
        the variables its siblings change, so the block's image is exactly
        the union of its members' images.  Partitions are returned
        support-sorted (top of the variable order first) and cached per
        granularity; cached metadata is refreshed by the manager's
        reorder hook whenever the variable order changes.
        """
        key: ClusterSize = validate_cluster_size(cluster_size)
        cached = self._partitions.get(key)
        if cached is not None:
            return cached
        if key == "auto":
            groups = self._auto_clusters()
        else:
            groups = cluster_by_support(self.net.transitions,
                                        self.transition_support,
                                        self.bdd.level_of_var, key)
        partitions = [self._build_partition(group) for group in groups]
        partitions.sort(key=lambda p: p.top_level)
        self._partitions[key] = partitions
        return partitions

    def _auto_clusters(self) -> List[List[str]]:
        """Greedy support-overlap clustering over the sorted order."""
        sparse = self.sparse_relations()
        return cluster_greedily(
            self.net.transitions, self.transition_support,
            self.bdd.level_of_var,
            lambda transition: sparse[transition][0].size())

    def _build_partition(self, group: Sequence[str]) -> RelationPartition:
        """Pad, merge and annotate one cluster of sparse relations."""
        sparse = self.sparse_relations()
        changed: set = set()
        for transition in group:
            changed.update(sparse[transition][1])
        relation = false(self.bdd)
        for transition in group:
            member, own_changed = sparse[transition]
            for name in sorted(changed - set(own_changed)):
                member = member & self._identity_clause(name)
            relation = relation | member
        quantify = tuple(sorted(
            changed, key=lambda name: self.bdd.level_of_var(name)))
        support = relation.support()
        top = min((self.bdd.level_of_var(v) for v in support),
                  default=self.bdd.num_vars)
        label = group[0] if len(group) == 1 \
            else f"{group[0]}..{group[-1]}"
        return RelationPartition(
            label=label, transitions=tuple(group), relation=relation,
            quantify=quantify,
            rename={self._to_next[name]: name for name in quantify},
            support=support, top_level=top)

    # ------------------------------------------------------------------
    # Reorder subscription
    # ------------------------------------------------------------------

    def _on_reorder(self, bdd: BDD) -> None:
        self.refresh_partitions()

    def refresh_partitions(self) -> None:
        """Recompute the order-derived metadata of every cached partition.

        Relations themselves are :class:`Function` handles and survive
        reordering untouched; what goes stale is the metadata derived
        from variable *levels* — each block's ``top_level``, the
        level-sorted ``quantify`` tuple and the support-sorted order of
        the block list.  Called from the manager's reorder hook after
        every sifting pass, ``swap_levels`` or ``set_order``.
        """
        for key, blocks in self._partitions.items():
            refreshed = [self._refresh_metadata(block) for block in blocks]
            refreshed.sort(key=lambda p: p.top_level)
            self._partitions[key] = refreshed

    def _refresh_metadata(self, block: RelationPartition
                          ) -> RelationPartition:
        quantify = tuple(sorted(
            block.quantify, key=lambda name: self.bdd.level_of_var(name)))
        top = min((self.bdd.level_of_var(v) for v in block.support),
                  default=self.bdd.num_vars)
        return RelationPartition(
            label=block.label, transitions=block.transitions,
            relation=block.relation, quantify=quantify,
            rename=block.rename, support=block.support, top_level=top)

    def image_partition(self, states: Function,
                        partition: RelationPartition) -> Function:
        """Successors through one partition block.

        Only the block's changed variables are quantified and renamed;
        every other variable flows through the fused relational product
        unchanged.
        """
        if not partition.quantify:
            # Nothing changes: the image is the enabled subset itself.
            return states & partition.relation
        next_states = states.and_exists(partition.relation,
                                        partition.quantify)
        return next_states.rename(partition.rename)

    def image_partitioned(self, states: Function,
                          partitions: Sequence[RelationPartition]
                          ) -> Function:
        """Image as the union of per-block relational products (Eq. 3)."""
        result = false(self.bdd)
        for partition in partitions:
            result = result | self.image_partition(states, partition)
        return result

    def image_chained(self, states: Function,
                      partitions: Sequence[RelationPartition],
                      reached: Optional[Function] = None) -> Function:
        """One chained sweep: apply blocks in support-sorted order,
        feeding each block the states accumulated so far.

        Returns ``states`` together with every state discovered during the
        sweep — a superset of the one-step image, still contained in the
        reachable closure, which is what makes chained fixpoints converge
        in (often far) fewer iterations.

        When ``reached`` is given, each block's input is first simplified
        by the Coudert-Madre restriction against the care set
        ``accumulated | ~reached`` (everything outside it is already
        reached and not in the working set).  The simplified set may pick
        up already-reached states — their successors are reachable, so
        the sweep stays inside the closure — while its BDD is usually
        much smaller than the accumulated frontier's.
        """
        current = states
        not_reached = None if reached is None else ~reached
        for partition in partitions:
            work = current
            if not_reached is not None:
                work = current.restrict(current | not_reached)
            current = current | self.image_partition(work, partition)
        return current

    def count_markings(self, states: Function) -> int:
        """Number of markings represented (over current variables)."""
        return states.satcount(len(self.current))
