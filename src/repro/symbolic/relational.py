"""Relational image computation with partitioned transition relations.

The fast path in :class:`~repro.symbolic.transition.SymbolicNet` never
renames variables.  This module implements the relation-based alternative
the paper describes: transition relations ``R_t(P, Q)`` over interleaved
current/next variables, images by fused relational product
(:meth:`~repro.bdd.manager.BDD.and_exists`) and a monotone rename back to
current variables.

All clustering, partition caching, reorder refresh and sweep algorithms
live in the shared generic layer
(:class:`~repro.symbolic.partition.PartitionedNet`); this module
supplies only the boolean-encoding specifics — how a sparse relation
BDD is built, how a block's image is computed, and the Coudert-Madre
frontier restriction.  Three relation granularities feed the pluggable
image engines of :mod:`repro.symbolic.partition`:

* **monolithic** — one relation ``R = OR_t R_t`` (the textbook baseline;
  the relation BDD itself is often huge),
* **partitioned** — the disjunctive partition of Eq. 3, kept per
  transition or clustered by support into groups of a configurable size
  (small relations, one relational product each),
* **chained** — the same partition applied in support-sorted order while
  accumulating successors, so states discovered by an early partition are
  expanded by later ones within the same sweep.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..bdd import BDD, Function, cube, false, true, variable
from ..encoding.characteristic import initial_function
from ..encoding.scheme import Encoding
from .partition import (AUTO_MAX_CLUSTER, AUTO_MIN_OVERLAP,
                        AUTO_NODE_BUDGET, ClusterSize, PartitionedNet,
                        RelationPartition)

__all__ = ["RelationPartition", "RelationalNet", "AUTO_MIN_OVERLAP",
           "AUTO_NODE_BUDGET", "AUTO_MAX_CLUSTER",
           "SIMPLIFY_MIN_FRONTIER_NODES"]

# Frontier-size gate for the Coudert-Madre restriction
# (``simplify_frontier``): per BENCH_relprod.json the restriction only
# pays off once frontier BDDs are big enough that sibling substitution
# can actually remove structure — on tiny frontiers the restrict walk
# plus the extra ``frontier | ~reached`` care set cost more than they
# save.  Frontiers below this node count are passed through unchanged.
SIMPLIFY_MIN_FRONTIER_NODES = 128


def _next_name(name: str) -> str:
    return name + "'"


class RelationalNet(PartitionedNet):
    """Partitioned transition relations over interleaved variables.

    Parameters
    ----------
    encoding:
        Any :class:`~repro.encoding.scheme.Encoding` of a safe net.
    bdd:
        An empty BDD manager to use; created fresh when omitted.
    auto_reorder:
        Enable threshold-triggered sifting at traversal safe points,
        exactly as :class:`~repro.symbolic.transition.SymbolicNet` does.
        Sifting on a relational manager is *grouped*: each current/next
        variable pair moves as one block (``sift_groups``), which keeps
        the partition rename maps order-monotone; cached partition
        metadata is refreshed (and ``"auto"`` partitions reclustered)
        through a reorder hook after every pass.
    reorder_threshold:
        Live-node threshold for the automatic sifting trigger.
    """

    def __init__(self, encoding: Encoding, bdd: Optional[BDD] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        if bdd is None:
            bdd = BDD(auto_reorder=auto_reorder,
                      reorder_threshold=reorder_threshold)
        if bdd.num_vars:
            raise ValueError("RelationalNet needs a fresh BDD manager")
        bdd.configure_reorder(auto_reorder, reorder_threshold)
        self.encoding = encoding
        self.net = encoding.net
        self.bdd = bdd
        self.manager = bdd
        # Interleave current and next variables so that renaming either
        # way is order-monotone.
        for name in encoding.variables:
            bdd.add_var(name)
            bdd.add_var(_next_name(name))
        self.current = tuple(encoding.variables)
        self.next = tuple(_next_name(v) for v in self.current)
        self._to_next = dict(zip(self.current, self.next))
        self._to_current = dict(zip(self.next, self.current))
        # Reordering must keep each (current, next) pair adjacent so the
        # per-partition renames stay monotone; subscribe so cached
        # partition metadata follows every order change.
        bdd.sift_groups = [
            (bdd.var_index(name), bdd.var_index(self._to_next[name]))
            for name in self.current]
        self._init_partition_layer()
        self._subscribe_reorder()

        # Rebuild place/enabling functions over this manager.
        self.places: Dict[str, Function] = {}
        memo: Dict[str, Function] = {}

        def place_fn(place: str) -> Function:
            cached = memo.get(place)
            if cached is not None:
                return cached
            func = cube(bdd, dict(encoding.owner_code(place)))
            for partner in encoding.partners(place):
                func = func & ~place_fn(partner)
            memo[place] = func
            return func

        for place in self.net.places:
            self.places[place] = place_fn(place)
        self.enabling: Dict[str, Function] = {}
        for transition in self.net.transitions:
            func = true(bdd)
            for place in sorted(self.net.preset(transition)):
                func = func & self.places[place]
            self.enabling[transition] = func

        self.initial: Function = initial_function(encoding, bdd)
        self._relations: Optional[Dict[str, Function]] = None
        self._identities: Dict[str, Function] = {}
        self._monolithic: Optional[Function] = None
        # Sparse relations and their supports are order-independent
        # (supports are variable-index sets); they are built once and
        # reused by every partitions() call, so ablation sweeps that
        # construct one engine per granularity stop re-walking the
        # relation BDDs.
        self._sparse: Optional[Dict[str, Tuple[Function,
                                               Tuple[str, ...]]]] = None
        self._supports: Dict[str, FrozenSet[int]] = {}

    @property
    def relations(self) -> Dict[str, Function]:
        """The identity-complete per-transition relations ``R_t(P, Q)``.

        Built lazily: the partitioned/chained engines work from the much
        smaller sparse relations and never need these, so constructing
        them eagerly would pay exactly the cost those engines avoid.
        """
        if self._relations is None:
            self._relations = {t: self._build_relation(t)
                               for t in self.net.transitions}
        return self._relations

    def _build_relation(self, transition: str) -> Function:
        """``R_t(P, Q) = E_t(P) and AND_i (q_i <-> delta_i(P, t))``."""
        spec = self.encoding.transition_spec(transition)
        forced = dict(spec.force)
        relation = self.enabling[transition]
        for name in self.current:
            next_var = variable(self.bdd, self._to_next[name])
            if name in forced:
                target = (next_var if forced[name]
                          else ~next_var)
            else:
                target = next_var.iff(variable(self.bdd, name))
            relation = relation & target
        return relation

    def image(self, states: Function, transition: str) -> Function:
        """Successors via relational product and monotone rename."""
        next_states = states.and_exists(self.relations[transition],
                                        self.current)
        return next_states.rename(self._to_current)

    def image_all(self, states: Function) -> Function:
        """Successors under the full disjunctive partition (Eq. 3)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.image(states, transition)
        return result

    def monolithic_relation(self) -> Function:
        """The single relation ``R = OR_t R_t`` (ablation baseline),
        built once and cached."""
        if self._monolithic is None:
            result = false(self.bdd)
            for transition in self.net.transitions:
                result = result | self.relations[transition]
            self._monolithic = result
        return self._monolithic

    def image_monolithic(self, states: Function,
                         relation: Optional[Function] = None) -> Function:
        """Image through the monolithic relation."""
        if relation is None:
            relation = self.monolithic_relation()
        next_states = states.and_exists(relation, self.current)
        return next_states.rename(self._to_current)

    # ------------------------------------------------------------------
    # Sparse relations (the partition layer's raw material)
    # ------------------------------------------------------------------

    def _sparse_relation(self, transition: str) -> Tuple[Function,
                                                         Tuple[str, ...]]:
        """``E_t AND forced-next-values`` plus the changed variables.

        Identity clauses for untouched variables are omitted — the
        relational product leaves unquantified variables alone, so the
        identity is implicit.  (Safe-net transition functions force
        constants, Eq. 2/6, hence a plain cube over next literals.)
        """
        spec = self.encoding.transition_spec(transition)
        forced = {self._to_next[name]: value for name, value in spec.force}
        relation = self.enabling[transition] & cube(self.bdd, forced)
        return relation, tuple(spec.quantify)

    def _identity_clause(self, name: str) -> Function:
        """``next(v) <-> v`` for padding clustered sparse relations."""
        cached = self._identities.get(name)
        if cached is None:
            cached = variable(self.bdd, self._to_next[name]).iff(
                variable(self.bdd, name))
            self._identities[name] = cached
        return cached

    def sparse_relations(self) -> Dict[str, Tuple[Function,
                                                  Tuple[str, ...]]]:
        """All sparse per-transition relations, built once and cached."""
        if self._sparse is None:
            self._sparse = {t: self._sparse_relation(t)
                            for t in self.net.transitions}
        return self._sparse

    def transition_support(self, transition: str) -> FrozenSet[int]:
        """Variable indices a transition's relation touches: the sparse
        relation's support plus its changed variables' indices.  Indices
        are stable across reordering, so the cache never goes stale."""
        cached = self._supports.get(transition)
        if cached is None:
            relation, changed = self.sparse_relations()[transition]
            support = set(relation.support())
            support.update(self.bdd.var_index(v) for v in changed)
            cached = frozenset(support)
            self._supports[transition] = cached
        return cached

    # ------------------------------------------------------------------
    # Partition-layer hooks (see PartitionedNet)
    # ------------------------------------------------------------------

    def _relation_size(self, transition: str) -> int:
        return self.sparse_relations()[transition][0].size()

    def block_size(self, block: "RelationPartition") -> int:
        return block.relation.size()

    def _make_block(self, group: Tuple[str, ...],
                    label: str) -> RelationPartition:
        """Pad, merge and annotate one cluster of sparse relations."""
        sparse = self.sparse_relations()
        changed: set = set()
        for transition in group:
            changed.update(sparse[transition][1])
        relation = false(self.bdd)
        for transition in group:
            member, own_changed = sparse[transition]
            for name in sorted(changed - set(own_changed)):
                member = member & self._identity_clause(name)
            relation = relation | member
        quantify = tuple(sorted(
            changed, key=lambda name: self.bdd.level_of_var(name)))
        support = relation.support()
        top = min((self.bdd.level_of_var(v) for v in support),
                  default=self.bdd.num_vars)
        return RelationPartition(
            label=label, transitions=group, relation=relation,
            quantify=quantify,
            rename={self._to_next[name]: name for name in quantify},
            support=support, top_level=top)

    def _refresh_block(self, block: RelationPartition) -> RelationPartition:
        quantify = tuple(sorted(
            block.quantify, key=lambda name: self.bdd.level_of_var(name)))
        top = min((self.bdd.level_of_var(v) for v in block.support),
                  default=self.bdd.num_vars)
        return RelationPartition(
            label=block.label, transitions=block.transitions,
            relation=block.relation, quantify=quantify,
            rename=block.rename, support=block.support, top_level=top)

    def image_partition(self, states: Function,
                        partition: RelationPartition) -> Function:
        """Successors through one partition block.

        Only the block's changed variables are quantified and renamed;
        every other variable flows through the fused relational product
        unchanged.
        """
        if not partition.quantify:
            # Nothing changes: the image is the enabled subset itself.
            return states & partition.relation
        next_states = states.and_exists(partition.relation,
                                        partition.quantify)
        return next_states.rename(partition.rename)

    # -- state-set algebra over Function handles -----------------------

    def state_empty(self) -> Function:
        return false(self.bdd)

    def state_union(self, a: Function, b: Function) -> Function:
        return a | b

    def state_diff(self, a: Function, b: Function) -> Function:
        return a - b

    def state_is_empty(self, states: Function) -> bool:
        return states.is_zero()

    def narrow_frontier(self, frontier: Function,
                        reached: Function) -> Function:
        """Size-gated Coudert-Madre restriction of the frontier.

        Restricts once per step against the care set ``frontier |
        ~reached`` (everything else is already reached and not in the
        working set).  The simplified set may pick up already-reached
        states — their successors are reachable, so traversal stays
        inside the closure — while its BDD is usually much smaller.
        Frontiers below :data:`SIMPLIFY_MIN_FRONTIER_NODES` nodes are
        returned unchanged: on tiny frontiers the restriction costs more
        than it saves (see ``BENCH_relprod.json``).
        """
        if frontier.size() < SIMPLIFY_MIN_FRONTIER_NODES:
            return frontier
        return frontier.restrict(frontier | ~reached)

    def count_markings(self, states: Function) -> int:
        """Number of markings represented (over current variables)."""
        return states.satcount(len(self.current))
