"""Relational image computation with partitioned transition relations.

The fast path in :class:`~repro.symbolic.transition.SymbolicNet` never
renames variables.  This module implements the relation-based alternative
the paper describes: transition relations ``R_t(P, Q)`` over interleaved
current/next variables, images by fused relational product
(:meth:`~repro.bdd.manager.BDD.and_exists`) and a monotone rename back to
current variables.

Three relation granularities are provided, feeding the pluggable image
engines in :mod:`repro.symbolic.traversal`:

* **monolithic** — one relation ``R = OR_t R_t`` (the textbook baseline;
  the relation BDD itself is often huge),
* **partitioned** — the disjunctive partition of Eq. 3, kept per
  transition or clustered by support into groups of a configurable size
  (small relations, one relational product each),
* **chained** — the same partition applied in support-sorted order while
  accumulating successors, so states discovered by an early partition are
  expanded by later ones within the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bdd import BDD, Function, cube, false, true, variable
from ..encoding.characteristic import initial_function
from ..encoding.scheme import Encoding
from .transition import cluster_by_support


@dataclass(frozen=True, eq=False)
class RelationPartition:
    """One block of a disjunctively partitioned transition relation.

    Partition relations are *sparse*: they constrain only the variables
    their transitions actually touch — the enabling support plus the
    changed variables' next-state literals — with identity clauses added
    only for variables changed by a sibling transition in the same
    cluster.  Untouched variables pass through the relational product
    untouched, which keeps each block's support (and therefore the
    quantification depth of ``and_exists``) local instead of spanning
    the entire variable order the way the monolithic relation does.
    """

    label: str
    transitions: Tuple[str, ...]
    relation: Function
    quantify: Tuple[str, ...]
    rename: Dict[str, str]
    support: FrozenSet[int]
    top_level: int

    def __repr__(self) -> str:
        return (f"<RelationPartition {self.label!r} "
                f"transitions={len(self.transitions)} "
                f"quantify={len(self.quantify)} "
                f"nodes={self.relation.size()}>")


def _next_name(name: str) -> str:
    return name + "'"


class RelationalNet:
    """Partitioned transition relations over interleaved variables."""

    def __init__(self, encoding: Encoding, bdd: Optional[BDD] = None) -> None:
        if bdd is None:
            bdd = BDD()
        if bdd.num_vars:
            raise ValueError("RelationalNet needs a fresh BDD manager")
        self.encoding = encoding
        self.net = encoding.net
        self.bdd = bdd
        # Interleave current and next variables so that renaming either
        # way is order-monotone.
        for name in encoding.variables:
            bdd.add_var(name)
            bdd.add_var(_next_name(name))
        self.current = tuple(encoding.variables)
        self.next = tuple(_next_name(v) for v in self.current)
        self._to_next = dict(zip(self.current, self.next))
        self._to_current = dict(zip(self.next, self.current))

        # Rebuild place/enabling functions over this manager.
        self.places: Dict[str, Function] = {}
        memo: Dict[str, Function] = {}

        def place_fn(place: str) -> Function:
            cached = memo.get(place)
            if cached is not None:
                return cached
            func = cube(bdd, dict(encoding.owner_code(place)))
            for partner in encoding.partners(place):
                func = func & ~place_fn(partner)
            memo[place] = func
            return func

        for place in self.net.places:
            self.places[place] = place_fn(place)
        self.enabling: Dict[str, Function] = {}
        for transition in self.net.transitions:
            func = true(bdd)
            for place in sorted(self.net.preset(transition)):
                func = func & self.places[place]
            self.enabling[transition] = func

        self.initial: Function = initial_function(encoding, bdd)
        self._relations: Optional[Dict[str, Function]] = None
        self._partitions: Dict[int, List[RelationPartition]] = {}
        self._identities: Dict[str, Function] = {}

    @property
    def relations(self) -> Dict[str, Function]:
        """The identity-complete per-transition relations ``R_t(P, Q)``.

        Built lazily: the partitioned/chained engines work from the much
        smaller sparse relations and never need these, so constructing
        them eagerly would pay exactly the cost those engines avoid.
        """
        if self._relations is None:
            self._relations = {t: self._build_relation(t)
                               for t in self.net.transitions}
        return self._relations

    def _build_relation(self, transition: str) -> Function:
        """``R_t(P, Q) = E_t(P) and AND_i (q_i <-> delta_i(P, t))``."""
        spec = self.encoding.transition_spec(transition)
        forced = dict(spec.force)
        relation = self.enabling[transition]
        for name in self.current:
            next_var = variable(self.bdd, self._to_next[name])
            if name in forced:
                target = (next_var if forced[name]
                          else ~next_var)
            else:
                target = next_var.iff(variable(self.bdd, name))
            relation = relation & target
        return relation

    def image(self, states: Function, transition: str) -> Function:
        """Successors via relational product and monotone rename."""
        next_states = states.and_exists(self.relations[transition],
                                        self.current)
        return next_states.rename(self._to_current)

    def image_all(self, states: Function) -> Function:
        """Successors under the full disjunctive partition (Eq. 3)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.image(states, transition)
        return result

    def monolithic_relation(self) -> Function:
        """The single relation ``R = OR_t R_t`` (ablation baseline)."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.relations[transition]
        return result

    def image_monolithic(self, states: Function,
                         relation: Optional[Function] = None) -> Function:
        """Image through the monolithic relation."""
        if relation is None:
            relation = self.monolithic_relation()
        next_states = states.and_exists(relation, self.current)
        return next_states.rename(self._to_current)

    # ------------------------------------------------------------------
    # Disjunctive partitioning
    # ------------------------------------------------------------------

    def _sparse_relation(self, transition: str) -> Tuple[Function,
                                                         Tuple[str, ...]]:
        """``E_t AND forced-next-values`` plus the changed variables.

        Identity clauses for untouched variables are omitted — the
        relational product leaves unquantified variables alone, so the
        identity is implicit.  (Safe-net transition functions force
        constants, Eq. 2/6, hence a plain cube over next literals.)
        """
        spec = self.encoding.transition_spec(transition)
        forced = {self._to_next[name]: value for name, value in spec.force}
        relation = self.enabling[transition] & cube(self.bdd, forced)
        return relation, tuple(spec.quantify)

    def _identity_clause(self, name: str) -> Function:
        """``next(v) <-> v`` for padding clustered sparse relations."""
        cached = self._identities.get(name)
        if cached is None:
            cached = variable(self.bdd, self._to_next[name]).iff(
                variable(self.bdd, name))
            self._identities[name] = cached
        return cached

    def partitions(self, cluster_size: int = 1) -> List[RelationPartition]:
        """The disjunctive partition at a given clustering granularity.

        ``cluster_size = 1`` keeps one sparse relation per transition;
        larger values OR together up to ``cluster_size`` support-adjacent
        relations per block (fewer relational products per image, slightly
        larger relation BDDs).  Within a cluster every member is padded
        with identity clauses for the variables its siblings change, so
        the block's image is exactly the union of its members' images.
        Partitions are returned support-sorted (top of the variable order
        first) and cached per granularity.
        """
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1: {cluster_size}")
        cached = self._partitions.get(cluster_size)
        if cached is not None:
            return cached

        sparse = {t: self._sparse_relation(t) for t in self.net.transitions}

        def support_of(transition: str) -> FrozenSet[int]:
            relation, changed = sparse[transition]
            support = set(relation.support())
            support.update(self.bdd.var_index(v) for v in changed)
            return frozenset(support)

        groups = cluster_by_support(self.net.transitions, support_of,
                                    self.bdd.level_of_var, cluster_size)
        partitions: List[RelationPartition] = []
        for group in groups:
            changed: set = set()
            for transition in group:
                changed.update(sparse[transition][1])
            relation = false(self.bdd)
            for transition in group:
                member, own_changed = sparse[transition]
                for name in sorted(changed - set(own_changed)):
                    member = member & self._identity_clause(name)
                relation = relation | member
            quantify = tuple(sorted(
                changed, key=lambda name: self.bdd.level_of_var(name)))
            support = relation.support()
            top = min((self.bdd.level_of_var(v) for v in support),
                      default=self.bdd.num_vars)
            label = group[0] if len(group) == 1 \
                else f"{group[0]}..{group[-1]}"
            partitions.append(RelationPartition(
                label=label, transitions=tuple(group), relation=relation,
                quantify=quantify,
                rename={self._to_next[name]: name for name in quantify},
                support=support, top_level=top))
        self._partitions[cluster_size] = partitions
        return partitions

    def image_partition(self, states: Function,
                        partition: RelationPartition) -> Function:
        """Successors through one partition block.

        Only the block's changed variables are quantified and renamed;
        every other variable flows through the fused relational product
        unchanged.
        """
        if not partition.quantify:
            # Nothing changes: the image is the enabled subset itself.
            return states & partition.relation
        next_states = states.and_exists(partition.relation,
                                        partition.quantify)
        return next_states.rename(partition.rename)

    def image_partitioned(self, states: Function,
                          partitions: Sequence[RelationPartition]
                          ) -> Function:
        """Image as the union of per-block relational products (Eq. 3)."""
        result = false(self.bdd)
        for partition in partitions:
            result = result | self.image_partition(states, partition)
        return result

    def image_chained(self, states: Function,
                      partitions: Sequence[RelationPartition]) -> Function:
        """One chained sweep: apply blocks in support-sorted order,
        feeding each block the states accumulated so far.

        Returns ``states`` together with every state discovered during the
        sweep — a superset of the one-step image, still contained in the
        reachable closure, which is what makes chained fixpoints converge
        in (often far) fewer iterations.
        """
        current = states
        for partition in partitions:
            current = current | self.image_partition(current, partition)
        return current

    def count_markings(self, states: Function) -> int:
        """Number of markings represented (over current variables)."""
        return states.satcount(len(self.current))
