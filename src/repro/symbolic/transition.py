"""Symbolic transition machinery (Section 5.3).

:class:`SymbolicNet` binds an encoding to a BDD manager and provides the
per-transition image and preimage operators.  For safe nets the
transition function of every variable is either the identity or a
constant (Eqs. 2 and 6), so the forward image needs no variable renaming:

    img_t(M) = exists(changed vars, M & E_t) & forced-values-cube

and the preimage is a plain cofactor:

    pre_t(M') = E_t & M'|forced-values

The Section 5.2 toggle-based firing — valid on the reachable set of a
safe net — is also provided (``image_toggle``), as is a relational
cross-check implementation in :mod:`repro.symbolic.relational`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..bdd import BDD, Function, cube, false
from ..encoding.characteristic import (declare_variables,
                                       enabling_functions, initial_function,
                                       place_functions)
from ..encoding.scheme import Encoding, TransitionSpec
from ..petri.marking import Marking


def cluster_by_support(items: Sequence[str],
                       support_of: Callable[[str], FrozenSet[int]],
                       level_of: Callable[[int], int],
                       cluster_size: int) -> List[List[str]]:
    """Group ``items`` into support-sorted clusters of bounded size.

    Items are ordered by the top (smallest) level of their support — the
    standard heuristic for disjunctively partitioned relations: partitions
    whose support sits high in the variable order are applied first, so a
    chained sweep pushes information down the order.  Consecutive items in
    that order (which therefore have nearby support) are merged until a
    cluster holds ``cluster_size`` items.  ``cluster_size <= 1`` yields the
    per-item partition.
    """

    bottom = 1 << 60  # below every real level; supportless items sort last

    def top_level(item: str) -> int:
        support = support_of(item)
        if not support:
            return bottom
        return min(level_of(var) for var in support)

    order = sorted(items, key=lambda item: (top_level(item), item))
    if cluster_size <= 1:
        return [[item] for item in order]
    return [list(order[i:i + cluster_size])
            for i in range(0, len(order), cluster_size)]


def validate_cluster_size(cluster_size) -> "int | str":
    """Validate a clustering granularity: a positive int or ``"auto"``.

    The single source of truth for every engine factory and
    ``partitions()`` implementation (BDD and ZDD alike), so
    misconfigurations fail fast with one consistent message.  Returns
    the value unchanged on success.
    """
    if cluster_size == "auto":
        return "auto"
    if (not isinstance(cluster_size, int) or isinstance(cluster_size, bool)
            or cluster_size < 1):
        raise ValueError(
            f"invalid cluster_size {cluster_size!r}: expected a positive "
            f"integer or 'auto'")
    return cluster_size


# Greedy auto-clustering knobs (``cluster_size="auto"``): a candidate is
# merged into the open cluster while it shares at least this fraction of
# the smaller support, the merged relation estimate stays under the node
# budget, and the cluster stays below the hard member cap.  Shared by
# the BDD and ZDD relational nets.
AUTO_MIN_OVERLAP = 0.5
AUTO_NODE_BUDGET = 600
AUTO_MAX_CLUSTER = 16


def cluster_greedily(items: Sequence[str],
                     support_of: Callable[[str], FrozenSet[int]],
                     level_of: Callable[[int], int],
                     size_of: Callable[[str], int]) -> List[List[str]]:
    """Greedy support-overlap clustering over the support-sorted order.

    The adaptive alternative to a fixed ``cluster_size``: walking the
    :func:`cluster_by_support` order, an item joins the open cluster
    while it shares at least ``AUTO_MIN_OVERLAP`` of the smaller support
    set, the summed relation size estimate (``size_of``, e.g. decision-
    diagram nodes) stays under ``AUTO_NODE_BUDGET``, and the cluster
    holds fewer than ``AUTO_MAX_CLUSTER`` members — so tight families
    (philosophers rings) get wide blocks while loosely coupled ones fall
    back towards per-item blocks.
    """
    order = [item for group in
             cluster_by_support(items, support_of, level_of, 1)
             for item in group]
    groups: List[List[str]] = []
    open_group: List[str] = []
    open_support: set = set()
    open_size = 0
    for item in order:
        support = support_of(item)
        size = size_of(item)
        if open_group:
            smaller = min(len(support), len(open_support)) or 1
            overlap = len(open_support & support) / smaller
            if (overlap >= AUTO_MIN_OVERLAP
                    and open_size + size <= AUTO_NODE_BUDGET
                    and len(open_group) < AUTO_MAX_CLUSTER):
                open_group.append(item)
                open_support |= support
                open_size += size
                continue
            groups.append(open_group)
        open_group = [item]
        open_support = set(support)
        open_size = size
    if open_group:
        groups.append(open_group)
    return groups


class SymbolicNet:
    """An encoded Petri net ready for symbolic traversal.

    Parameters
    ----------
    encoding:
        Any :class:`~repro.encoding.scheme.Encoding` of a safe net.
    bdd:
        An empty BDD manager to use; created fresh when omitted.
    auto_reorder:
        Enable threshold-triggered sifting at safe points (the paper
        applies dynamic reordering during traversal).
    """

    def __init__(self, encoding: Encoding, bdd: Optional[BDD] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        if bdd is None:
            bdd = BDD(auto_reorder=auto_reorder,
                      reorder_threshold=reorder_threshold)
        if bdd.num_vars:
            raise ValueError("SymbolicNet needs a fresh BDD manager")
        self.encoding = encoding
        self.net = encoding.net
        self.bdd = bdd
        declare_variables(encoding, bdd)
        self.places: Dict[str, Function] = place_functions(encoding, bdd)
        self.enabling: Dict[str, Function] = enabling_functions(
            encoding, bdd, self.places)
        self.specs: Dict[str, TransitionSpec] = {
            t: encoding.transition_spec(t) for t in self.net.transitions}
        self._force_cubes: Dict[str, Function] = {
            t: cube(bdd, dict(spec.force))
            for t, spec in self.specs.items()}
        self.initial: Function = initial_function(encoding, bdd)

    # ------------------------------------------------------------------

    def image(self, states: Function, transition: str) -> Function:
        """Successors of ``states`` under one transition (Eq. 2/6)."""
        spec = self.specs[transition]
        enabled = states & self.enabling[transition]
        if enabled.is_zero():
            return enabled
        if not spec.quantify:
            return enabled
        shifted = enabled.exists(spec.quantify)
        return shifted & self._force_cubes[transition]

    def image_toggle(self, states: Function, transition: str) -> Function:
        """Toggle-based firing (Section 5.2).

        Equivalent to :meth:`image` on states satisfying the encoding
        invariant of a safe net (every component's variables spell the
        code of its marked place, and output places of the sparse part
        are empty).
        """
        spec = self.specs[transition]
        enabled = states & self.enabling[transition]
        if enabled.is_zero() or not spec.toggle:
            return enabled
        return enabled.toggle(spec.toggle)

    def preimage(self, states: Function, transition: str) -> Function:
        """Predecessors of ``states`` under one transition."""
        spec = self.specs[transition]
        restricted = states.cofactor(dict(spec.force))
        return restricted & self.enabling[transition]

    def image_all(self, states: Function, use_toggle: bool = False,
                  order: Optional[Sequence[str]] = None) -> Function:
        """Successors under all transitions (disjunctively partitioned,
        Eq. 3), fired in ``order`` (net order by default)."""
        fire = self.image_toggle if use_toggle else self.image
        result = false(self.bdd)
        for transition in (self.net.transitions if order is None else order):
            result = result | fire(states, transition)
        return result

    # ------------------------------------------------------------------
    # Support-sorted partitioning of the functional image
    # ------------------------------------------------------------------

    def transition_support(self, transition: str) -> FrozenSet[int]:
        """Variables a transition's image depends on: the enabling
        function's support plus the variables it quantifies away."""
        support = set(self.enabling[transition].support())
        spec = self.specs[transition]
        support.update(self.bdd.var_index(v) for v in spec.quantify)
        return frozenset(support)

    def support_sorted_transitions(self) -> List[str]:
        """Transitions ordered by the top level of their support."""
        return [t for cluster in self.transition_clusters(1)
                for t in cluster]

    def transition_clusters(self, cluster_size: int = 1) -> List[List[str]]:
        """Support-sorted transition clusters of at most ``cluster_size``."""
        return cluster_by_support(self.net.transitions,
                                  self.transition_support,
                                  self.bdd.level_of_var, cluster_size)

    def image_cluster(self, states: Function, transitions: Sequence[str],
                      use_toggle: bool = False) -> Function:
        """Successors under one cluster of transitions."""
        return self.image_all(states, use_toggle=use_toggle,
                              order=transitions)

    def preimage_all(self, states: Function) -> Function:
        """Predecessors under all transitions."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.preimage(states, transition)
        return result

    # ------------------------------------------------------------------

    def deadlock_condition(self) -> Function:
        """States enabling no transition."""
        some_enabled = false(self.bdd)
        for transition in self.net.transitions:
            some_enabled = some_enabled | self.enabling[transition]
        return ~some_enabled

    def count_markings(self, states: Function) -> int:
        """Number of markings a state set represents.

        Encodings are injective on markings and images only ever produce
        canonical code assignments, so this is a plain ``satcount``.
        """
        return states.satcount(self.encoding.num_variables)

    def markings_of(self, states: Function) -> List[Marking]:
        """Decode a state set into explicit markings (small sets only)."""
        variables = self.encoding.variables
        result = []
        for assignment in self.bdd.iter_minterms(
                states.node, [self.bdd.var_index(v) for v in variables]):
            named = {self.bdd.var_name(v): val
                     for v, val in assignment.items()}
            result.append(self.encoding.assignment_to_marking(named))
        return result

    def marking_function(self, marking: Marking) -> Function:
        """The minterm of one marking."""
        return cube(self.bdd,
                    self.encoding.marking_to_assignment(marking))

    def __repr__(self) -> str:
        return (f"<SymbolicNet {self.net.name!r} "
                f"encoding={type(self.encoding).__name__} "
                f"vars={self.encoding.num_variables}>")
