"""Symbolic transition machinery (Section 5.3).

:class:`SymbolicNet` binds an encoding to a BDD manager and provides the
per-transition image and preimage operators.  For safe nets the
transition function of every variable is either the identity or a
constant (Eqs. 2 and 6), so the forward image needs no variable renaming:

    img_t(M) = exists(changed vars, M & E_t) & forced-values-cube

and the preimage is a plain cofactor:

    pre_t(M') = E_t & M'|forced-values

The Section 5.2 toggle-based firing — valid on the reachable set of a
safe net — is also provided (``image_toggle``), as is a relational
cross-check implementation in :mod:`repro.symbolic.relational`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..bdd import BDD, Function, cube, false
from ..encoding.characteristic import (declare_variables,
                                       enabling_functions, initial_function,
                                       place_functions)
from ..encoding.scheme import Encoding, TransitionSpec
from ..petri.marking import Marking
# Clustering policies live in the shared generic relational layer;
# re-exported here because this module is their historical home (the
# functional path's support-sorted chaining uses them too).
from .partition import (AUTO_MAX_CLUSTER, AUTO_MIN_OVERLAP,  # noqa: F401
                        AUTO_NODE_BUDGET, cluster_by_support,
                        cluster_greedily, validate_cluster_size)


class SymbolicNet:
    """An encoded Petri net ready for symbolic traversal.

    Parameters
    ----------
    encoding:
        Any :class:`~repro.encoding.scheme.Encoding` of a safe net.
    bdd:
        An empty BDD manager to use; created fresh when omitted.
    auto_reorder:
        Enable threshold-triggered sifting at safe points (the paper
        applies dynamic reordering during traversal).
    """

    def __init__(self, encoding: Encoding, bdd: Optional[BDD] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        if bdd is None:
            bdd = BDD(auto_reorder=auto_reorder,
                      reorder_threshold=reorder_threshold)
        if bdd.num_vars:
            raise ValueError("SymbolicNet needs a fresh BDD manager")
        self.encoding = encoding
        self.net = encoding.net
        self.bdd = bdd
        declare_variables(encoding, bdd)
        self.places: Dict[str, Function] = place_functions(encoding, bdd)
        self.enabling: Dict[str, Function] = enabling_functions(
            encoding, bdd, self.places)
        self.specs: Dict[str, TransitionSpec] = {
            t: encoding.transition_spec(t) for t in self.net.transitions}
        self._force_cubes: Dict[str, Function] = {
            t: cube(bdd, dict(spec.force))
            for t, spec in self.specs.items()}
        self.initial: Function = initial_function(encoding, bdd)

    # ------------------------------------------------------------------

    def image(self, states: Function, transition: str) -> Function:
        """Successors of ``states`` under one transition (Eq. 2/6)."""
        spec = self.specs[transition]
        enabled = states & self.enabling[transition]
        if enabled.is_zero():
            return enabled
        if not spec.quantify:
            return enabled
        shifted = enabled.exists(spec.quantify)
        return shifted & self._force_cubes[transition]

    def image_toggle(self, states: Function, transition: str) -> Function:
        """Toggle-based firing (Section 5.2).

        Equivalent to :meth:`image` on states satisfying the encoding
        invariant of a safe net (every component's variables spell the
        code of its marked place, and output places of the sparse part
        are empty).
        """
        spec = self.specs[transition]
        enabled = states & self.enabling[transition]
        if enabled.is_zero() or not spec.toggle:
            return enabled
        return enabled.toggle(spec.toggle)

    def preimage(self, states: Function, transition: str) -> Function:
        """Predecessors of ``states`` under one transition."""
        spec = self.specs[transition]
        restricted = states.cofactor(dict(spec.force))
        return restricted & self.enabling[transition]

    def image_all(self, states: Function, use_toggle: bool = False,
                  order: Optional[Sequence[str]] = None) -> Function:
        """Successors under all transitions (disjunctively partitioned,
        Eq. 3), fired in ``order`` (net order by default)."""
        fire = self.image_toggle if use_toggle else self.image
        result = false(self.bdd)
        for transition in (self.net.transitions if order is None else order):
            result = result | fire(states, transition)
        return result

    # ------------------------------------------------------------------
    # Support-sorted partitioning of the functional image
    # ------------------------------------------------------------------

    def transition_support(self, transition: str) -> FrozenSet[int]:
        """Variables a transition's image depends on: the enabling
        function's support plus the variables it quantifies away."""
        support = set(self.enabling[transition].support())
        spec = self.specs[transition]
        support.update(self.bdd.var_index(v) for v in spec.quantify)
        return frozenset(support)

    def support_sorted_transitions(self) -> List[str]:
        """Transitions ordered by the top level of their support."""
        return [t for cluster in self.transition_clusters(1)
                for t in cluster]

    def transition_clusters(self, cluster_size: int = 1) -> List[List[str]]:
        """Support-sorted transition clusters of at most ``cluster_size``."""
        return cluster_by_support(self.net.transitions,
                                  self.transition_support,
                                  self.bdd.level_of_var, cluster_size)

    def image_cluster(self, states: Function, transitions: Sequence[str],
                      use_toggle: bool = False) -> Function:
        """Successors under one cluster of transitions."""
        return self.image_all(states, use_toggle=use_toggle,
                              order=transitions)

    def preimage_all(self, states: Function) -> Function:
        """Predecessors under all transitions."""
        result = false(self.bdd)
        for transition in self.net.transitions:
            result = result | self.preimage(states, transition)
        return result

    # ------------------------------------------------------------------

    def deadlock_condition(self) -> Function:
        """States enabling no transition."""
        some_enabled = false(self.bdd)
        for transition in self.net.transitions:
            some_enabled = some_enabled | self.enabling[transition]
        return ~some_enabled

    def count_markings(self, states: Function) -> int:
        """Number of markings a state set represents.

        Encodings are injective on markings and images only ever produce
        canonical code assignments, so this is a plain ``satcount``.
        """
        return states.satcount(self.encoding.num_variables)

    def markings_of(self, states: Function) -> List[Marking]:
        """Decode a state set into explicit markings (small sets only)."""
        variables = self.encoding.variables
        result = []
        for assignment in self.bdd.iter_minterms(
                states.node, [self.bdd.var_index(v) for v in variables]):
            named = {self.bdd.var_name(v): val
                     for v, val in assignment.items()}
            result.append(self.encoding.assignment_to_marking(named))
        return result

    def marking_function(self, marking: Marking) -> Function:
        """The minterm of one marking."""
        return cube(self.bdd,
                    self.encoding.marking_to_assignment(marking))

    def __repr__(self) -> str:
        return (f"<SymbolicNet {self.net.name!r} "
                f"encoding={type(self.encoding).__name__} "
                f"vars={self.encoding.num_variables}>")
