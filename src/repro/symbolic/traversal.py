"""Symbolic breadth-first reachability traversal (Section 2.3 / 5).

Computes the least fixpoint ``reached = mu X . M0 | img(X)`` with the
frontier (new-states-only) strategy, collecting the statistics the
paper's tables report: variable count, final BDD size, peak live nodes
and wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..bdd import Function
from .transition import SymbolicNet


@dataclass
class TraversalResult:
    """Statistics of one symbolic reachability computation."""

    reachable: Function
    marking_count: int
    iterations: int
    variable_count: int
    final_bdd_nodes: int
    peak_live_nodes: int
    seconds: float
    reorder_count: int

    def __repr__(self) -> str:
        return (f"<TraversalResult markings={self.marking_count} "
                f"V={self.variable_count} BDD={self.final_bdd_nodes} "
                f"iters={self.iterations} t={self.seconds:.3f}s>")


def traverse(symnet: SymbolicNet, use_toggle: bool = False,
             max_iterations: Optional[int] = None,
             on_iteration: Optional[Callable[[int, Function], None]] = None,
             strategy: str = "bfs",
             simplify_frontier: bool = False) -> TraversalResult:
    """Reachability fixpoint over the encoded state space.

    Parameters
    ----------
    symnet:
        The symbolic net to traverse.
    use_toggle:
        Fire transitions with the Section 5.2 toggle operator instead of
        quantify-and-force (equivalent on safe nets, usually faster).
    max_iterations:
        Abort (raising ``RuntimeError``) beyond this many frontier steps.
    on_iteration:
        Observer called as ``on_iteration(step, reached)`` after each
        step — handy for tracing and tests.
    strategy:
        ``"bfs"`` computes one synchronous step per iteration (the
        textbook frontier fixpoint).  ``"chaining"`` accumulates each
        transition's successors into the working set before firing the
        next — markings discovered early in the sweep are expanded in
        the same iteration, which typically cuts the iteration count
        sharply on pipeline-shaped nets.
    simplify_frontier:
        Replace the frontier by its Coudert-Madre restriction against
        ``frontier | ~reached`` before computing images.  The simplified
        set may include already-reached states (harmless) but often has
        a much smaller BDD.
    """
    if strategy not in ("bfs", "chaining"):
        raise ValueError(f"unknown traversal strategy {strategy!r}")
    bdd = symnet.bdd
    start = time.perf_counter()
    reached = symnet.initial
    frontier = symnet.initial
    iterations = 0
    while not frontier.is_zero():
        if max_iterations is not None and iterations >= max_iterations:
            raise RuntimeError(
                f"traversal exceeded {max_iterations} iterations")
        work = frontier
        if simplify_frontier:
            work = frontier.restrict(frontier | ~reached)
        if strategy == "chaining":
            fire = symnet.image_toggle if use_toggle else symnet.image
            current = work
            for transition in symnet.net.transitions:
                current = current | fire(current, transition)
            successors = current
        else:
            successors = symnet.image_all(work, use_toggle=use_toggle)
        frontier = successors - reached
        reached = reached | successors
        iterations += 1
        if on_iteration is not None:
            on_iteration(iterations, reached)
        # Safe point: collect garbage / dynamic reordering, as the paper
        # does at each traversal iteration.
        bdd.checkpoint()
    seconds = time.perf_counter() - start
    return TraversalResult(
        reachable=reached,
        marking_count=symnet.count_markings(reached),
        iterations=iterations,
        variable_count=symnet.encoding.num_variables,
        final_bdd_nodes=reached.size(),
        peak_live_nodes=bdd.peak_live_nodes,
        seconds=seconds,
        reorder_count=bdd.reorder_count)


def reachable_set(symnet: SymbolicNet, **kwargs) -> Function:
    """Just the reachable-state BDD."""
    return traverse(symnet, **kwargs).reachable


def traverse_relational(relnet, monolithic: bool = False):
    """BFS fixpoint through a :class:`RelationalNet` (cross-check path).

    Returns a :class:`TraversalResult` (peak statistics refer to the
    relational manager, which also stores the relations themselves).
    """
    bdd = relnet.bdd
    start = time.perf_counter()
    relation = relnet.monolithic_relation() if monolithic else None
    reached = relnet.initial
    frontier = relnet.initial
    iterations = 0
    while not frontier.is_zero():
        if monolithic:
            successors = relnet.image_monolithic(frontier, relation)
        else:
            successors = relnet.image_all(frontier)
        frontier = successors - reached
        reached = reached | successors
        iterations += 1
        bdd.checkpoint()
    seconds = time.perf_counter() - start
    return TraversalResult(
        reachable=reached,
        marking_count=relnet.count_markings(reached),
        iterations=iterations,
        variable_count=len(relnet.current),
        final_bdd_nodes=reached.size(),
        peak_live_nodes=bdd.peak_live_nodes,
        seconds=seconds,
        reorder_count=bdd.reorder_count)
