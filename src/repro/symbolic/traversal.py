"""Symbolic breadth-first reachability traversal (Section 2.3 / 5).

Computes the least fixpoint ``reached = mu X . M0 | img(X)`` with the
frontier (new-states-only) strategy, collecting the statistics the
paper's tables report: variable count, final BDD size, peak live nodes
and wall-clock time.

Relation-based traversal goes through the pluggable image engines of
the shared relational layer (:mod:`repro.symbolic.partition` — the same
classes drive the ZDD relational nets):

* ``monolithic`` — one relational product against ``R = OR_t R_t``,
* ``partitioned`` — one product per support-sorted partition block,
* ``chained`` — blocks applied in support-sorted order with frontier
  accumulation and ``diff``-based working-set narrowing, typically
  reaching the fixpoint in far fewer (and individually cheaper)
  iterations.

All three compute the same reachable set; see
:func:`repro.symbolic.traversal.traverse_relational` and
``benchmarks/bench_relprod.py`` for the cost comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..bdd import Function
from .partition import (IMAGE_ENGINES, ChainedImageEngine,  # noqa: F401
                        ImageEngine, MonolithicImageEngine,
                        PartitionedImageEngine, make_image_engine)
from .relational import RelationalNet
from .transition import SymbolicNet


class TraversalLimitError(RuntimeError):
    """A fixpoint overran ``max_iterations``.

    Subclasses ``RuntimeError`` for compatibility with callers that
    caught the old generic exception, but carries the partial state the
    old message discarded: ``reached`` and ``frontier`` are the sets at
    the moment of the overrun (a :class:`~repro.bdd.Function` on the
    BDD paths, a raw node id on the ZDD path, ``None`` when no state
    applies) and ``iterations`` the completed step count.  The partial
    reached set is a genuine under-approximation — every marking in it
    is reachable — so callers can checkpoint it or report progress
    instead of losing the work.
    """

    def __init__(self, message: str, *, reached=None, frontier=None,
                 iterations: int = 0) -> None:
        super().__init__(message)
        self.reached = reached
        self.frontier = frontier
        self.iterations = iterations


@dataclass
class TraversalResult:
    """Statistics of one symbolic reachability computation.

    .. deprecated::
        Superseded by :class:`repro.analysis.result.AnalysisResult`;
        new code should run :func:`repro.analysis.analyze` and consume
        the unified schema.
    """

    reachable: Function
    marking_count: int
    iterations: int
    variable_count: int
    final_bdd_nodes: int
    peak_live_nodes: int
    seconds: float
    reorder_count: int
    engine: str = "functional"

    def __repr__(self) -> str:
        return (f"<TraversalResult markings={self.marking_count} "
                f"V={self.variable_count} BDD={self.final_bdd_nodes} "
                f"iters={self.iterations} t={self.seconds:.3f}s>")


def traverse(symnet: SymbolicNet, use_toggle: bool = False,
             max_iterations: Optional[int] = None,
             on_iteration: Optional[Callable[[int, Function], None]] = None,
             strategy: str = "bfs",
             chain_order: str = "net",
             simplify_frontier: bool = False) -> TraversalResult:
    """Reachability fixpoint over the encoded state space.

    Parameters
    ----------
    symnet:
        The symbolic net to traverse.
    use_toggle:
        Fire transitions with the Section 5.2 toggle operator instead of
        quantify-and-force (equivalent on safe nets, usually faster).
    max_iterations:
        Abort beyond this many frontier steps with a
        :class:`TraversalLimitError` carrying the partial reached set.
    on_iteration:
        Observer called as ``on_iteration(step, reached)`` after each
        step — handy for tracing and tests.
    strategy:
        ``"bfs"`` computes one synchronous step per iteration (the
        textbook frontier fixpoint).  ``"chaining"`` accumulates each
        transition's successors into the working set before firing the
        next — markings discovered early in the sweep are expanded in
        the same iteration, which typically cuts the iteration count
        sharply on pipeline-shaped nets.
    chain_order:
        Sweep order for ``"chaining"``: ``"net"`` fires transitions in
        net declaration order, ``"support"`` in support-sorted order
        (top of the variable order first), which chains discoveries down
        the order within one sweep.
    simplify_frontier:
        Replace the frontier by its Coudert-Madre restriction against
        ``frontier | ~reached`` before computing images.  The simplified
        set may include already-reached states (harmless) but often has
        a much smaller BDD.
    """
    if strategy not in ("bfs", "chaining"):
        raise ValueError(f"unknown traversal strategy {strategy!r}")
    if chain_order not in ("net", "support"):
        raise ValueError(f"unknown chain order {chain_order!r}")
    bdd = symnet.bdd
    start = time.perf_counter()
    reached = symnet.initial
    frontier = symnet.initial
    iterations = 0
    sweep_order = (symnet.support_sorted_transitions()
                   if chain_order == "support"
                   else list(symnet.net.transitions))
    while not frontier.is_zero():
        if max_iterations is not None and iterations >= max_iterations:
            raise TraversalLimitError(
                f"traversal exceeded {max_iterations} iterations",
                reached=reached, frontier=frontier, iterations=iterations)
        work = frontier
        if simplify_frontier:
            work = frontier.restrict(frontier | ~reached)
        if strategy == "chaining":
            fire = symnet.image_toggle if use_toggle else symnet.image
            current = work
            for transition in sweep_order:
                current = current | fire(current, transition)
            successors = current
        else:
            successors = symnet.image_all(work, use_toggle=use_toggle)
        frontier = successors - reached
        reached = reached | successors
        iterations += 1
        if on_iteration is not None:
            on_iteration(iterations, reached)
        # Safe point: collect garbage / dynamic reordering, as the paper
        # does at each traversal iteration.
        bdd.checkpoint()
    seconds = time.perf_counter() - start
    return TraversalResult(
        reachable=reached,
        marking_count=symnet.count_markings(reached),
        iterations=iterations,
        variable_count=symnet.encoding.num_variables,
        final_bdd_nodes=reached.size(),
        peak_live_nodes=bdd.peak_live_nodes,
        seconds=seconds,
        reorder_count=bdd.reorder_count)


def reachable_set(symnet: SymbolicNet, **kwargs) -> Function:
    """Just the reachable-state BDD."""
    return traverse(symnet, **kwargs).reachable


def traverse_relational(relnet: RelationalNet, monolithic: bool = False,
                        engine: "Optional[str | ImageEngine]" = None,
                        cluster_size: "int | str" = 1,
                        simplify_frontier: bool = False,
                        max_iterations: Optional[int] = None
                        ) -> TraversalResult:
    """Reachability fixpoint through a :class:`RelationalNet`.

    .. deprecated::
        Thin legacy shim kept for existing callers and tests; new code
        should run ``repro.analysis.analyze(net,
        AnalysisSpec(form="relational", ...))``, which wraps the same
        engines behind the unified spec/result schema.

    Parameters
    ----------
    relnet:
        The relation-based symbolic net.  Construct it with
        ``auto_reorder=True`` to sift (in reorder-safe current/next
        pair groups) at the per-iteration safe points, exactly as the
        functional path does.
    monolithic:
        Backwards-compatible alias for ``engine="monolithic"``.
    engine:
        ``"monolithic"``, ``"partitioned"`` (default) or ``"chained"`` —
        see :func:`repro.symbolic.partition.make_image_engine`.  An
        :class:`ImageEngine` instance is also accepted (in which case
        ``cluster_size`` and ``simplify_frontier`` are ignored —
        configure the instance).
    cluster_size:
        Partition clustering granularity for the partitioned and chained
        engines: a positive integer (1 = one relation per transition) or
        ``"auto"`` for adaptive support-overlap clustering.
    simplify_frontier:
        Apply the size-gated Coudert-Madre restriction against
        ``frontier | ~reached`` before each image (once per chained
        sweep).

    Returns a :class:`TraversalResult` (peak statistics refer to the
    relational manager, which also stores the relations themselves).
    """
    if engine is None:
        engine = "monolithic" if monolithic else "partitioned"
    if isinstance(engine, ImageEngine):
        image_engine = engine
    else:
        image_engine = make_image_engine(relnet, engine, cluster_size,
                                         simplify_frontier)
    bdd = relnet.bdd
    start = time.perf_counter()
    reached = relnet.initial
    frontier = relnet.initial
    iterations = 0
    while not frontier.is_zero():
        if max_iterations is not None and iterations >= max_iterations:
            raise TraversalLimitError(
                f"traversal exceeded {max_iterations} iterations",
                reached=reached, frontier=frontier, iterations=iterations)
        reached, frontier = image_engine.advance(reached, frontier)
        iterations += 1
        bdd.checkpoint()
    seconds = time.perf_counter() - start
    return TraversalResult(
        reachable=reached,
        marking_count=relnet.count_markings(reached),
        iterations=iterations,
        variable_count=len(relnet.current),
        final_bdd_nodes=reached.size(),
        peak_live_nodes=bdd.peak_live_nodes,
        seconds=seconds,
        reorder_count=bdd.reorder_count,
        engine=f"relational/{image_engine.name}")
