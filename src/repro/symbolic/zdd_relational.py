"""Partitioned transition relations for the sparse-ZDD engine.

The BDD engines got their PR 1-2 wins from the relational-product form:
sparse per-transition relations over paired current/next variables,
clustered by support, applied through a fused ``and_exists``.  This
module ports that machinery to the token-set encoding of
:class:`~repro.symbolic.zdd_traversal.ZddNet`, where a marking is the
*set of marked places* and firing is set algebra instead of boolean
algebra.

It is deliberately a *thin shim*: every piece of clustering, partition
caching, reorder refresh/reclustering and sweep logic lives once in
:class:`~repro.symbolic.partition.PartitionedNet` (shared with the BDD
side); this file contributes only the token-set encoding specifics —
what a sparse relation *is* and how one block's image is computed.

The element universe interleaves current and next elements — place ``p``
at index ``2i``, its primed copy ``p'`` at ``2i + 1`` — so that renaming
next elements back to current ones is order-monotone.  A transition's
sparse relation is the single set ``I ∪ O'`` from the token-set
encoding: the input tokens it consumes (current elements) and the output
tokens it produces (next elements).  Its image through a family ``S``
is the fused three-step pipeline

1. ``supset(S, I)`` — the markings holding every input token,
2. ``and_exists(matched, {O'}, I)`` — strip the consumed tokens and
   deposit the produced ones in one cached pass,
3. ``rename(·, O' -> O)`` — monotone rename back to current elements,
   shared across a whole partition block.

Untouched places flow through every step unchanged — the implicit
identity that keeps the relations sparse, exactly as in
:class:`~repro.symbolic.relational.RelationalNet`.  With the shared
:class:`~repro.dd.manager.DDManager` kernel the ZDD manager now
reference-counts, garbage-collects and dynamically reorders; the net
pins its long-lived families (initial marking, sparse relations) with
``ref`` and sifts in current/next pair groups so rename maps stay
order-monotone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bdd.zdd import EMPTY, ZDD
from ..dd.manager import DEFAULT_REORDER_GROWTH
from ..petri.marking import Marking
from ..petri.net import PetriNet
from .partition import ClusterSize, PartitionedNet, cluster_by_support

__all__ = ["ZddSparseRelation", "ZddRelationPartition", "ZddStateOps",
           "ZddRelationalNet", "ClusterSize"]


def _next_name(name: str) -> str:
    return name + "'"


@dataclass(frozen=True, eq=False)
class ZddSparseRelation:
    """One transition's sparse relation in the token-set encoding.

    ``consume`` holds the current-element indices of the preset (the
    enabling tokens, also the quantified elements), ``produce`` the
    singleton family ``{O'}`` of next elements deposited by the firing,
    and ``relation`` the joined set ``{I ∪ O'}`` — the per-transition
    block of the disjunctive partition.
    """

    transition: str
    consume: Tuple[int, ...]
    produce: int
    relation: int
    support: FrozenSet[int]

    def __repr__(self) -> str:
        return (f"<ZddSparseRelation {self.transition!r} "
                f"consume={len(self.consume)} "
                f"support={len(self.support)}>")


@dataclass(frozen=True, eq=False)
class ZddRelationPartition:
    """One support-clustered block of sparse ZDD relations.

    Images are computed member-wise through the fused pipeline and
    renamed back to current elements once per block through ``rename``
    (the map covering every member's produced places).
    """

    label: str
    transitions: Tuple[str, ...]
    members: Tuple[ZddSparseRelation, ...]
    rename: Dict[int, int]
    support: FrozenSet[int]
    top_level: int

    def __repr__(self) -> str:
        return (f"<ZddRelationPartition {self.label!r} "
                f"transitions={len(self.transitions)} "
                f"rename={len(self.rename)}>")


class ZddStateOps:
    """State-set algebra over raw ZDD node ids (the ``state_*`` hooks
    of the generic layer), shared by :class:`ZddRelationalNet` and the
    classic :class:`~repro.symbolic.zdd_traversal.ZddNet`."""

    zdd: ZDD

    def state_empty(self) -> int:
        return EMPTY

    def state_union(self, a: int, b: int) -> int:
        return self.zdd.union(a, b)

    def state_diff(self, a: int, b: int) -> int:
        return self.zdd.diff(a, b)

    def state_is_empty(self, states: int) -> bool:
        return states == EMPTY

    def count_markings(self, states: int) -> int:
        """Number of markings in a family over current elements."""
        return self.zdd.count(states)

    def markings_of(self, states: int) -> List[Marking]:
        """Decode a family over current elements into markings."""
        return [Marking(sorted(members))
                for members in self.zdd.iter_name_sets(states)]


class ZddRelationalNet(ZddStateOps, PartitionedNet):
    """A safe net bound to a paired-element ZDD manager.

    Parameters
    ----------
    net:
        A safe :class:`~repro.petri.net.PetriNet`.
    zdd:
        An empty ZDD manager to use; created fresh when omitted.  The
        manager is populated with ``2 |P|`` elements — place ``p`` at an
        even index, its next-state copy ``p'`` right below it.
    auto_reorder:
        Enable threshold-triggered sifting at traversal safe points —
        the same dynamic reordering the BDD relational net has had since
        PR 2, now served by the shared kernel.  Sifting is *grouped*:
        each current/next element pair moves as one block
        (``sift_groups``), which keeps the block rename maps
        order-monotone; cached partitions are refreshed (and ``"auto"``
        partitions reclustered) through the shared reorder hook.
    reorder_threshold:
        Live-node threshold for the automatic sifting trigger.
    """

    def __init__(self, net: PetriNet, zdd: Optional[ZDD] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        if zdd is None:
            zdd = ZDD(auto_reorder=auto_reorder,
                      reorder_threshold=reorder_threshold)
        if zdd.num_vars:
            raise ValueError("ZddRelationalNet needs a fresh ZDD manager")
        zdd.configure_reorder(auto_reorder, reorder_threshold,
                              growth=DEFAULT_REORDER_GROWTH)
        self.net = net
        self.zdd = zdd
        self.manager = zdd
        for place in net.places:
            zdd.add_var(place)
            zdd.add_var(_next_name(place))
        self.current = tuple(net.places)
        self._cur_index = {p: zdd.var_index(p) for p in net.places}
        self._next_index = {p: zdd.var_index(_next_name(p))
                            for p in net.places}
        # Reordering must keep each (current, next) pair adjacent so the
        # block renames stay monotone.
        zdd.sift_groups = [(self._cur_index[p], self._next_index[p])
                           for p in net.places]
        self._init_partition_layer()
        self._subscribe_reorder()
        # Long-lived families are pinned against garbage collection: the
        # net owns them for its whole lifetime.
        self.initial = zdd.ref(zdd.singleton(net.initial_marking.support))
        self._sparse: Dict[str, ZddSparseRelation] = {
            t: self._build_sparse(t) for t in net.transitions}
        self._monolithic: Optional[ZddRelationPartition] = None

    def _build_sparse(self, transition: str) -> ZddSparseRelation:
        zdd = self.zdd
        pre = self.net.preset(transition)
        post = self.net.postset(transition)
        consume = tuple(sorted(self._cur_index[p] for p in pre))
        produce = zdd.ref(zdd.singleton(self._next_index[p] for p in post))
        relation = zdd.ref(zdd.product(zdd.singleton(consume), produce))
        support = frozenset(
            index for place in pre | post
            for index in (self._cur_index[place], self._next_index[place]))
        return ZddSparseRelation(
            transition=transition, consume=consume, produce=produce,
            relation=relation, support=support)

    def sparse_relations(self) -> Dict[str, ZddSparseRelation]:
        """All sparse per-transition relations (built at construction)."""
        return self._sparse

    def transition_support(self, transition: str) -> FrozenSet[int]:
        """Element indices a transition touches: its current/next pairs.
        Indices are stable across reordering, so this never goes stale."""
        return self._sparse[transition].support

    # ------------------------------------------------------------------
    # Partition-layer hooks (see PartitionedNet)
    # ------------------------------------------------------------------

    def _relation_size(self, transition: str) -> int:
        return self.zdd.size(self._sparse[transition].relation)

    def block_size(self, block: "ZddRelationPartition") -> int:
        return sum(self.zdd.size(member.relation)
                   for member in block.members)

    def _make_block(self, group: Tuple[str, ...],
                    label: str) -> ZddRelationPartition:
        members = tuple(self._sparse[t] for t in group)
        support: set = set()
        produced: set = set()
        for member in members:
            support.update(member.support)
            produced.update(self.net.postset(member.transition))
        rename = {self._next_index[p]: self._cur_index[p]
                  for p in sorted(produced)}
        top = min((self.zdd.level_of_var(index) for index in support),
                  default=self.zdd.num_vars)
        return ZddRelationPartition(
            label=label, transitions=group, members=members,
            rename=rename, support=frozenset(support), top_level=top)

    def _refresh_block(self, block: ZddRelationPartition
                       ) -> ZddRelationPartition:
        top = min((self.zdd.level_of_var(index) for index in block.support),
                  default=self.zdd.num_vars)
        return ZddRelationPartition(
            label=block.label, transitions=block.transitions,
            members=block.members, rename=block.rename,
            support=block.support, top_level=top)

    def monolithic_block(self) -> ZddRelationPartition:
        """All transitions merged into one block (the textbook baseline:
        one sweep position, one shared rename)."""
        if self._monolithic is None:
            order = [t for group in
                     cluster_by_support(self.net.transitions,
                                        self.transition_support,
                                        self.zdd.level_of_var, 1)
                     for t in group]
            self._monolithic = self._build_partition(order)
        return self._monolithic

    # ------------------------------------------------------------------
    # Images
    # ------------------------------------------------------------------

    def image_partition(self, states: int,
                        block: ZddRelationPartition) -> int:
        """Successors through one partition block.

        Member-wise fused pipeline (containment filter, strip-and-
        deposit product, accumulate), then a single monotone rename of
        the produced next elements back to their current labels.
        Untouched places ride through every step unchanged.
        """
        zdd = self.zdd
        accumulated = EMPTY
        for member in block.members:
            matched = zdd.supset(states, member.consume)
            if matched == EMPTY:
                continue
            accumulated = zdd.union(
                accumulated,
                zdd.and_exists(matched, member.produce, member.consume))
        if accumulated == EMPTY:
            return EMPTY
        return zdd.rename(accumulated, block.rename)

    def image_monolithic(self, states: int) -> int:
        """Image through the single all-transitions block."""
        return self.image_partition(states, self.monolithic_block())

    def image_all(self, states: int) -> int:
        """Successor family under all transitions (per-transition
        blocks; reference implementation for tests)."""
        return self.image_partitioned(states, self.partitions(1))
