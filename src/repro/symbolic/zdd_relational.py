"""Partitioned transition relations for the sparse-ZDD engine.

The BDD engines got their PR 1-2 wins from the relational-product form:
sparse per-transition relations over paired current/next variables,
clustered by support, applied through a fused ``and_exists``.  This
module ports that machinery to the token-set encoding of
:class:`~repro.symbolic.zdd_traversal.ZddNet`, where a marking is the
*set of marked places* and firing is set algebra instead of boolean
algebra.

The element universe interleaves current and next elements — place ``p``
at index ``2i``, its primed copy ``p'`` at ``2i + 1`` — so that renaming
next elements back to current ones is order-monotone.  A transition's
sparse relation is the single set ``I ∪ O'`` from the token-set
encoding: the input tokens it consumes (current elements) and the output
tokens it produces (next elements).  Its image through a family ``S``
is the fused three-step pipeline

1. ``supset(S, I)`` — the markings holding every input token,
2. ``and_exists(matched, {O'}, I)`` — strip the consumed tokens and
   deposit the produced ones in one cached pass,
3. ``rename(·, O' -> O)`` — monotone rename back to current elements,
   shared across a whole partition block.

Untouched places flow through every step unchanged — the implicit
identity that keeps the relations sparse, exactly as in
:class:`~repro.symbolic.relational.RelationalNet`.  Blocks are clustered
by support (``cluster_size`` a positive integer or ``"auto"`` for greedy
support-overlap growth) and feed the pluggable image engines in
:mod:`repro.symbolic.zdd_traversal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..bdd.zdd import EMPTY, ZDD
from ..petri.marking import Marking
from ..petri.net import PetriNet
from .transition import (cluster_by_support, cluster_greedily,
                         validate_cluster_size)

ClusterSize = Union[int, str]


def _next_name(name: str) -> str:
    return name + "'"


@dataclass(frozen=True, eq=False)
class ZddSparseRelation:
    """One transition's sparse relation in the token-set encoding.

    ``consume`` holds the current-element indices of the preset (the
    enabling tokens, also the quantified elements), ``produce`` the
    singleton family ``{O'}`` of next elements deposited by the firing,
    and ``relation`` the joined set ``{I ∪ O'}`` — the per-transition
    block of the disjunctive partition.
    """

    transition: str
    consume: Tuple[int, ...]
    produce: int
    relation: int
    support: FrozenSet[int]

    def __repr__(self) -> str:
        return (f"<ZddSparseRelation {self.transition!r} "
                f"consume={len(self.consume)} "
                f"support={len(self.support)}>")


@dataclass(frozen=True, eq=False)
class ZddRelationPartition:
    """One support-clustered block of sparse ZDD relations.

    Images are computed member-wise through the fused pipeline and
    renamed back to current elements once per block through ``rename``
    (the map covering every member's produced places).
    """

    label: str
    transitions: Tuple[str, ...]
    members: Tuple[ZddSparseRelation, ...]
    rename: Dict[int, int]
    support: FrozenSet[int]
    top_level: int

    def __repr__(self) -> str:
        return (f"<ZddRelationPartition {self.label!r} "
                f"transitions={len(self.transitions)} "
                f"rename={len(self.rename)}>")


class ZddRelationalNet:
    """A safe net bound to a paired-element ZDD manager.

    Parameters
    ----------
    net:
        A safe :class:`~repro.petri.net.PetriNet`.
    zdd:
        An empty ZDD manager to use; created fresh when omitted.  The
        manager is populated with ``2 |P|`` elements — place ``p`` at an
        even index, its next-state copy ``p'`` right below it.
    """

    def __init__(self, net: PetriNet, zdd: Optional[ZDD] = None) -> None:
        if zdd is None:
            zdd = ZDD()
        if zdd.num_vars:
            raise ValueError("ZddRelationalNet needs a fresh ZDD manager")
        self.net = net
        self.zdd = zdd
        for place in net.places:
            zdd.add_var(place)
            zdd.add_var(_next_name(place))
        self.current = tuple(net.places)
        self._cur_index = {p: zdd.var_index(p) for p in net.places}
        self._next_index = {p: zdd.var_index(_next_name(p))
                            for p in net.places}
        self.initial = zdd.singleton(net.initial_marking.support)
        self._sparse: Dict[str, ZddSparseRelation] = {
            t: self._build_sparse(t) for t in net.transitions}
        self._partitions: Dict[ClusterSize, List[ZddRelationPartition]] = {}
        self._monolithic: Optional[ZddRelationPartition] = None

    def _build_sparse(self, transition: str) -> ZddSparseRelation:
        zdd = self.zdd
        pre = self.net.preset(transition)
        post = self.net.postset(transition)
        consume = tuple(sorted(self._cur_index[p] for p in pre))
        produce = zdd.singleton(self._next_index[p] for p in post)
        relation = zdd.product(zdd.singleton(consume), produce)
        support = frozenset(
            index for place in pre | post
            for index in (self._cur_index[place], self._next_index[place]))
        return ZddSparseRelation(
            transition=transition, consume=consume, produce=produce,
            relation=relation, support=support)

    def sparse_relations(self) -> Dict[str, ZddSparseRelation]:
        """All sparse per-transition relations (built at construction)."""
        return self._sparse

    def transition_support(self, transition: str) -> FrozenSet[int]:
        """Element indices a transition touches: its current/next pairs."""
        return self._sparse[transition].support

    # ------------------------------------------------------------------
    # Disjunctive partitioning
    # ------------------------------------------------------------------

    def partitions(self, cluster_size: ClusterSize = 1
                   ) -> List[ZddRelationPartition]:
        """The disjunctive partition at a given clustering granularity.

        ``cluster_size = 1`` keeps one sparse relation per transition;
        larger values merge up to ``cluster_size`` support-adjacent
        relations per block (one rename per block instead of one per
        transition, and a sweep order that chains discoveries down the
        element order).  ``cluster_size = "auto"`` grows clusters
        greedily by support overlap under a node budget, mirroring
        :meth:`repro.symbolic.relational.RelationalNet.partitions`.
        Blocks are returned support-sorted (top of the element order
        first) and cached per granularity — the element order is fixed,
        so the cache never goes stale.
        """
        key: ClusterSize = validate_cluster_size(cluster_size)
        cached = self._partitions.get(key)
        if cached is not None:
            return cached
        if key == "auto":
            groups = self._auto_clusters()
        else:
            groups = cluster_by_support(self.net.transitions,
                                        self.transition_support,
                                        lambda index: index, key)
        blocks = [self._build_partition(group) for group in groups]
        blocks.sort(key=lambda block: block.top_level)
        self._partitions[key] = blocks
        return blocks

    def _auto_clusters(self) -> List[List[str]]:
        """Greedy support-overlap clustering over the sorted order
        (shared policy with the BDD side, see ``cluster_greedily``)."""
        return cluster_greedily(
            self.net.transitions, self.transition_support,
            lambda index: index,
            lambda transition: self.zdd.size(
                self._sparse[transition].relation))

    def _build_partition(self, group: Sequence[str]
                         ) -> ZddRelationPartition:
        members = tuple(self._sparse[t] for t in group)
        support: set = set()
        produced: set = set()
        for member in members:
            support.update(member.support)
            produced.update(self.net.postset(member.transition))
        rename = {self._next_index[p]: self._cur_index[p]
                  for p in sorted(produced)}
        label = group[0] if len(group) == 1 else f"{group[0]}..{group[-1]}"
        return ZddRelationPartition(
            label=label, transitions=tuple(group), members=members,
            rename=rename, support=frozenset(support),
            top_level=min(support) if support else 2 * len(self.current))

    def monolithic_block(self) -> ZddRelationPartition:
        """All transitions merged into one block (the textbook baseline:
        one sweep position, one shared rename)."""
        if self._monolithic is None:
            order = [t for group in
                     cluster_by_support(self.net.transitions,
                                        self.transition_support,
                                        lambda index: index, 1)
                     for t in group]
            self._monolithic = self._build_partition(order)
        return self._monolithic

    # ------------------------------------------------------------------
    # Images
    # ------------------------------------------------------------------

    def image_partition(self, states: int,
                        block: ZddRelationPartition) -> int:
        """Successors through one partition block.

        Member-wise fused pipeline (containment filter, strip-and-
        deposit product, accumulate), then a single monotone rename of
        the produced next elements back to their current labels.
        Untouched places ride through every step unchanged.
        """
        zdd = self.zdd
        accumulated = EMPTY
        for member in block.members:
            matched = zdd.supset(states, member.consume)
            if matched == EMPTY:
                continue
            accumulated = zdd.union(
                accumulated,
                zdd.and_exists(matched, member.produce, member.consume))
        if accumulated == EMPTY:
            return EMPTY
        return zdd.rename(accumulated, block.rename)

    def image_monolithic(self, states: int) -> int:
        """Image through the single all-transitions block."""
        return self.image_partition(states, self.monolithic_block())

    def image_partitioned(self, states: int,
                          blocks: Sequence[ZddRelationPartition]) -> int:
        """Image as the union of per-block images (Eq. 3)."""
        result = EMPTY
        for block in blocks:
            result = self.zdd.union(result,
                                    self.image_partition(states, block))
        return result

    def image_chained(self, states: int,
                      blocks: Sequence[ZddRelationPartition]) -> int:
        """One chained sweep: apply blocks in support-sorted order,
        feeding each block the states accumulated so far.

        Returns ``states`` plus every state discovered during the sweep
        — a superset of the one-step image still inside the reachable
        closure, which is what lets chained fixpoints converge in far
        fewer iterations.
        """
        current = states
        for block in blocks:
            current = self.zdd.union(
                current, self.image_partition(current, block))
        return current

    def image_all(self, states: int) -> int:
        """Successor family under all transitions (per-transition
        blocks; reference implementation for tests)."""
        return self.image_partitioned(states, self.partitions(1))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def count_markings(self, states: int) -> int:
        """Number of markings in a family over current elements."""
        return self.zdd.count(states)

    def markings_of(self, states: int) -> List[Marking]:
        """Decode a family over current elements into markings."""
        return [Marking(sorted(members))
                for members in self.zdd.iter_name_sets(states)]
