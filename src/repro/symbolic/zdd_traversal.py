"""Sparse reachability on Zero-Suppressed BDDs (Yoneda et al., Table 4).

The baseline the paper compares against in Table 4 represents each
marking as the *set of marked places* in a ZDD (one element per place —
the sparse encoding, but in a structure that charges nothing for absent
places).  Two image computations are available behind a pluggable
engine, selected through :func:`traverse_zdd`:

* ``classic`` — the original per-transition rewrite: firing a transition
  on a family is a chain of element operations (``subset1`` over every
  input place, ``change`` over self-loops and outputs), one pass per
  place per transition.
* ``monolithic | partitioned | chained`` — the relational-product form
  over :class:`~repro.symbolic.zdd_relational.ZddRelationalNet`: sparse
  ``I ∪ O'`` relations on paired current/next elements, support-based
  clustering, and per-block images through the fused
  ``supset``/``and_exists``/``rename`` pipeline.  These are the
  *generic* engines of :mod:`repro.symbolic.partition` — the same
  classes that drive the BDD relational net — so ``chained`` sweeps
  blocks in support order with ``diff``-narrowed working sets,
  converging in a fraction of the iterations.

The traversal itself is the same BFS frontier fixpoint as the BDD
engine, with the same per-iteration safe point: the manager (now built
on the shared :class:`~repro.dd.manager.DDManager` kernel) collects
garbage and dynamically reorders there when ``auto_reorder`` is set on
the net.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..bdd.zdd import ZDD
from ..dd.manager import DEFAULT_REORDER_GROWTH
from ..petri.marking import Marking
from ..petri.net import PetriNet
from .parallel import ParallelPartitionedImageEngine
from .partition import (ChainedImageEngine, ImageEngine,
                        MonolithicImageEngine, PartitionedImageEngine,
                        validate_cluster_size)
from .zdd_relational import ZddRelationalNet, ZddStateOps

ZDD_IMAGE_ENGINES = ("classic", "monolithic", "partitioned", "chained",
                     "partitioned-mp")


@dataclass
class ZddTraversalResult:
    """Statistics of a sparse-ZDD reachability computation.

    .. deprecated::
        Superseded by :class:`repro.analysis.result.AnalysisResult`;
        new code should run :func:`repro.analysis.analyze` and consume
        the unified schema.

    ``peak_live_nodes`` mirrors the BDD result's memory column (peak
    unique-table occupancy, sampled at the per-iteration safe points).
    ``reorder_count`` counts the sifting passes triggered during the
    fixpoint — 0 unless the net was built with ``auto_reorder=True``.
    """

    zdd: ZDD
    reachable: int
    marking_count: int
    iterations: int
    variable_count: int
    final_zdd_nodes: int
    seconds: float
    engine: str = "zdd/classic"
    peak_live_nodes: int = 0
    reorder_count: int = 0

    def __repr__(self) -> str:
        return (f"<ZddTraversalResult markings={self.marking_count} "
                f"V={self.variable_count} ZDD={self.final_zdd_nodes} "
                f"iters={self.iterations} t={self.seconds:.3f}s>")


class ZddNet(ZddStateOps):
    """A safe net bound to a ZDD manager (one element per place).

    This is the *classic* per-transition engine; the relational form
    lives in :class:`~repro.symbolic.zdd_relational.ZddRelationalNet`.

    ``auto_reorder`` enables threshold-triggered sifting at the
    traversal safe points (elements sift individually — the classic
    engine has no rename maps to keep monotone).  The ZDD sessions also
    arm the kernel's growth-based trigger: a safe point sifts when the
    live-node count has doubled since the last reorder, so a diagram
    that grows fast reorders early instead of waiting for one absolute
    threshold.
    """

    def __init__(self, net: PetriNet, zdd: Optional[ZDD] = None,
                 auto_reorder: bool = False,
                 reorder_threshold: int = 50_000) -> None:
        if zdd is None:
            zdd = ZDD(auto_reorder=auto_reorder,
                      reorder_threshold=reorder_threshold)
        if zdd.num_vars:
            raise ValueError("ZddNet needs a fresh ZDD manager")
        zdd.configure_reorder(auto_reorder, reorder_threshold,
                              growth=DEFAULT_REORDER_GROWTH)
        self.net = net
        self.zdd = zdd
        for place in net.places:
            zdd.add_var(place)
        self._moves: Dict[str, Tuple[List[str], List[str], List[str]]] = {}
        for transition in net.transitions:
            pre = net.preset(transition)
            post = net.postset(transition)
            self._moves[transition] = (
                sorted(pre),                 # inputs to strip
                sorted(pre & post),          # self-loops to restore
                sorted(post - pre))          # outputs to deposit
        self.initial = zdd.ref(
            zdd.singleton(net.initial_marking.support))

    def image(self, states: int, transition: str) -> int:
        """Successor family under one transition."""
        zdd = self.zdd
        inputs, loops, outputs = self._moves[transition]
        family = states
        for place in inputs:
            family = zdd.subset1(family, place)
        for place in loops:
            family = zdd.change(family, place)
        for place in outputs:
            family = zdd.change(family, place)
        return family

    def image_all(self, states: int) -> int:
        """Successor family under all transitions."""
        result = self.zdd.empty()
        for transition in self.net.transitions:
            result = self.zdd.union(result, self.image(states, transition))
        return result


class ZddImageEngine(ImageEngine):
    """Abstract ZDD engine: the generic :class:`~repro.symbolic.
    partition.ImageEngine` surface plus the zdd-flavoured aliases the
    legacy API promises (``zddnet`` / ``zdd`` / ``net``)."""

    @property
    def zddnet(self):
        return self.relnet

    @property
    def zdd(self) -> ZDD:
        return self.relnet.zdd

    @property
    def net(self) -> PetriNet:
        return self.relnet.net


class ClassicZddEngine(ZddImageEngine):
    """Per-transition subset1/change rewriting (the original loop)."""

    name = "classic"

    def advance(self, reached, frontier):
        return self._absorb(reached, self.zddnet.image_all(frontier))


class MonolithicZddEngine(ZddImageEngine, MonolithicImageEngine):
    """All transitions in one block: a single sweep position per step."""


class PartitionedZddEngine(ZddImageEngine, PartitionedImageEngine):
    """Union of per-block images (Eq. 3) per step."""


class ChainedZddEngine(ZddImageEngine, ChainedImageEngine):
    """Support-sorted sweep with frontier accumulation and diff-based
    working-set narrowing per step."""


class ParallelZddEngine(ZddImageEngine, ParallelPartitionedImageEngine):
    """Per-block images evaluated in worker processes (zddio wire)."""


def make_zdd_image_engine(zddnet, engine: str = "chained",
                          cluster_size: "int | str" = 1,
                          workers: "int | str" = "auto",
                          harness=None) -> ImageEngine:
    """Factory for the ZDD image engines by name.

    ``zddnet`` must match the chosen engine's form — a :class:`ZddNet`
    for ``classic``, a :class:`ZddRelationalNet` for the relational
    engines.  Mixing them is rejected rather than silently bridged: the
    traversal would otherwise run in a freshly built manager whose node
    ids mean nothing to the caller's net, so decoding the result through
    it would yield garbage without any error.  ``cluster_size`` must be
    a positive integer or ``"auto"``; ``engine`` one of
    :data:`ZDD_IMAGE_ENGINES`.  Everything is validated here so
    misconfigurations fail fast.
    """
    validate_cluster_size(cluster_size)
    if engine == "classic":
        if not isinstance(zddnet, ZddNet):
            raise TypeError(
                f"the classic engine needs a ZddNet, got "
                f"{type(zddnet).__name__}; build one with "
                f"ZddNet(net)")
        return ClassicZddEngine(zddnet)
    if engine not in ZDD_IMAGE_ENGINES:
        raise ValueError(f"unknown ZDD image engine {engine!r}; "
                         f"expected one of {ZDD_IMAGE_ENGINES}")
    if not isinstance(zddnet, ZddRelationalNet):
        raise TypeError(
            f"the {engine} engine needs a ZddRelationalNet, got "
            f"{type(zddnet).__name__}; build one with "
            f"ZddRelationalNet(net)")
    if engine == "monolithic":
        return MonolithicZddEngine(zddnet)
    if engine == "partitioned":
        return PartitionedZddEngine(zddnet, cluster_size)
    if engine == "partitioned-mp":
        return ParallelZddEngine(zddnet, cluster_size,
                                 workers=workers, harness=harness)
    return ChainedZddEngine(zddnet, cluster_size)


def traverse_zdd(zddnet: "Union[ZddNet, ZddRelationalNet]",
                 engine: "Union[str, ImageEngine]" = "classic",
                 cluster_size: "int | str" = 1,
                 max_iterations: Optional[int] = None
                 ) -> ZddTraversalResult:
    """BFS frontier fixpoint over the sparse-ZDD representation.

    .. deprecated::
        Thin legacy shim kept for existing callers and tests; new code
        should run ``repro.analysis.analyze(net,
        AnalysisSpec(backend="zdd", ...))``, which wraps the same
        engines behind the unified spec/result schema.

    Parameters
    ----------
    zddnet:
        A :class:`ZddNet` (classic engine) or
        :class:`~repro.symbolic.zdd_relational.ZddRelationalNet`
        (relational engines); a mismatch raises ``TypeError`` so node
        ids in the result always belong to ``zddnet``'s manager.  Build
        the net with ``auto_reorder=True`` to sift at the per-iteration
        safe points.
    engine:
        ``"classic"`` (default, the per-transition rewrite),
        ``"monolithic"``, ``"partitioned"`` or ``"chained"`` — see
        :func:`make_zdd_image_engine`.  An engine instance is also
        accepted (``cluster_size`` is then ignored).
    cluster_size:
        Partition granularity for the partitioned/chained engines: a
        positive integer or ``"auto"``.
    max_iterations:
        Abort beyond this many frontier steps with a
        :class:`~repro.symbolic.traversal.TraversalLimitError` carrying
        the partial reached family (a raw node id on this manager).
    """
    if isinstance(engine, ImageEngine):
        if engine.relnet is not zddnet:
            raise ValueError(
                "engine instance was built for a different net; node ids "
                "in the result would not belong to zddnet's manager")
        image_engine = engine
    else:
        image_engine = make_zdd_image_engine(zddnet, engine, cluster_size)
    zdd = zddnet.zdd
    start = time.perf_counter()
    # The fixpoint roots are pinned across the per-iteration safe points
    # (garbage collection would otherwise free them mid-traversal); the
    # final reachable family stays referenced because the result hands
    # its raw node id to the caller.
    reached = zdd.ref(image_engine.initial)
    frontier = zdd.ref(image_engine.initial)
    iterations = 0
    while frontier != zdd.empty():
        if max_iterations is not None and iterations >= max_iterations:
            from .traversal import TraversalLimitError
            raise TraversalLimitError(
                f"traversal exceeded {max_iterations} iterations",
                reached=reached, frontier=frontier, iterations=iterations)
        new_reached, new_frontier = image_engine.advance(reached, frontier)
        zdd.ref(new_reached)
        zdd.ref(new_frontier)
        zdd.deref(reached)
        zdd.deref(frontier)
        reached, frontier = new_reached, new_frontier
        iterations += 1
        # Safe point: garbage collection / dynamic reordering, exactly
        # as the BDD traversals do at each iteration.
        zdd.checkpoint()
    zdd.deref(frontier)
    zdd.live_nodes()  # fold the final occupancy into the peak
    seconds = time.perf_counter() - start
    return ZddTraversalResult(
        zdd=zdd,
        reachable=reached,
        marking_count=image_engine.count_markings(reached),
        iterations=iterations,
        variable_count=len(zddnet.net.places),
        final_zdd_nodes=zdd.size(reached),
        seconds=seconds,
        engine=f"zdd/{image_engine.name}",
        peak_live_nodes=zdd.peak_live_nodes,
        reorder_count=zdd.reorder_count)
