"""Sparse reachability on Zero-Suppressed BDDs (Yoneda et al., Table 4).

The baseline the paper compares against in Table 4 represents each
marking as the *set of marked places* in a ZDD (one element per place —
the sparse encoding, but in a structure that charges nothing for absent
places).  Firing a transition on a whole family of markings is a chain of
ZDD element operations:

1. ``subset1`` over every input place — keeps exactly the markings
   enabling the transition and strips the input tokens;
2. ``change`` over self-loop places — puts those tokens back;
3. ``change`` over pure output places — deposits the produced tokens
   (on a safe net the sets cannot already contain them).

The traversal is the same BFS frontier fixpoint as the BDD engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..bdd.zdd import ZDD
from ..petri.marking import Marking
from ..petri.net import PetriNet


@dataclass
class ZddTraversalResult:
    """Statistics of a sparse-ZDD reachability computation."""

    zdd: ZDD
    reachable: int
    marking_count: int
    iterations: int
    variable_count: int
    final_zdd_nodes: int
    seconds: float

    def __repr__(self) -> str:
        return (f"<ZddTraversalResult markings={self.marking_count} "
                f"V={self.variable_count} ZDD={self.final_zdd_nodes} "
                f"iters={self.iterations} t={self.seconds:.3f}s>")


class ZddNet:
    """A safe net bound to a ZDD manager (one element per place)."""

    def __init__(self, net: PetriNet, zdd: ZDD = None) -> None:
        if zdd is None:
            zdd = ZDD()
        if zdd.num_vars:
            raise ValueError("ZddNet needs a fresh ZDD manager")
        self.net = net
        self.zdd = zdd
        for place in net.places:
            zdd.add_var(place)
        self._moves: Dict[str, Tuple[List[str], List[str], List[str]]] = {}
        for transition in net.transitions:
            pre = net.preset(transition)
            post = net.postset(transition)
            self._moves[transition] = (
                sorted(pre),                 # inputs to strip
                sorted(pre & post),          # self-loops to restore
                sorted(post - pre))          # outputs to deposit
        self.initial = zdd.singleton(net.initial_marking.support)

    def image(self, states: int, transition: str) -> int:
        """Successor family under one transition."""
        zdd = self.zdd
        inputs, loops, outputs = self._moves[transition]
        family = states
        for place in inputs:
            family = zdd.subset1(family, place)
        for place in loops:
            family = zdd.change(family, place)
        for place in outputs:
            family = zdd.change(family, place)
        return family

    def image_all(self, states: int) -> int:
        """Successor family under all transitions."""
        result = self.zdd.empty()
        for transition in self.net.transitions:
            result = self.zdd.union(result, self.image(states, transition))
        return result

    def markings_of(self, states: int) -> List[Marking]:
        """Decode a family into explicit markings."""
        return [Marking(sorted(members))
                for members in self.zdd.to_sets(states)]


def traverse_zdd(zddnet: ZddNet) -> ZddTraversalResult:
    """BFS frontier fixpoint over the sparse-ZDD representation."""
    zdd = zddnet.zdd
    start = time.perf_counter()
    reached = zddnet.initial
    frontier = zddnet.initial
    iterations = 0
    while frontier != zdd.empty():
        successors = zddnet.image_all(frontier)
        frontier = zdd.diff(successors, reached)
        reached = zdd.union(reached, successors)
        iterations += 1
    seconds = time.perf_counter() - start
    return ZddTraversalResult(
        zdd=zdd,
        reachable=reached,
        marking_count=zdd.count(reached),
        iterations=iterations,
        variable_count=zddnet.net.places.__len__(),
        final_zdd_nodes=zdd.size(reached),
        seconds=seconds)
