"""Durability tests: checkpoint format, resume, budgets, crash safety.

Covers the whole checkpoint/resume surface:

* the hash-sealed file format (round trips, rejection of every damage
  class, truncation at *every* byte boundary — the crash-consistency
  pin),
* the :class:`CheckpointStore` cadence and atomic-write behavior,
* mid-flight and final-checkpoint resume on every backend, pinned to
  the explicit-enumeration oracle,
* cold-start fallback on corrupt or mismatched checkpoints (a resume
  must never be *less* robust than a fresh run),
* resource budgets: exhaustion yields a ``partial`` result with a
  final checkpoint on disk, and resuming from it completes to the
  oracle count.
"""

import os

import pytest

from repro.analysis import (AnalysisSpec, CheckpointData, CheckpointError,
                            CheckpointStore, SpecError,
                            TraversalLimitError, analyze, net_fingerprint,
                            spec_fingerprint)
from repro.analysis.checkpoint import dump_checkpoint, parse_checkpoint

# One spec per backend family; every one must checkpoint and resume.
BACKEND_SPECS = {
    "bdd-functional": dict(),
    "bdd-chained": dict(form="relational", engine="chained"),
    "zdd-chained": dict(backend="zdd", form="relational",
                        engine="chained"),
    "zdd-classic": dict(backend="zdd", form="functional"),
    "kbounded": dict(k_bound=1),
}


def sample_data(**overrides):
    values = dict(
        spec_hash="a" * 16, net_hash="b" * 16, kind="bdd", iteration=7,
        order=["x0", "x1"],
        payload="bddio 1\nvar 0 x0\nnode 2 0 0 1\nroot reached 2\n"
                "root frontier 2",
        extra={"backend": "bdd"})
    values.update(overrides)
    return CheckpointData(**values)


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------


class TestFormat:
    def test_round_trip(self):
        data = sample_data()
        loaded = parse_checkpoint(dump_checkpoint(data))
        assert loaded.spec_hash == data.spec_hash
        assert loaded.net_hash == data.net_hash
        assert loaded.kind == data.kind
        assert loaded.iteration == data.iteration
        assert loaded.order == data.order
        assert loaded.payload.rstrip("\n") == data.payload.rstrip("\n")
        assert loaded.extra == data.extra

    def test_missing_trailer(self):
        with pytest.raises(CheckpointError) as excinfo:
            parse_checkpoint("repro-checkpoint 1\nmeta {}\npayload\n")
        assert excinfo.value.reason == "truncated"

    def test_digest_mismatch(self):
        text = dump_checkpoint(sample_data())
        tampered = text.replace("iteration", "iterazione")
        with pytest.raises(CheckpointError) as excinfo:
            parse_checkpoint(tampered)
        assert excinfo.value.reason == "truncated"

    def test_wrong_header(self):
        body = dump_checkpoint(sample_data())
        wrong = "not-a-checkpoint" + body[len("repro-checkpoint 1"):]
        with pytest.raises(CheckpointError):
            parse_checkpoint(wrong)

    def test_unknown_kind_rejected_on_dump(self):
        with pytest.raises(CheckpointError):
            dump_checkpoint(sample_data(kind="mtbdd"))

    def test_meta_not_json(self):
        # Rebuild a sealed file whose meta line is garbage: the digest
        # is valid, so the parse must fail on the meta itself.
        import hashlib
        body = "repro-checkpoint 1\nmeta {not json\npayload\n"
        digest = hashlib.sha256(body.encode()).hexdigest()
        with pytest.raises(CheckpointError) as excinfo:
            parse_checkpoint(body + f"end {digest}\n")
        assert excinfo.value.reason == "malformed"

    def test_meta_missing_keys(self):
        import hashlib
        import json
        meta = json.dumps({"kind": "bdd"})
        body = f"repro-checkpoint 1\nmeta {meta}\npayload\n"
        digest = hashlib.sha256(body.encode()).hexdigest()
        with pytest.raises(CheckpointError) as excinfo:
            parse_checkpoint(body + f"end {digest}\n")
        assert excinfo.value.reason == "malformed"

    def test_truncation_at_every_byte_boundary(self):
        """Crash consistency: any prefix either parses to the TRUE
        contents or raises a structured CheckpointError — never
        garbage, never a crash.  (The one prefix that may legitimately
        parse is the file minus its final newline: every byte of
        content survived, and the digest proves it.)"""
        data = sample_data()
        text = dump_checkpoint(data)
        raw = text.encode("utf-8")
        for cut in range(len(raw)):
            prefix = raw[:cut].decode("utf-8", errors="replace")
            try:
                loaded = parse_checkpoint(prefix)
            except CheckpointError:
                continue
            assert loaded.iteration == data.iteration
            assert loaded.payload.rstrip("\n") == \
                data.payload.rstrip("\n")
            assert cut >= len(raw) - 1  # only a lost final newline
        assert parse_checkpoint(text).iteration == 7

    def test_appended_garbage_is_detected(self):
        text = dump_checkpoint(sample_data())
        with pytest.raises(CheckpointError):
            parse_checkpoint(text + "trailing garbage\n")


# ----------------------------------------------------------------------
# Store: cadence, atomicity, validation
# ----------------------------------------------------------------------


class TestStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        store.save(sample_data())
        loaded = store.load()
        assert loaded.iteration == 7
        assert store.writes == 1
        # Atomic write: the temp file never survives a completed save.
        assert list(tmp_path.iterdir()) == [tmp_path / "run.ckpt"]

    def test_load_missing(self, tmp_path):
        store = CheckpointStore(tmp_path / "absent.ckpt")
        with pytest.raises(CheckpointError) as excinfo:
            store.load()
        assert excinfo.value.reason == "missing"

    def test_crash_between_tmp_write_and_rename_is_swept(self, tmp_path,
                                                         monkeypatch):
        """Crash simulation: the process dies after writing the tmp
        file but before the atomic rename.  The stale tmp must not
        damage the sealed checkpoint and must be swept by the next
        writer (the restarted process)."""
        import repro.analysis.checkpoint as checkpoint_module
        path = tmp_path / "run.ckpt"
        store = CheckpointStore(path)
        store.save(sample_data(iteration=3))

        def die_before_rename(src, dst):
            raise KeyboardInterrupt("simulated SIGKILL before rename")

        monkeypatch.setattr(checkpoint_module.os, "replace",
                            die_before_rename)
        with pytest.raises(KeyboardInterrupt):
            store.save(sample_data(iteration=9))
        monkeypatch.undo()
        stale = [p.name for p in tmp_path.iterdir()
                 if p.name.startswith("run.ckpt.tmp")]
        assert stale, "the simulated crash should strand a tmp file"
        # The sealed checkpoint survived the crash untouched.
        assert parse_checkpoint(path.read_text()).iteration == 3

        # The restarted process sweeps the leftovers on its first save.
        restarted = CheckpointStore(path)
        restarted.save(sample_data(iteration=11))
        assert list(tmp_path.iterdir()) == [path]
        assert restarted.load().iteration == 11

    def test_stale_tmp_swept_on_resume_load(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointStore(path).save(sample_data(iteration=5))
        (tmp_path / "run.ckpt.tmp.999.7").write_text("torn leftovers")
        loaded = CheckpointStore(path).load()
        assert loaded.iteration == 5
        assert list(tmp_path.iterdir()) == [path]

    def test_tmp_sweep_leaves_unrelated_files_alone(self, tmp_path):
        path = tmp_path / "run.ckpt"
        other = tmp_path / "other.ckpt.tmp.1.1"
        other.write_text("someone else's tmp")
        sibling = tmp_path / "run.ckpt2"
        sibling.write_text("a different checkpoint")
        CheckpointStore(path).save(sample_data())
        survivors = {p.name for p in tmp_path.iterdir()}
        assert survivors == {"run.ckpt", "other.ckpt.tmp.1.1",
                             "run.ckpt2"}

    def test_iteration_cadence(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt", every=3)
        assert not store.due(1)
        assert not store.due(2)
        assert store.due(3)
        store.save(sample_data(iteration=3))
        assert not store.due(4)
        assert store.due(6)

    def test_seconds_cadence_on_virtual_clock(self, tmp_path):
        clock = {"t": 0.0}
        store = CheckpointStore(tmp_path / "run.ckpt",
                                every_seconds=5.0,
                                clock=lambda: clock["t"])
        assert not store.due(100)  # iteration cadence is off
        clock["t"] = 5.1
        assert store.due(100)
        store.save(sample_data())
        assert not store.due(200)
        clock["t"] = 10.5
        assert store.due(200)

    def test_default_cadence_is_every_iteration(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        assert store.every == 1
        assert store.due(1)

    def test_bad_cadence_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "x", every=0)
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "x", every_seconds=-1.0)

    def test_validate_rejects_mismatches(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.ckpt")
        data = sample_data()
        kwargs = dict(spec_hash=data.spec_hash, net_hash=data.net_hash,
                      kind=data.kind)
        store.validate(data, **kwargs)  # a match passes silently
        for field, bad in [("spec_hash", "f" * 16),
                           ("net_hash", "f" * 16), ("kind", "zdd")]:
            with pytest.raises(CheckpointError) as excinfo:
                store.validate(data, **{**kwargs, field: bad})
            assert excinfo.value.reason == "mismatch"


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


class TestFingerprints:
    def test_durability_knobs_do_not_change_the_spec_hash(self, tmp_path):
        base = AnalysisSpec()
        resumed = AnalysisSpec(checkpoint_path=str(tmp_path / "c"),
                               checkpoint_every=5, resume=True,
                               node_budget=10, deadline=60.0,
                               max_iterations=3)
        assert spec_fingerprint(base) == spec_fingerprint(resumed)

    def test_semantic_fields_do_change_the_spec_hash(self):
        assert (spec_fingerprint(AnalysisSpec(scheme="sparse"))
                != spec_fingerprint(AnalysisSpec(scheme="improved")))

    def test_net_fingerprint_tracks_the_net(self, make_net):
        assert (net_fingerprint(make_net("phil3"))
                == net_fingerprint(make_net("phil3")))
        assert (net_fingerprint(make_net("phil3"))
                != net_fingerprint(make_net("phil4")))


# ----------------------------------------------------------------------
# Spec validation for the new fields
# ----------------------------------------------------------------------


class TestSpecValidation:
    def test_cadence_requires_a_path(self):
        with pytest.raises(SpecError):
            AnalysisSpec(checkpoint_every=5)
        with pytest.raises(SpecError):
            AnalysisSpec(checkpoint_every_seconds=5.0)

    def test_resume_requires_a_path(self):
        with pytest.raises(SpecError):
            AnalysisSpec(resume=True)

    def test_budgets_rejected_on_portfolio(self):
        with pytest.raises(SpecError):
            AnalysisSpec(backend="portfolio", node_budget=100)
        with pytest.raises(SpecError):
            AnalysisSpec(backend="portfolio", deadline=5.0)

    def test_positive_knobs(self, tmp_path):
        path = str(tmp_path / "c")
        with pytest.raises(SpecError):
            AnalysisSpec(checkpoint_path=path, checkpoint_every=0)
        with pytest.raises(SpecError):
            AnalysisSpec(node_budget=0)
        with pytest.raises(SpecError):
            AnalysisSpec(deadline=0.0)


# ----------------------------------------------------------------------
# Resume, per backend, against the oracle
# ----------------------------------------------------------------------


class TestResumeEveryBackend:
    @pytest.mark.parametrize("config", sorted(BACKEND_SPECS))
    def test_final_checkpoint_resume_matches_oracle(
            self, config, tmp_path, make_net, explicit_counts):
        net = make_net("phil4")
        path = str(tmp_path / f"{config}.ckpt")
        spec = AnalysisSpec(checkpoint_path=path,
                            **BACKEND_SPECS[config])
        cold = analyze(net, spec)
        assert cold.markings == explicit_counts["phil4"]
        assert os.path.exists(path)
        assert cold.extras["checkpoint"]["writes"] >= 1

        warm = analyze(net, spec.replace(resume=True))
        assert warm.markings == explicit_counts["phil4"]
        assert warm.extras["resume"]["status"] == "resumed"
        assert warm.extras["resume"]["iteration"] == cold.iterations
        assert warm.status == "complete"

    @pytest.mark.parametrize("config", sorted(BACKEND_SPECS))
    def test_mid_flight_resume_matches_oracle(
            self, config, tmp_path, make_net, explicit_counts):
        # Abort the cold run early via max_iterations — the overrun
        # writes a final checkpoint before raising — then resume with
        # the limit lifted and land exactly on the oracle count.
        net = make_net("phil4")
        path = str(tmp_path / f"{config}.ckpt")
        spec = AnalysisSpec(checkpoint_path=path,
                            **BACKEND_SPECS[config])
        with pytest.raises(TraversalLimitError) as excinfo:
            analyze(net, spec.replace(max_iterations=1))
        assert excinfo.value.iterations == 1
        assert excinfo.value.reached is not None
        assert os.path.exists(path)

        warm = analyze(net, spec.replace(resume=True))
        assert warm.extras["resume"]["status"] == "resumed"
        assert warm.extras["resume"]["iteration"] == 1
        assert warm.markings == explicit_counts["phil4"]


class TestColdStartFallback:
    def test_corrupt_checkpoint_falls_back(self, tmp_path, make_net,
                                           explicit_counts):
        path = tmp_path / "bad.ckpt"
        path.write_text("not a checkpoint at all\n")
        spec = AnalysisSpec(checkpoint_path=str(path), resume=True)
        result = analyze(make_net("phil3"), spec)
        assert result.markings == explicit_counts["phil3"]
        resume = result.extras["resume"]
        assert resume["status"] == "cold-start"
        assert resume["reason"] == "truncated"

    def test_missing_checkpoint_falls_back(self, tmp_path, make_net,
                                           explicit_counts):
        spec = AnalysisSpec(checkpoint_path=str(tmp_path / "absent"),
                            resume=True)
        result = analyze(make_net("phil3"), spec)
        assert result.markings == explicit_counts["phil3"]
        assert result.extras["resume"]["reason"] == "missing"

    def test_other_nets_checkpoint_falls_back(self, tmp_path, make_net,
                                              explicit_counts):
        path = str(tmp_path / "run.ckpt")
        analyze(make_net("phil4"), AnalysisSpec(checkpoint_path=path))
        result = analyze(make_net("phil3"),
                         AnalysisSpec(checkpoint_path=path, resume=True))
        assert result.markings == explicit_counts["phil3"]
        assert result.extras["resume"]["status"] == "cold-start"
        assert result.extras["resume"]["reason"] == "mismatch"

    def test_other_backends_checkpoint_falls_back(self, tmp_path,
                                                  make_net,
                                                  explicit_counts):
        # A BDD checkpoint offered to the ZDD session: kind mismatch.
        path = str(tmp_path / "run.ckpt")
        analyze(make_net("phil3"), AnalysisSpec(checkpoint_path=path))
        result = analyze(
            make_net("phil3"),
            AnalysisSpec(backend="zdd", checkpoint_path=path,
                         resume=True))
        assert result.markings == explicit_counts["phil3"]
        assert result.extras["resume"]["status"] == "cold-start"
        assert result.extras["resume"]["reason"] == "mismatch"


# ----------------------------------------------------------------------
# Resource budgets through the facade
# ----------------------------------------------------------------------


class TestBudgets:
    def test_node_budget_yields_partial_with_checkpoint(
            self, tmp_path, make_net, explicit_counts):
        net = make_net("phil6")
        path = str(tmp_path / "phil6.ckpt")
        partial = analyze(net, AnalysisSpec(checkpoint_path=path,
                                            node_budget=50))
        assert partial.status == "partial"
        budget = partial.extras["budget"]
        assert budget["kind"] == "nodes"
        assert budget["node_budget"] == 50
        assert budget["reorder_forced"]
        # Partial means under-approximation, never over.
        assert 0 < partial.markings <= explicit_counts["phil6"]
        # Acceptance: the final checkpoint is on disk…
        assert os.path.exists(path)
        # …and resuming with the budget lifted completes to the oracle.
        done = analyze(net, AnalysisSpec(checkpoint_path=path,
                                         resume=True))
        assert done.status == "complete"
        assert done.extras["resume"]["status"] == "resumed"
        assert done.markings == explicit_counts["phil6"]

    def test_deadline_yields_partial(self, make_net):
        result = analyze(make_net("phil6"),
                         AnalysisSpec(deadline=1e-6))
        assert result.status == "partial"
        assert result.extras["budget"]["kind"] == "deadline"

    def test_budget_without_checkpoint_still_partial(self, make_net):
        result = analyze(make_net("phil4"), AnalysisSpec(node_budget=1))
        assert result.status == "partial"
        assert "checkpoint" not in result.extras

    def test_generous_budget_changes_nothing(self, make_net,
                                             explicit_counts):
        result = analyze(make_net("phil4"),
                         AnalysisSpec(node_budget=10_000_000,
                                      deadline=3600.0))
        assert result.status == "complete"
        assert result.markings == explicit_counts["phil4"]
