"""analyze()/Analysis: cross-backend agreement with the legacy entry
points, session reuse, and the backend protocol surface."""

import pytest

from repro.analysis import (Analysis, AnalysisSpec, KBoundedBackend,
                            SpecError, ZddBackend, analyze, backend_for)
from repro.encoding import ImprovedEncoding
from repro.symbolic import (RelationalNet, SymbolicNet, ZddNet,
                            ZddRelationalNet, traverse,
                            traverse_relational, traverse_zdd)

NETS = ("figure1", "phil4")

SPECS = {
    "functional": AnalysisSpec(),
    "functional-sparse-bfs": AnalysisSpec(scheme="sparse",
                                          strategy="bfs"),
    "rel-monolithic": AnalysisSpec(form="relational",
                                   engine="monolithic"),
    "rel-partitioned": AnalysisSpec(form="relational",
                                    engine="partitioned",
                                    cluster_size=2),
    "rel-chained-auto": AnalysisSpec(form="relational", engine="chained",
                                     cluster_size="auto",
                                     simplify_frontier=True),
    "zdd-classic": AnalysisSpec(backend="zdd", form="functional"),
    "zdd-chained": AnalysisSpec(backend="zdd"),
    "kbounded": AnalysisSpec(k_bound=1),
}


def marking_sets(symbolic_net, reachable):
    return {frozenset(m.support) for m in
            symbolic_net.markings_of(reachable)}


class TestCrossBackend:
    @pytest.mark.parametrize("net_name", NETS)
    @pytest.mark.parametrize("label", sorted(SPECS))
    def test_analyze_matches_explicit_oracle(self, make_net,
                                             explicit_counts, net_name,
                                             label):
        result = analyze(make_net(net_name), SPECS[label])
        assert result.markings == explicit_counts[net_name]
        assert result.engine == SPECS[label].engine_id

    @pytest.mark.parametrize("net_name", NETS)
    def test_matches_legacy_functional(self, make_net, net_name):
        net = make_net(net_name)
        legacy_net = SymbolicNet(ImprovedEncoding(net))
        legacy = traverse(legacy_net, use_toggle=True,
                          strategy="chaining", chain_order="support")
        analysis = Analysis(net, AnalysisSpec(reorder=False))
        result = analysis.run()
        assert result.markings == legacy.marking_count
        assert marking_sets(analysis.symbolic_net, result.reachable) \
            == marking_sets(legacy_net, legacy.reachable)

    @pytest.mark.parametrize("net_name", NETS)
    def test_matches_legacy_relational(self, make_net, net_name):
        net = make_net(net_name)
        legacy_net = RelationalNet(ImprovedEncoding(net))
        legacy = traverse_relational(legacy_net, engine="chained",
                                     cluster_size="auto")
        analysis = Analysis(net, AnalysisSpec(form="relational",
                                              engine="chained",
                                              cluster_size="auto",
                                              reorder=False))
        result = analysis.run()
        # RelationalNet exposes no marking decoder; count equality here,
        # set-level equality across engines is pinned by the
        # differential harness (tests/symbolic/test_engine_diff.py).
        assert result.markings == legacy.marking_count
        assert result.variables == legacy.variable_count
        assert result.engine == legacy.engine

    @pytest.mark.parametrize("net_name", NETS)
    @pytest.mark.parametrize("engine", ["classic", "chained"])
    def test_matches_legacy_zdd(self, make_net, net_name, engine):
        net = make_net(net_name)
        if engine == "classic":
            legacy_net = ZddNet(net)
            spec = AnalysisSpec(backend="zdd", form="functional")
        else:
            legacy_net = ZddRelationalNet(net)
            spec = AnalysisSpec(backend="zdd", engine=engine,
                                cluster_size="auto")
        legacy = traverse_zdd(legacy_net, engine=engine,
                              cluster_size="auto"
                              if engine != "classic" else 1)
        analysis = Analysis(net, spec)
        result = analysis.run()
        assert result.markings == legacy.marking_count
        assert marking_sets(analysis.symbolic_net, result.reachable) \
            == marking_sets(legacy_net, legacy.reachable)
        assert result.peak_nodes > 0
        assert legacy.peak_live_nodes > 0


class TestSession:
    def test_manual_stepping_reaches_the_same_fixpoint(self, make_net,
                                                       explicit_counts):
        analysis = Analysis(make_net("figure1"), AnalysisSpec())
        steps = 0
        while analysis.step():
            steps += 1
        assert analysis.stats()["at_fixpoint"]
        result = analysis.run()
        assert result.iterations == steps
        assert result.markings == explicit_counts["figure1"]

    def test_run_is_cached(self, make_net):
        analysis = Analysis(make_net("figure1"), AnalysisSpec())
        assert analysis.run() is analysis.run()
        assert analysis.result is analysis.run()

    def test_stats_shape(self, make_net):
        analysis = Analysis(make_net("figure1"),
                            AnalysisSpec(backend="zdd"))
        stats = analysis.stats()
        for key in ("backend", "engine", "iterations", "at_fixpoint",
                    "peak_nodes", "build_seconds", "fixpoint_seconds"):
            assert key in stats
        assert stats["engine"] == "zdd/chained"
        assert stats["iterations"] == 0

    def test_checker_reuses_the_computed_reachable_set(self, make_net):
        analysis = Analysis(make_net("phil3"), AnalysisSpec())
        result = analysis.run()
        checker = analysis.checker()
        assert checker.reachable is result.reachable
        assert checker.find_deadlocks().holds  # philosophers deadlock

    @pytest.mark.parametrize("spec", [
        AnalysisSpec(form="relational"),
        AnalysisSpec(backend="zdd"),
        AnalysisSpec(k_bound=2),
    ])
    def test_checker_requires_functional_bdd(self, make_net, spec):
        analysis = Analysis(make_net("figure1"), spec)
        with pytest.raises(SpecError, match="functional BDD"):
            analysis.checker()

    def test_keyword_overrides_build_a_spec(self, make_net,
                                            explicit_counts):
        result = analyze(make_net("figure1"), scheme="sparse",
                         reorder=False)
        assert result.spec == AnalysisSpec(scheme="sparse",
                                           reorder=False)
        assert result.markings == explicit_counts["figure1"]

    def test_max_iterations_aborts(self, make_net):
        with pytest.raises(RuntimeError, match="exceeded 1 iteration"):
            analyze(make_net("phil3"), AnalysisSpec(strategy="bfs"),
                    max_iterations=1)

    def test_encoding_factory_rejected_off_the_bdd_backends(self,
                                                            make_net):
        net = make_net("figure1")
        with pytest.raises(SpecError, match="encoding_factory"):
            Analysis(net, AnalysisSpec(backend="zdd"),
                     encoding_factory=ImprovedEncoding)
        with pytest.raises(SpecError, match="encoding_factory"):
            Analysis(net, AnalysisSpec(k_bound=2),
                     encoding_factory=ImprovedEncoding)


class TestBackendRouting:
    def test_backend_for(self):
        assert backend_for(AnalysisSpec()).name == "bdd-functional"
        assert backend_for(
            AnalysisSpec(form="relational")).name == "bdd-relational"
        assert isinstance(backend_for(AnalysisSpec(backend="zdd")),
                          ZddBackend)
        assert isinstance(backend_for(AnalysisSpec(k_bound=2)),
                          KBoundedBackend)

    def test_sessions_expose_the_wrapped_net(self, make_net):
        net = make_net("figure1")
        assert isinstance(Analysis(net, AnalysisSpec()).symbolic_net,
                          SymbolicNet)
        assert isinstance(
            Analysis(net, AnalysisSpec(form="relational")).symbolic_net,
            RelationalNet)
        assert isinstance(
            Analysis(net, AnalysisSpec(backend="zdd",
                                       form="functional")).symbolic_net,
            ZddNet)


class TestRunnerIntegration:
    def test_run_reports_peak_nodes_and_labels(self, make_net,
                                               explicit_counts):
        from repro.experiments.runner import engine_label, run
        net = make_net("figure1")
        for spec, label in [
                (AnalysisSpec(scheme="sparse"), "sparse"),
                (AnalysisSpec(scheme="dense"), "covering"),
                (AnalysisSpec(), "dense"),
                (AnalysisSpec(form="relational"), "rel-chained"),
                (AnalysisSpec(backend="zdd", form="functional"), "zdd"),
                (AnalysisSpec(backend="zdd"), "zdd-chained"),
                (AnalysisSpec(k_bound=2), "k2")]:
            assert engine_label(spec) == label
            row = run("fig1", net, spec)
            assert row.engine == label
            assert row.markings == explicit_counts["figure1"]
            assert row.peak_nodes > 0
