"""PortfolioBackend: member catalog, racing, serial degradation."""

import pytest

from repro.analysis import (BACKENDS, DEFAULT_PORTFOLIO_MEMBERS,
                            PORTFOLIO_MEMBERS, Analysis, AnalysisSpec,
                            MemberFailure, PortfolioBackend, SpecError,
                            WorkerHarness, analyze, backend_for,
                            member_spec)
from repro.petri.generators import figure1_net


class SerialOnlyHarness(WorkerHarness):
    """Rules worker processes out: forces the degraded serial mode."""

    def available(self):
        return False


def serial_result(net, **spec_overrides):
    spec = AnalysisSpec(backend="portfolio", **spec_overrides)
    backend = PortfolioBackend(harness=SerialOnlyHarness())
    return backend.build(net, spec), spec


class TestRegistry:
    def test_backend_for_routes_portfolio(self):
        backend = backend_for(AnalysisSpec(backend="portfolio"))
        assert backend.name == "portfolio"
        assert BACKENDS["portfolio"] is backend

    def test_portfolio_with_k_bound_still_routes_portfolio(self):
        # k_bound parameterizes the kbounded member, it must not
        # reroute the spec to the k-bounded backend.
        backend = backend_for(AnalysisSpec(backend="portfolio", k_bound=2))
        assert backend.name == "portfolio"

    def test_encoding_factory_rejected(self):
        with pytest.raises(SpecError, match="worker processes"):
            BACKENDS["portfolio"].build(
                figure1_net(), AnalysisSpec(backend="portfolio"),
                encoding_factory=lambda net: None)


class TestMemberCatalog:
    def test_every_catalog_member_builds_a_valid_spec(self):
        parent = AnalysisSpec(backend="portfolio")
        for member in PORTFOLIO_MEMBERS:
            spec = member_spec(parent, member)
            assert spec.backend != "portfolio"  # no recursive races
            assert backend_for(spec).name != "portfolio"

    def test_unknown_member_rejected(self):
        with pytest.raises(SpecError, match="unknown portfolio member"):
            member_spec(AnalysisSpec(backend="portfolio"), "sat-solver")

    def test_options_thread_through_to_members(self):
        parent = AnalysisSpec(backend="portfolio", scheme="sparse",
                              strategy="bfs", use_toggle=False,
                              reorder=False, simplify_frontier=True,
                              max_iterations=50, k_bound=2)
        functional = member_spec(parent, "bdd-functional")
        assert functional.scheme == "sparse"
        assert functional.strategy == "bfs"
        assert functional.use_toggle is False
        assert functional.simplify_frontier is True
        chained = member_spec(parent, "bdd-chained")
        assert chained.engine == "chained"
        assert chained.scheme == "sparse"
        assert chained.reorder is False
        kbounded = member_spec(parent, "kbounded")
        assert kbounded.k_bound == 2
        for member in PORTFOLIO_MEMBERS:
            assert member_spec(parent, member).max_iterations == 50

    def test_kbounded_member_defaults_to_bound_one(self):
        spec = member_spec(AnalysisSpec(backend="portfolio"), "kbounded")
        assert spec.k_bound == 1


class TestSerialDegradation:
    def test_first_member_wins_serially(self):
        session, _ = serial_result(figure1_net())
        result = session.run()
        race = result.extras["portfolio"]
        assert race["mode"] == "serial"
        assert race["winner"] == DEFAULT_PORTFOLIO_MEMBERS[0]
        assert result.markings == 8
        outcomes = [row["outcome"] for row in race["members"]]
        assert outcomes == ["won"] + ["skipped"] * (
            len(DEFAULT_PORTFOLIO_MEMBERS) - 1)

    def test_serial_winner_keeps_reachable_and_checker(self):
        session, _ = serial_result(
            figure1_net(), portfolio_members=("bdd-functional",
                                              "zdd-chained"))
        result = session.run()
        # The winning in-process session stays alive: the reachable
        # handle and model checking work as if run directly.
        assert result.reachable is not None
        assert session.supports_model_checking
        from repro.symbolic.checker import ModelChecker
        checker = ModelChecker(session.symbolic_net,
                               reachable=result.reachable)
        assert checker.find_deadlocks().holds is False

    def test_serial_skips_failing_member(self, monkeypatch):
        class ExplodingBackend:
            name = "zdd"

            def build(self, net, spec, encoding_factory=None):
                raise MemoryError("node table exploded")

        monkeypatch.setitem(BACKENDS, "zdd", ExplodingBackend())
        session, _ = serial_result(
            figure1_net(), portfolio_members=("zdd-chained",
                                              "bdd-chained"))
        result = session.run()
        race = result.extras["portfolio"]
        assert race["winner"] == "bdd-chained"
        assert result.markings == 8
        failure = MemberFailure.from_dict(race["failures"][0])
        assert failure.member == "zdd-chained"
        assert failure.kind == "error"
        assert "node table exploded" in failure.detail


class TestResultShape:
    @pytest.fixture(scope="class")
    def result(self):
        return analyze(figure1_net(),
                       AnalysisSpec(backend="portfolio", timeout=60.0))

    def test_verdict_matches_every_member(self, result):
        assert result.markings == 8
        parent = AnalysisSpec(backend="portfolio")
        for member in DEFAULT_PORTFOLIO_MEMBERS:
            assert analyze(figure1_net(),
                           member_spec(parent, member)).markings == 8

    def test_engine_names_the_winner(self, result):
        winner = result.extras["portfolio"]["winner"]
        assert result.engine == f"portfolio/{winner}"
        assert winner in DEFAULT_PORTFOLIO_MEMBERS

    def test_per_member_outcomes_and_times(self, result):
        race = result.extras["portfolio"]
        rows = {row["member"]: row for row in race["members"]}
        assert set(rows) == set(DEFAULT_PORTFOLIO_MEMBERS)
        winner_row = rows[race["winner"]]
        assert winner_row["outcome"] == "won"
        assert winner_row["seconds"] > 0
        for row in rows.values():
            assert row["outcome"] in ("won", "cancelled", "crash",
                                      "timeout", "error", "spawn",
                                      "skipped")

    def test_winner_extras_preserved(self, result):
        assert "winner_extras" in result.extras
        assert result.extras["build_seconds"] >= 0
        assert result.extras["fixpoint_seconds"] >= 0

    def test_facade_session_surface(self):
        analysis = Analysis(figure1_net(),
                            AnalysisSpec(backend="portfolio",
                                         timeout=60.0))
        assert analysis.step() is True   # the race is one step
        assert analysis.step() is False  # then the session is exhausted
        stats = analysis.stats()
        assert stats["backend"] == "portfolio"
        assert stats["at_fixpoint"] is True
        assert analysis.result.markings == 8
